//! Cross-crate integration: the cost claims of Sections 3–5 hold on real
//! workloads — AD's attribute optimality bounds, the free frequent range
//! (Theorem 3.3), disk-cost ordering, and the VA-file's sound pruning.

use knmatch::data::{skewed, uniform};
use knmatch::eval::{sample_query_points, DiskBench};
use knmatch::prelude::*;
use knmatch::storage::{BufferPool, HeapFile};

#[test]
fn ad_attribute_count_grows_with_k_and_n() {
    let ds = uniform(2000, 10, 21);
    let mut cols = SortedColumns::build(&ds);
    let q = ds.point(42).to_vec();
    let mut prev = 0u64;
    for n in 1..=10 {
        let (_, stats) = k_n_match_ad(&mut cols, &q, 10, n).expect("valid");
        assert!(
            stats.attributes_retrieved >= prev,
            "n={n}: retrieval must not shrink as n grows"
        );
        prev = stats.attributes_retrieved;
    }
    let mut prev = 0u64;
    for k in [1, 5, 25, 125] {
        let (_, stats) = k_n_match_ad(&mut cols, &q, k, 5).expect("valid");
        assert!(stats.attributes_retrieved >= prev, "k={k}");
        prev = stats.attributes_retrieved;
    }
}

#[test]
fn frequent_range_is_free_beyond_its_upper_end() {
    // Theorem 3.3: FKNMatchAD([n0, n1]) costs exactly KNMatchAD(n1).
    let ds = uniform(1500, 8, 4);
    let mut cols = SortedColumns::build(&ds);
    let q = ds.point(7).to_vec();
    for (n0, n1) in [(1, 8), (2, 5), (4, 4)] {
        let (_, freq) = frequent_k_n_match_ad(&mut cols, &q, 12, n0, n1).expect("valid");
        let (_, single) = k_n_match_ad(&mut cols, &q, 12, n1).expect("valid");
        assert_eq!(
            freq.attributes_retrieved, single.attributes_retrieved,
            "[{n0}, {n1}] must cost the same as a plain k-{n1}-match"
        );
    }
}

#[test]
fn ad_never_exceeds_scan_attribute_cost() {
    let ds = skewed(3000, 12, 17);
    let mut cols = SortedColumns::build(&ds);
    let total = (ds.len() * ds.dims()) as u64;
    for q in sample_query_points(&ds, 4, 3) {
        let (_, stats) = frequent_k_n_match_ad(&mut cols, &q, 20, 4, 12).expect("valid");
        assert!(stats.attributes_retrieved <= total);
        // On skewed data the matches concentrate: well under half the file.
        assert!(
            (stats.attributes_retrieved as f64) < 0.5 * total as f64,
            "skew should keep retrieval low: {} of {total}",
            stats.attributes_retrieved
        );
    }
}

#[test]
fn disk_cost_ordering_ad_scan_igrid() {
    let ds = uniform(24_000, 16, 9);
    let queries = sample_query_points(&ds, 2, 5);
    let mut bench = DiskBench::build(&ds);
    let ad = bench.ad_frequent(&queries, 20, 4, 8);
    let scan = bench.scan_frequent(&queries, 20, 4, 8);
    let igrid = bench.igrid_query(&queries, 20);
    assert!(
        ad.pages < scan.pages,
        "AD pages {} !< scan {}",
        ad.pages,
        scan.pages
    );
    assert!(
        ad.time_ms < scan.time_ms && scan.time_ms < igrid.time_ms,
        "expected AD < scan < IGrid: {} / {} / {}",
        ad.time_ms,
        scan.time_ms,
        igrid.time_ms
    );
}

#[test]
fn va_pruning_is_sound_and_answers_exactly() {
    let ds = uniform(5000, 8, 33);
    let mut store = MemStore::new();
    let heap = HeapFile::build(&mut store, &ds);
    let va = VaFile::build(&mut store, &ds, 8);
    let mut pool = BufferPool::new(store, 128);
    for q in sample_query_points(&ds, 3, 8) {
        let out = frequent_k_n_match_va(&va, &heap, &mut pool, &q, 15, 3, 6).expect("valid");
        let oracle = frequent_k_n_match_scan(&ds, &q, 15, 3, 6).expect("oracle");
        assert_eq!(out.result.ids(), oracle.ids());
        assert!(out.refined >= 15, "at least k candidates refine");
        assert!(out.refined < ds.len(), "the filter must prune something");
    }
}

#[test]
fn warm_pool_reduces_io_but_not_answers() {
    let ds = uniform(4000, 8, 12);
    let mut db = DiskDatabase::build_in_memory(&ds, 2048);
    let q = ds.point(9).to_vec();
    let cold = db.frequent_k_n_match(&q, 10, 2, 6).expect("valid");
    let warm = db.frequent_k_n_match(&q, 10, 2, 6).expect("valid");
    assert_eq!(cold.result.ids(), warm.result.ids());
    assert!(warm.io.page_accesses() <= cold.io.page_accesses());
    assert_eq!(cold.ad.attributes_retrieved, warm.ad.attributes_retrieved);
}
