//! Cross-crate integration for the beyond-the-paper features: the dynamic
//! index, the hybrid schema, MEDRANK, FA/TA, the streaming iterator and
//! the parallel scan all interoperating on shared workloads.

use knmatch::core::{
    eps_n_match_ad, k_n_match_scan_parallel, medrank, DimKind, DynamicColumns, GradedLists,
    HybridColumns, HybridSchema, MinAggregate, NMatchStream,
};
use knmatch::data::{labelled_clusters, uniform, ClusterSpec};
use knmatch::prelude::*;

#[test]
fn dynamic_index_tracks_a_changing_fleet() {
    let base = uniform(400, 6, 3);
    let mut idx = DynamicColumns::new(6).unwrap();
    for (pid, p) in base.iter() {
        idx.insert(1000 + pid as u64, p).unwrap();
    }
    let q = base.point(7).to_vec();
    // Agrees with the static oracle.
    let (got, _) = idx.k_n_match(&q, 10, 3).unwrap();
    let oracle = k_n_match_scan(&base, &q, 10, 3).unwrap();
    let keys: Vec<u64> = got.iter().map(|m| m.key).collect();
    let want: Vec<u64> = oracle.ids().iter().map(|&p| 1000 + p as u64).collect();
    assert_eq!(keys, want);
    // Remove the top answer; the rest shift up.
    idx.remove(keys[0]).unwrap();
    let (after, _) = idx.k_n_match(&q, 9, 3).unwrap();
    let after_keys: Vec<u64> = after.iter().map(|m| m.key).collect();
    assert_eq!(after_keys, want[1..].to_vec());
}

#[test]
fn hybrid_and_plain_agree_on_numeric_data() {
    let ds = uniform(300, 5, 9);
    let schema = HybridSchema::all_numeric(5).unwrap();
    let hybrid = HybridColumns::build(&ds, schema).unwrap();
    let mut plain = SortedColumns::build(&ds);
    let q = ds.point(123).to_vec();
    for n in [1usize, 3, 5] {
        let (h, _) = knmatch::core::k_n_match_hybrid(&hybrid, &q, 8, n).unwrap();
        let (p, _) = k_n_match_ad(&mut plain, &q, 8, n).unwrap();
        assert_eq!(h.ids(), p.ids(), "n={n}");
    }
}

#[test]
fn hybrid_categorical_dimension_changes_answers() {
    // Append a category code column: points share the query's category only
    // when pid % 3 == 0.
    let base = uniform(120, 4, 4);
    let rows: Vec<Vec<f64>> = base
        .iter()
        .map(|(pid, p)| {
            let mut r = p.to_vec();
            r.push((pid % 3) as f64);
            r
        })
        .collect();
    let ds = Dataset::from_rows(&rows).unwrap();
    let schema = HybridSchema::new(vec![
        DimKind::numeric(),
        DimKind::numeric(),
        DimKind::numeric(),
        DimKind::numeric(),
        DimKind::Categorical { weight: 10.0 },
    ])
    .unwrap();
    let cols = HybridColumns::build(&ds, schema).unwrap();
    let mut q = base.point(0).to_vec();
    q.push(0.0); // category 0
                 // With n = 5 every dimension must match: only category-0 points can
                 // have a small 5-match difference.
    let (m, _) = knmatch::core::k_n_match_hybrid(&cols, &q, 5, 5).unwrap();
    assert!(m.entries[0].diff < 10.0);
    assert_eq!(
        m.entries[0].pid % 3,
        0,
        "best full match shares the category"
    );
}

#[test]
fn medrank_and_ad_agree_when_data_is_well_separated() {
    // On tight clusters the rank winner and the difference winner coincide.
    let lds = labelled_clusters(&ClusterSpec {
        cardinality: 90,
        dims: 8,
        classes: 3,
        cluster_std: 0.02,
        noise_prob: 0.0,
        seed: 4,
    });
    let mut cols = SortedColumns::build(&lds.data);
    for qid in [0u32, 31, 62] {
        let q = lds.data.point(qid).to_vec();
        let (mr, _) = medrank(&mut cols, &q, 1, None).unwrap();
        assert_eq!(
            lds.labels[mr.ids()[0] as usize],
            lds.labels[qid as usize],
            "MEDRANK's winner shares the query's cluster"
        );
    }
}

#[test]
fn fagin_ta_runs_over_generated_grades() {
    let ds = uniform(200, 4, 8);
    let lists = GradedLists::build(&ds);
    let (fa, fa_stats) = lists.fa(&MinAggregate, 5).unwrap();
    let (ta, ta_stats) = lists.ta(&MinAggregate, 5).unwrap();
    let fa_ids: Vec<u32> = fa.iter().map(|&(p, _)| p).collect();
    let ta_ids: Vec<u32> = ta.iter().map(|&(p, _)| p).collect();
    assert_eq!(fa_ids, ta_ids, "FA and TA agree on monotone aggregates");
    assert!(ta_stats.sorted_accesses <= fa_stats.sorted_accesses);
}

#[test]
fn stream_eps_and_batch_views_are_consistent() {
    let ds = uniform(500, 6, 11);
    let q = ds.point(42).to_vec();
    let mut a = SortedColumns::build(&ds);
    let mut b = SortedColumns::build(&ds);
    let mut c = SortedColumns::build(&ds);
    let (topk, _) = k_n_match_ad(&mut a, &q, 12, 4).unwrap();
    let eps = topk.epsilon();
    let (by_eps, _) = eps_n_match_ad(&mut b, &q, eps, 4).unwrap();
    assert_eq!(by_eps.ids(), topk.ids());
    let streamed: Vec<u32> = NMatchStream::new(&mut c, &q, 4)
        .unwrap()
        .take(12)
        .map(|e| e.pid)
        .collect();
    let mut sorted_stream = streamed.clone();
    sorted_stream.sort_unstable();
    let mut sorted_top = topk.ids();
    sorted_top.sort_unstable();
    assert_eq!(sorted_stream, sorted_top);
}

#[test]
fn parallel_scan_agrees_everywhere() {
    let ds = uniform(3000, 10, 13);
    let q = ds.point(999).to_vec();
    for n in [1usize, 5, 10] {
        let par = k_n_match_scan_parallel(&ds, &q, 30, n, 8).unwrap();
        let ser = k_n_match_scan(&ds, &q, 30, n).unwrap();
        assert_eq!(par.ids(), ser.ids(), "n={n}");
    }
}
