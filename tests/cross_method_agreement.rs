//! Cross-crate integration: every exact implementation of the (frequent)
//! k-n-match query — naive scan, in-memory AD, disk AD, disk scan, and the
//! two-phase VA-file — must return identical answers on shared workloads.

use knmatch::data::{coil_like, labelled_clusters, skewed, uniform, ClusterSpec};
use knmatch::prelude::*;
use knmatch::storage::{BufferPool, HeapFile};

fn va_setup(ds: &Dataset, bits: u8) -> (VaFile, HeapFile, BufferPool<MemStore>) {
    let mut store = MemStore::new();
    let heap = HeapFile::build(&mut store, ds);
    let va = VaFile::build(&mut store, ds, bits);
    (va, heap, BufferPool::new(store, 128))
}

fn check_all_agree(ds: &Dataset, query: &[f64], k: usize, n0: usize, n1: usize) {
    let oracle = frequent_k_n_match_scan(ds, query, k, n0, n1).expect("oracle");

    let mut cols = SortedColumns::build(ds);
    let (mem_ad, _) = frequent_k_n_match_ad(&mut cols, query, k, n0, n1).expect("mem AD");
    assert_eq!(mem_ad.ids(), oracle.ids(), "in-memory AD vs oracle");

    let mut db = DiskDatabase::build_in_memory(ds, 64);
    let disk_ad = db.frequent_k_n_match(query, k, n0, n1).expect("disk AD");
    assert_eq!(disk_ad.result.ids(), oracle.ids(), "disk AD vs oracle");
    let disk_scan = db
        .scan_frequent_k_n_match(query, k, n0, n1)
        .expect("disk scan");
    assert_eq!(disk_scan.result.ids(), oracle.ids(), "disk scan vs oracle");

    let (va, heap, mut pool) = va_setup(ds, 8);
    let va_out = frequent_k_n_match_va(&va, &heap, &mut pool, query, k, n0, n1).expect("VA-file");
    assert_eq!(va_out.result.ids(), oracle.ids(), "VA-file vs oracle");

    // Per-n answer sets agree too.
    for (a, b) in oracle.per_n.iter().zip(&mem_ad.per_n) {
        assert_eq!(a.ids(), b.ids(), "per-n mismatch at n = {}", a.n);
    }
    for (a, b) in oracle.per_n.iter().zip(&va_out.result.per_n) {
        assert_eq!(a.ids(), b.ids(), "VA per-n mismatch at n = {}", a.n);
    }
}

#[test]
fn uniform_workload() {
    let ds = uniform(700, 8, 11);
    let q = ds.point(13).to_vec();
    check_all_agree(&ds, &q, 10, 2, 6);
    check_all_agree(&ds, &q, 1, 1, 1);
    check_all_agree(&ds, &q, 25, 8, 8);
}

#[test]
fn skewed_workload() {
    let ds = skewed(600, 10, 5);
    let q = ds.point(77).to_vec();
    check_all_agree(&ds, &q, 8, 3, 7);
}

#[test]
fn clustered_workload() {
    let lds = labelled_clusters(&ClusterSpec::new(300, 12, 3, 9));
    let q = lds.data.point(100).to_vec();
    check_all_agree(&lds.data, &q, 15, 4, 12);
}

#[test]
fn coil_workload() {
    let ds = coil_like(42);
    let q = ds.point(knmatch::data::COIL_QUERY_ID).to_vec();
    check_all_agree(&ds, &q, 4, 5, 30);
}

#[test]
fn paper_figures_end_to_end() {
    // Figure 1 semantics through the whole stack. (The Figure 1 data is
    // deliberately tie-heavy — several objects share exact per-dimension
    // differences — so distinct correct implementations may return
    // different, equally valid answer sets; we check the paper's stated
    // conclusions rather than id-for-id equality.)
    let ds = knmatch::core::paper::fig1_dataset();
    let q = knmatch::core::paper::fig1_query();
    let mut cols = SortedColumns::build(&ds);
    let (freq_ad, _) = frequent_k_n_match_ad(&mut cols, &q, 2, 1, 10).expect("AD");
    let freq_scan = frequent_k_n_match_scan(&ds, &q, 2, 1, 10).expect("scan");
    for freq in [&freq_ad, &freq_scan] {
        assert!(
            !freq.ids().contains(&3),
            "the all-20s object is never frequent"
        );
        for e in &freq.entries {
            assert!(e.pid <= 2);
        }
    }

    let mut db = DiskDatabase::build_in_memory(&ds, 16);
    let m6 = db.k_n_match(&q, 1, 6).expect("6-match");
    assert_eq!(m6.result.ids(), vec![2]);
    assert_eq!(m6.result.epsilon(), 0.0);

    // Figure 3's running example on every backend.
    let ds = knmatch::core::paper::fig3_dataset();
    let q = knmatch::core::paper::fig3_query();
    let mut db = DiskDatabase::build_in_memory(&ds, 16);
    let r = db.k_n_match(&q, 2, 2).expect("2-2-match");
    assert_eq!(r.result.ids(), vec![2, 1]);
    assert_eq!(r.result.epsilon(), 1.5);
    let (va, heap, mut pool) = va_setup(&ds, 8);
    let v = k_n_match_va(&va, &heap, &mut pool, &q, 2, 2).expect("VA 2-2-match");
    assert_eq!(v.result.ids(), vec![2, 1]);
}

#[test]
fn single_n_equals_frequent_with_degenerate_range() {
    let ds = uniform(200, 6, 3);
    let q = ds.point(50).to_vec();
    for n in [1, 3, 6] {
        let single = k_n_match_scan(&ds, &q, 7, n).expect("single");
        let freq = frequent_k_n_match_scan(&ds, &q, 7, n, n).expect("frequent");
        assert_eq!(single.ids(), freq.per_n[0].ids());
        let mut sorted_single = single.ids();
        sorted_single.sort_unstable();
        let mut freq_ids = freq.ids();
        freq_ids.sort_unstable();
        assert_eq!(
            sorted_single, freq_ids,
            "degenerate frequent = plain k-n-match"
        );
    }
}
