//! Cross-crate integration: the effectiveness experiments behave like the
//! paper's Section 5.1 on the synthetic stand-ins, at reduced scale.

use knmatch::data::{labelled_clusters, uci_standins, ClusterSpec};
use knmatch::eval::experiments::{fig8a, fig8b, fig9a, table2, table3, table4};
use knmatch::eval::{accuracy, ClassStripConfig, FrequentKnMatchMethod, KnnMethod};

#[test]
fn table2_and_table3_reproduce_the_boat_story() {
    let t2 = table2(42);
    let t3 = table3(42);
    // Image 78 (the differently-coloured boat): in several k-n-match
    // answer sets, never in the kNN top 10.
    let sightings = t2.rows.iter().filter(|(_, ids)| ids.contains(&78)).count();
    assert!(sightings >= 3, "{t2}");
    assert!(!t3.images.contains(&78), "{t3}");
    // Both contain the query image itself.
    assert!(t3.images.contains(&42));
    assert!(t2.rows.iter().all(|(_, ids)| ids.contains(&42)));
}

#[test]
fn table4_shape_matches_the_paper() {
    let t4 = table4(1, 40);
    // Five datasets, frequent k-n-match never clearly loses, and all
    // accuracies are in a sane band.
    assert_eq!(t4.rows.len(), 5);
    for r in &t4.rows {
        assert!(
            (0.5..=1.0).contains(&r.frequent),
            "{}: {}",
            r.dataset,
            r.frequent
        );
        assert!((0.3..=1.0).contains(&r.igrid), "{}: {}", r.dataset, r.igrid);
        if r.dims >= 15 {
            assert!(
                r.frequent >= r.igrid,
                "{}: frequent {} vs IGrid {}",
                r.dataset,
                r.frequent,
                r.igrid
            );
        }
    }
}

#[test]
fn fig8_sweeps_cover_the_grid_and_stay_bounded() {
    for sweep in [fig8a(2, 12), fig8b(2, 12)] {
        assert_eq!(sweep.series.len(), 3);
        for s in &sweep.series {
            assert!(!s.points.is_empty());
            assert!(s
                .points
                .iter()
                .all(|&(x, y)| x >= 1.0 && (0.0..=1.0).contains(&y)));
        }
        // Rendering works and mentions every dataset.
        let text = sweep.to_string();
        for name in ["ionosphere", "segmentation", "wdbc"] {
            assert!(text.contains(name), "{text}");
        }
    }
}

#[test]
fn fig9a_retrieval_monotone_and_under_total() {
    let sweep = fig9a(2, 8);
    for s in &sweep.series {
        let ys: Vec<f64> = s.points.iter().map(|p| p.1).collect();
        assert!(
            ys.windows(2).all(|w| w[1] >= w[0] - 1e-9),
            "{}: {ys:?}",
            s.label
        );
        assert!(ys.iter().all(|&y| (0.0..=100.0).contains(&y)));
    }
}

#[test]
fn noise_widens_the_knn_gap() {
    // The more glitched coordinates, the larger frequent k-n-match's edge
    // over kNN — the causal mechanism behind Table 4.
    let cfg = ClassStripConfig {
        queries: 50,
        k: 10,
        seed: 3,
    };
    let mut gaps = Vec::new();
    for noise in [0.0, 0.25] {
        let lds = labelled_clusters(&ClusterSpec {
            cardinality: 300,
            dims: 20,
            classes: 3,
            cluster_std: 0.05,
            noise_prob: noise,
            seed: 8,
        });
        let knn = accuracy(&lds, &KnnMethod, &cfg);
        let freq = accuracy(&lds, &FrequentKnMatchMethod { n0: 1, n1: 20 }, &cfg);
        gaps.push(freq - knn);
    }
    assert!(
        gaps[1] >= gaps[0] - 0.02,
        "the gap should not shrink as noise grows: {gaps:?}"
    );
}

#[test]
fn uci_standins_generate_at_paper_shapes() {
    for s in uci_standins() {
        let lds = s.generate(4);
        assert_eq!(lds.data.len(), s.cardinality);
        assert_eq!(lds.data.dims(), s.dims);
        assert_eq!(lds.classes(), s.classes, "{}", s.name);
    }
}
