//! Quickstart: the paper's motivating example, end to end.
//!
//! Run with: `cargo run --example quickstart`

use knmatch::prelude::*;

fn main() {
    // The paper's Figure 1 database: four 10-dimensional objects and the
    // query (1, 1, …, 1). Objects 1–3 agree with the query in 9 of 10
    // dimensions but each has one wildly-off dimension; object 4 is
    // uniformly mediocre (all coordinates 20).
    let ds = knmatch::core::paper::fig1_dataset();
    let query = knmatch::core::paper::fig1_query();

    println!("database (rows are objects, paper ids 1-4):");
    for (pid, row) in ds.iter() {
        println!("  object {}: {row:?}", pid + 1);
    }
    println!("query: {query:?}\n");

    // 1. Traditional kNN aggregates all dimensions, so the single noisy
    //    coordinate dominates and the all-20s object "wins".
    let nn = k_nearest(&ds, &query, 1, &Euclidean).expect("valid query");
    println!(
        "Euclidean NN        : object {} (distance {:.2}) — the wrong answer",
        nn[0].pid + 1,
        nn[0].dist
    );

    // 2. The k-n-match query matches in the n best dimensions instead.
    //    Build the sorted-dimension organisation once, then query with the
    //    AD algorithm.
    let mut cols = SortedColumns::build(&ds);
    for n in [6, 7, 8] {
        let (m, stats) = k_n_match_ad(&mut cols, &query, 1, n).expect("valid query");
        println!(
            "{n}-match            : object {} (ε = {:.1}, {} attributes retrieved of {})",
            m.ids()[0] + 1,
            m.epsilon(),
            stats.attributes_retrieved,
            ds.len() * ds.dims(),
        );
    }

    // 3. The frequent k-n-match query removes the need to pick n: it runs
    //    every n in [1, d] and ranks objects by how often they appear.
    let (freq, _) = frequent_k_n_match_ad(&mut cols, &query, 2, 1, ds.dims()).expect("valid query");
    println!("\nfrequent k-n-match over n ∈ [1, 10], k = 2:");
    for e in &freq.entries {
        println!(
            "  object {} appears in {} of 10 answer sets",
            e.pid + 1,
            e.count
        );
    }
    assert!(
        !freq.ids().contains(&3),
        "the all-20s object is never a frequent match"
    );
    println!("\nThe noisy objects outrank the aggregation-friendly decoy.");
}
