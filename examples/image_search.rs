//! Content-based image retrieval with partial similarity — the paper's
//! Section 5.1.1 scenario on the COIL-like feature dataset.
//!
//! A query image (a red boat) has a twin that differs only in colour. The
//! colour gap dominates Euclidean distance, so kNN never surfaces the twin;
//! the k-n-match query finds it by matching on the dimensions that agree.
//!
//! Run with: `cargo run --example image_search`

use knmatch::data::{coil_like, COIL_QUERY_ID};
use knmatch::prelude::*;

fn show(ids: &[PointId]) -> Vec<u32> {
    let mut v: Vec<u32> = ids.iter().map(|&p| p + 1).collect(); // paper ids are 1-based
    v.sort_unstable();
    v
}

fn main() {
    let ds = coil_like(42);
    let query = ds.point(COIL_QUERY_ID).to_vec();
    println!(
        "{} synthetic images × {} features (colour | texture | shape blocks)\n\
         query: image {} (the red boat)\n",
        ds.len(),
        ds.dims(),
        COIL_QUERY_ID + 1
    );

    // Table 3: the 10 nearest neighbours under Euclidean distance.
    let nn = k_nearest(&ds, &query, 10, &Euclidean).expect("valid query");
    let nn_ids: Vec<PointId> = nn.iter().map(|e| e.pid).collect();
    println!("kNN (k = 10)      : images {:?}", show(&nn_ids));
    assert!(
        !nn_ids.contains(&77),
        "the other boat (image 78) is invisible to kNN — its colour gap dominates"
    );

    // Table 2: k-n-match across n. The other boat (image 78) appears as
    // soon as n fits inside its matching texture+shape blocks.
    let mut cols = SortedColumns::build(&ds);
    println!("\nk-n-match (k = 4):");
    let mut boat_sightings = 0;
    for n in (5..=50).step_by(5) {
        let (m, _) = k_n_match_ad(&mut cols, &query, 4, n).expect("valid query");
        let ids = show(&m.ids());
        if ids.contains(&78) {
            boat_sightings += 1;
        }
        println!("  n = {n:>2}: images {ids:?}");
    }
    assert!(
        boat_sightings >= 3,
        "the twin boat must appear for several n"
    );

    // The frequent k-n-match query ranks by how often an image matches
    // across all n — full similarity without picking n.
    let (freq, _) = frequent_k_n_match_ad(&mut cols, &query, 5, 5, ds.dims()).expect("valid query");
    println!("\nfrequent k-n-match (k = 5, n ∈ [5, {}]):", ds.dims());
    for e in &freq.entries {
        println!("  image {:>3} appears {} times", e.pid + 1, e.count);
    }
    println!("\nImage 78 (the differently-coloured boat) is retrieved by matching;");
    println!("no aggregating metric at any k reaches it before 20 neighbours.");
}
