//! A live, updatable similarity index: sensor fingerprints come and go
//! while matching queries keep running — the paper's static model extended
//! with inserts, deletes and stable keys.
//!
//! Run with: `cargo run --example dynamic_index`

use knmatch::core::DynamicColumns;

fn main() {
    // Device fingerprints: 5 behavioural features per device, keyed by
    // device id. Devices enroll and retire over time.
    let mut index = DynamicColumns::new(5).expect("5 dims");

    let enroll = [
        (1001u64, [0.20, 0.31, 0.55, 0.10, 0.42]),
        (1002, [0.21, 0.30, 0.54, 0.11, 0.40]), // near-clone of 1001
        (1003, [0.80, 0.75, 0.20, 0.90, 0.65]),
        (1004, [0.22, 0.29, 0.90, 0.12, 0.41]), // clone of 1001 with one wild feature
        (1005, [0.50, 0.50, 0.50, 0.50, 0.50]),
    ];
    for (id, fp) in &enroll {
        index.insert(*id, fp).expect("valid fingerprint");
    }
    println!("enrolled {} devices", index.len());

    // A suspicious login presents a fingerprint close to device 1001.
    let probe = [0.21, 0.30, 0.56, 0.10, 0.43];
    let (matches, stats) = index.k_n_match(&probe, 3, 4).expect("valid query");
    println!("\n4-of-5-feature matches for the probe:");
    for m in &matches {
        println!("  device {}  (diff {:.3})", m.key, m.diff);
    }
    println!("  [{} attributes examined]", stats.attributes_retrieved);
    assert_eq!(matches[0].key, 1001);
    assert!(
        matches.iter().any(|m| m.key == 1004),
        "the one-wild-feature clone must surface under 4-of-5 matching"
    );

    // Device 1001 is retired; its clone should now top the ranking.
    index.remove(1001).expect("present");
    let (matches, _) = index.k_n_match(&probe, 2, 4).expect("valid query");
    println!("\nafter retiring device 1001:");
    for m in &matches {
        println!("  device {}  (diff {:.3})", m.key, m.diff);
    }
    assert_eq!(matches[0].key, 1002);

    // A re-enrollment updates in place.
    index
        .insert(1005, &[0.19, 0.32, 0.53, 0.09, 0.44])
        .expect("valid fingerprint");
    let (freq, _) = index
        .frequent_k_n_match(&probe, 2, 2, 5)
        .expect("valid query");
    println!("\nfrequent matches over n ∈ [2, 5] after 1005's new fingerprint:");
    for (key, count) in &freq {
        println!("  device {key}  appears {count} times");
    }
    assert!(freq.iter().any(|&(key, _)| key == 1005));
}
