//! Classifying noisy sensor profiles — the Table 4 mechanism on a
//! realistic workload.
//!
//! A fleet of machines emits 24-dimensional health profiles; each machine
//! belongs to one of four operating regimes (the classes). Individual
//! sensors occasionally glitch ("bad pixels, wrong readings or noise in a
//! signal", as the paper puts it), which wrecks aggregating metrics but not
//! matching-based search. We classify by retrieving the 20 most similar
//! profiles under each method and vote by class.
//!
//! Run with: `cargo run --example noisy_sensors`

use knmatch::eval::{accuracy, ClassStripConfig, FrequentKnMatchMethod, KnnMethod, PrebuiltIGrid};
use knmatch::prelude::*;

fn main() {
    let spec = ClusterSpec {
        cardinality: 800,
        dims: 24,
        classes: 4,
        cluster_std: 0.05,
        noise_prob: 0.12, // 12% of readings are glitched
        seed: 2026,
    };
    let fleet = labelled_clusters(&spec);
    println!(
        "{} machines × {} sensors, {} regimes, {}% glitched readings\n",
        spec.cardinality,
        spec.dims,
        spec.classes,
        (spec.noise_prob * 100.0) as u32
    );

    let cfg = ClassStripConfig {
        queries: 100,
        k: 20,
        seed: 7,
    };

    let knn = accuracy(&fleet, &KnnMethod, &cfg);
    println!("kNN (Euclidean)            accuracy: {:5.1}%", knn * 100.0);

    let igrid = PrebuiltIGrid::new(&fleet.data);
    let ig = accuracy(&fleet, &igrid, &cfg);
    println!("IGrid                      accuracy: {:5.1}%", ig * 100.0);

    let freq = accuracy(&fleet, &FrequentKnMatchMethod { n0: 4, n1: 24 }, &cfg);
    println!("frequent k-n-match [4, 24] accuracy: {:5.1}%", freq * 100.0);

    assert!(
        freq >= knn,
        "matching-based search must not lose to kNN under sensor noise"
    );

    // The n0/n1 trade-off of Figure 8, in miniature: too few dimensions
    // match by accident, too narrow a range loses the frequency signal.
    println!("\naccuracy across [n0, 24] ranges (Figure 8(a) in miniature):");
    for n0 in [1usize, 4, 8, 16, 22] {
        let a = accuracy(&fleet, &FrequentKnMatchMethod { n0, n1: 24 }, &cfg);
        println!("  n0 = {n0:>2}: {:5.1}%", a * 100.0);
    }
}
