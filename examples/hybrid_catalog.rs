//! Mixed-type similarity search: a product catalog with categorical and
//! numeric attributes, streamed lazily — the paper's footnote 1 ("uniform
//! treatment for both types of attributes") in action.
//!
//! Run with: `cargo run --example hybrid_catalog`

use knmatch::core::{
    eps_n_match_ad, k_n_match_hybrid, DimKind, HybridColumns, HybridSchema, NMatchStream,
};
use knmatch::prelude::*;

fn main() {
    // Products: (category, brand, price, rating, weight-kg) — two
    // categorical codes, three numerics (normalised to [0, 1]).
    let names = [
        "trail runner A",
        "trail runner B",
        "road shoe",
        "hiking boot",
        "trail runner C",
        "sandal",
        "approach shoe",
        "trail runner D",
    ];
    let ds = Dataset::from_rows(&[
        vec![0.0, 0.0, 0.55, 0.90, 0.30], // cat 0 = trail, brand 0
        vec![0.0, 1.0, 0.60, 0.85, 0.32],
        vec![1.0, 0.0, 0.50, 0.88, 0.25],
        vec![2.0, 2.0, 0.75, 0.80, 0.60],
        vec![0.0, 2.0, 0.58, 0.20, 0.31], // great fit, terrible rating
        vec![3.0, 3.0, 0.20, 0.70, 0.10],
        vec![2.0, 0.0, 0.65, 0.86, 0.45],
        vec![0.0, 0.0, 0.95, 0.89, 0.33], // right kind, premium price
    ])
    .unwrap();
    let schema = HybridSchema::new(vec![
        DimKind::Categorical { weight: 1.0 }, // category: must match exactly
        DimKind::Categorical { weight: 0.5 }, // brand: softer penalty
        DimKind::Numeric { weight: 1.0 },     // price
        DimKind::Numeric { weight: 1.0 },     // rating
        DimKind::Numeric { weight: 1.0 },     // weight
    ])
    .unwrap();
    let cols = HybridColumns::build(&ds, schema).unwrap();

    // "Find me something like trail runner A."
    let query = ds.point(0).to_vec();
    println!("query: {}\n", names[0]);

    let (matches, stats) = k_n_match_hybrid(&cols, &query, 4, 3).unwrap();
    println!("top 4 by 3-of-5 attribute match:");
    for e in &matches.entries {
        println!("  {:<16} (diff {:.3})", names[e.pid as usize], e.diff);
    }
    println!("  [{} attributes read]\n", stats.attributes_retrieved);
    assert_eq!(
        matches.entries[0].pid, 0,
        "the query product matches itself"
    );
    assert!(
        matches.contains(4),
        "the bad-rating twin matches on 4 of 5 dims"
    );

    // Numeric-only view of the same catalog, streamed lazily: the consumer
    // decides when to stop.
    let numeric =
        Dataset::from_rows(&ds.iter().map(|(_, p)| p[2..].to_vec()).collect::<Vec<_>>()).unwrap();
    let mut cols2 = SortedColumns::build(&numeric);
    let mut stream = NMatchStream::new(&mut cols2, &query[2..], 2).unwrap();
    println!("streaming 2-of-3 numeric matches until diff exceeds 0.1:");
    for e in stream.by_ref() {
        if e.diff > 0.1 {
            break;
        }
        println!("  {:<16} (diff {:.3})", names[e.pid as usize], e.diff);
    }
    println!(
        "  [{} attributes read lazily]\n",
        stream.stats().attributes_retrieved
    );

    // Threshold form: everything matching 4 of 5 attributes within 0.08.
    let mut cols3 = SortedColumns::build(&ds);
    let (eps_res, _) = eps_n_match_ad(&mut cols3, &query, 0.08, 4).unwrap();
    println!("ε-4-match within 0.08: {} products", eps_res.entries.len());
    for e in &eps_res.entries {
        println!("  {:<16} (diff {:.3})", names[e.pid as usize], e.diff);
    }
}
