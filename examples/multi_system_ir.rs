//! Information retrieval from multiple systems — the cost model under
//! which the paper proves the AD algorithm optimal (Section 3).
//!
//! Each "system" scores every object on one criterion and serves its
//! scores by sorted access only (Fagin's model). Similarity search across
//! the systems is a k-n-match query; the AD algorithm retrieves provably
//! the fewest individual scores. This example simulates the systems with a
//! custom [`SortedAccessSource`] that bills every sorted access, and also
//! demonstrates why Fagin's FA does not apply: the n-match difference is
//! not a monotone aggregation function.
//!
//! Run with: `cargo run --example multi_system_ir`

use knmatch::prelude::*;

/// A federation of scoring systems: dimension `i` is system `i`'s ranked
/// score list. Every sorted access is billed.
struct Federation {
    columns: SortedColumns,
    accesses_billed: u64,
}

impl Federation {
    fn new(rows: &[Vec<f64>]) -> Self {
        Federation {
            columns: SortedColumns::from_rows(rows).expect("well-formed scores"),
            accesses_billed: 0,
        }
    }
}

impl SortedAccessSource for Federation {
    fn dims(&self) -> usize {
        self.columns.dims()
    }
    fn cardinality(&self) -> usize {
        self.columns.cardinality()
    }
    fn locate(&mut self, dim: usize, q: f64) -> usize {
        // Systems expose a "seek to score" call; we bill it separately
        // from per-score accesses (the paper's optimality theorem counts
        // retrieved attributes).
        SortedAccessSource::locate(&mut self.columns, dim, q)
    }
    fn entry(&mut self, dim: usize, rank: usize) -> SortedEntry {
        self.accesses_billed += 1;
        SortedAccessSource::entry(&mut self.columns, dim, rank)
    }
}

fn main() {
    // The paper's Figure 3: five documents scored by three systems.
    let scores = vec![
        vec![0.4, 1.0, 1.0],
        vec![2.8, 5.5, 2.0],
        vec![6.5, 7.8, 5.0],
        vec![9.0, 9.0, 9.0],
        vec![3.5, 1.5, 8.0],
    ];
    let query = [3.0, 7.0, 4.0];
    let mut fed = Federation::new(&scores);
    let total: u64 = (fed.dims() * fed.cardinality()) as u64;

    println!("3 systems × 5 documents; query profile {query:?}\n");

    // Why FA does not apply: document 1 is below document 2 in EVERY
    // system, yet its 1-match difference is larger — the aggregation is
    // not monotone, so threshold-style early stopping on ranks is unsound.
    let d1 = nmatch_difference(&scores[0], &query, 1);
    let d2 = nmatch_difference(&scores[1], &query, 1);
    println!("document 1 ≤ document 2 everywhere, yet 1-match differences: {d1:.1} vs {d2:.1}");
    assert!(d1 > d2);

    // The AD algorithm answers the 2-2-match with provably minimal sorted
    // accesses (Theorem 3.2).
    let (res, stats) = k_n_match_ad(&mut fed, &query, 2, 2).expect("valid query");
    println!(
        "\n2-2-match answer: documents {:?} (ε = {})",
        res.ids(),
        res.epsilon()
    );
    println!(
        "sorted accesses billed: {} of {} total scores ({} heap pops, {} seeks)",
        fed.accesses_billed, total, stats.heap_pops, stats.locate_probes
    );
    assert_eq!(fed.accesses_billed, stats.attributes_retrieved);
    assert!(fed.accesses_billed < total);

    // A frequent k-n-match over every n costs no more than the single
    // k-n1-match (Theorem 3.3): the per-n answers fall out for free.
    let mut fed2 = Federation::new(&scores);
    let (freq, fstats) = frequent_k_n_match_ad(&mut fed2, &query, 2, 1, 3).expect("valid query");
    println!(
        "\nfrequent 2-n-match over n ∈ [1, 3]: ranked documents {:?} — \
         {} accesses (same as a plain 2-3-match)",
        freq.ids(),
        fstats.attributes_retrieved
    );
}
