//! The disk substrate in action: one dataset, four access methods, page-
//! accurate cost accounting — a miniature of the paper's Figures 10–13.
//!
//! Run with: `cargo run --release --example disk_database`

use knmatch::data::uniform;
use knmatch::igrid::DiskIGrid;
use knmatch::prelude::*;
use knmatch::storage::{BufferPool, CostModel, HeapFile};

fn main() {
    let (c, d) = (50_000, 16);
    let ds = uniform(c, d, 1);
    let query: Vec<f64> = ds.point(123).to_vec();
    let (k, n0, n1) = (20, 4, 8);
    let model = CostModel::default();
    println!("{c} points × {d} dims on 4 KiB pages; frequent {k}-n-match, n ∈ [{n0}, {n1}]\n");

    // Sequential scan of the heap file.
    let mut db = DiskDatabase::build_in_memory(&ds, 256);
    let scan = db
        .scan_frequent_k_n_match(&query, k, n0, n1)
        .expect("valid query");
    report("sequential scan", scan.io, model);

    // Disk-based AD over the sorted-column file.
    db.pool_mut().invalidate_all();
    let ad = db
        .frequent_k_n_match(&query, k, n0, n1)
        .expect("valid query");
    report("AD algorithm", ad.io, model);
    println!(
        "    ({} of {} attributes retrieved — Theorem 3.2's minimum)",
        ad.ad.attributes_retrieved,
        c * d
    );

    // The VA-file adaptation: sequential approximation scan, then random
    // refinement fetches.
    let mut store = MemStore::new();
    let heap = HeapFile::build(&mut store, &ds);
    let va = VaFile::build(&mut store, &ds, 8);
    let mut pool = BufferPool::new(store, 256);
    let vout =
        frequent_k_n_match_va(&va, &heap, &mut pool, &query, k, n0, n1).expect("valid query");
    report("VA-file", vout.io, model);
    println!("    ({} of {c} points survived the filter)", vout.refined);

    // IGrid's fragmented inverted lists.
    let mut store = MemStore::new();
    let ig = DiskIGrid::build_default(&mut store, &ds);
    let mut pool = BufferPool::new(store, 256);
    let (_, ig_io) = ig.query(&mut pool, &query, k).expect("valid query");
    report("IGrid", ig_io, model);

    // All exact methods agree on the answer.
    let exact = frequent_k_n_match_scan(&ds, &query, k, n0, n1).expect("valid query");
    assert_eq!(ad.result.ids(), exact.ids());
    assert_eq!(vout.result.ids(), exact.ids());
    println!("\nAD, VA-file and the scan return identical answers; they differ only in cost.");
}

fn report(name: &str, io: IoStats, model: CostModel) {
    println!(
        "{name:<16}: {:>6} pages ({:>6} sequential, {:>5} random) → {:>8.1} ms modelled",
        io.page_accesses(),
        io.sequential_reads,
        io.random_reads,
        io.response_time_ms(model)
    );
}
