//! Criterion: the competitor methods — VA-file (two-phase), IGrid
//! (in-memory and disk), and the kNN scan baseline — against the AD
//! algorithm on one shared workload (Figures 10 and 13's wall-clock
//! analogue).

use criterion::{criterion_group, criterion_main, Criterion};
use knmatch_core::{k_nearest, Euclidean, SortedColumns};
use knmatch_data::uniform;
use knmatch_igrid::{DiskIGrid, IGridIndex};
use knmatch_storage::{BufferPool, HeapFile, MemStore};
use knmatch_vafile::VaFile;

const CARD: usize = 40_000;
const DIMS: usize = 16;

fn bench_methods(c: &mut Criterion) {
    let ds = uniform(CARD, DIMS, 11);
    let query = ds.point(123).to_vec();

    let mut cols = SortedColumns::build(&ds);

    let mut store = MemStore::new();
    let heap = HeapFile::build(&mut store, &ds);
    let va = VaFile::build(&mut store, &ds, 8);
    let mut va_pool = BufferPool::new(store, 256);

    let igrid_mem = IGridIndex::build(&ds);
    let mut ig_store = MemStore::new();
    let igrid_disk = DiskIGrid::build_default(&mut ig_store, &ds);
    let mut ig_pool = BufferPool::new(ig_store, 256);

    let mut group = c.benchmark_group("methods_40k_16d");
    group.bench_function("AD_frequent_4_8", |b| {
        b.iter(|| {
            knmatch_core::frequent_k_n_match_ad(&mut cols, &query, 20, 4, 8).expect("valid")
        })
    });
    group.bench_function("vafile_frequent_4_8", |b| {
        b.iter(|| {
            va_pool.invalidate_all();
            knmatch_vafile::frequent_k_n_match_va(&va, &heap, &mut va_pool, &query, 20, 4, 8)
                .expect("valid")
        })
    });
    group.bench_function("igrid_mem_top20", |b| {
        b.iter(|| igrid_mem.query(&query, 20).expect("valid"))
    });
    group.bench_function("igrid_disk_top20", |b| {
        b.iter(|| {
            ig_pool.invalidate_all();
            igrid_disk.query(&mut ig_pool, &query, 20).expect("valid")
        })
    });
    group.bench_function("knn_scan_top20", |b| {
        b.iter(|| k_nearest(&ds, &query, 20, &Euclidean).expect("valid"))
    });
    group.finish();
}

fn bench_builds(c: &mut Criterion) {
    let ds = uniform(CARD, DIMS, 11);
    let mut group = c.benchmark_group("builds_40k_16d");
    group.sample_size(10);
    group.bench_function("vafile_8bit", |b| {
        b.iter(|| VaFile::build(&mut MemStore::new(), &ds, 8))
    });
    group.bench_function("igrid_disk", |b| {
        b.iter(|| DiskIGrid::build_default(&mut MemStore::new(), &ds))
    });
    group.bench_function("igrid_mem", |b| b.iter(|| IGridIndex::build(&ds)));
    group.finish();
}

criterion_group!(benches, bench_methods, bench_builds);
criterion_main!(benches);
