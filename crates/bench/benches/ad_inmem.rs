//! Criterion: in-memory AD algorithm vs the naive scan (the paper's
//! Section 3 cost claims in wall-clock form), across n, k, and the
//! frequent range.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use knmatch_core::{
    frequent_k_n_match_ad, frequent_k_n_match_scan, k_n_match_ad, k_n_match_scan,
    SortedColumns,
};
use knmatch_data::uniform;

const CARD: usize = 50_000;
const DIMS: usize = 16;

fn bench_k_n_match(c: &mut Criterion) {
    let ds = uniform(CARD, DIMS, 7);
    let mut cols = SortedColumns::build(&ds);
    let query = ds.point(4242).to_vec();

    let mut group = c.benchmark_group("k_n_match_50k_16d");
    for n in [2usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("AD", n), &n, |b, &n| {
            b.iter(|| k_n_match_ad(&mut cols, &query, 20, n).expect("valid"))
        });
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, &n| {
            b.iter(|| k_n_match_scan(&ds, &query, 20, n).expect("valid"))
        });
    }
    group.finish();
}

fn bench_frequent(c: &mut Criterion) {
    let ds = uniform(CARD, DIMS, 7);
    let mut cols = SortedColumns::build(&ds);
    let query = ds.point(777).to_vec();

    let mut group = c.benchmark_group("frequent_k_n_match_50k_16d");
    for (n0, n1) in [(4usize, 8usize), (1, 16)] {
        let label = format!("[{n0},{n1}]");
        group.bench_with_input(BenchmarkId::new("AD", &label), &(n0, n1), |b, &(n0, n1)| {
            b.iter(|| frequent_k_n_match_ad(&mut cols, &query, 20, n0, n1).expect("valid"))
        });
        group.bench_with_input(BenchmarkId::new("scan", &label), &(n0, n1), |b, &(n0, n1)| {
            b.iter(|| frequent_k_n_match_scan(&ds, &query, 20, n0, n1).expect("valid"))
        });
    }
    group.finish();
}

fn bench_k_sweep(c: &mut Criterion) {
    let ds = uniform(CARD, DIMS, 7);
    let mut cols = SortedColumns::build(&ds);
    let query = ds.point(31337).to_vec();

    let mut group = c.benchmark_group("ad_k_sweep_50k_16d");
    for k in [1usize, 20, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| k_n_match_ad(&mut cols, &query, k, 8).expect("valid"))
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let ds = uniform(CARD, DIMS, 7);
    c.bench_function("sorted_columns_build_50k_16d", |b| {
        b.iter(|| SortedColumns::build(&ds))
    });
}

criterion_group!(benches, bench_k_n_match, bench_frequent, bench_k_sweep, bench_build);
criterion_main!(benches);
