//! Criterion ablations for the design choices DESIGN.md calls out:
//! frontier representation (heap vs the paper's linear `g[]`), buffer-pool
//! size, R-tree kNN across the dimensionality curse, and the hybrid-schema
//! overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use knmatch_core::{
    frequent_k_n_match_ad, frequent_k_n_match_ad_linear, HybridColumns, HybridSchema,
    SortedColumns,
};
use knmatch_data::uniform;
use knmatch_rtree::RTree;
use knmatch_storage::DiskDatabase;

fn bench_frontier(c: &mut Criterion) {
    // O(log d) heap vs the paper's O(d) linear scan per pop: the gap should
    // widen with dimensionality.
    for d in [16usize, 48] {
        let ds = uniform(30_000, d, 5);
        let mut cols = SortedColumns::build(&ds);
        let q = ds.point(77).to_vec();
        let mut group = c.benchmark_group(format!("frontier_{d}d"));
        group.bench_function("heap", |b| {
            b.iter(|| frequent_k_n_match_ad(&mut cols, &q, 20, 4, 8.min(d)).expect("valid"))
        });
        group.bench_function("linear_g_array", |b| {
            b.iter(|| {
                frequent_k_n_match_ad_linear(&mut cols, &q, 20, 4, 8.min(d)).expect("valid")
            })
        });
        group.finish();
    }
}

fn bench_pool_size(c: &mut Criterion) {
    let ds = uniform(30_000, 16, 9);
    let q = ds.point(123).to_vec();
    let mut group = c.benchmark_group("disk_ad_pool_size");
    for pool_pages in [16usize, 256, 4096] {
        let mut db = DiskDatabase::build_in_memory(&ds, pool_pages);
        group.bench_with_input(
            BenchmarkId::from_parameter(pool_pages),
            &pool_pages,
            |b, _| {
                b.iter(|| {
                    db.pool_mut().invalidate_all();
                    db.frequent_k_n_match(&q, 20, 4, 8).expect("valid")
                })
            },
        );
    }
    group.finish();
}

fn bench_rtree_curse(c: &mut Criterion) {
    // Wall-clock view of Ext-1: R-tree kNN collapses to scan speed at high
    // dimensionality.
    for d in [4usize, 32] {
        let ds = uniform(30_000, d, 3);
        let tree = RTree::bulk_load(&ds).expect("non-empty");
        let q = ds.point(42).to_vec();
        let mut group = c.benchmark_group(format!("knn_{d}d_30k"));
        group.bench_function("rtree", |b| {
            b.iter(|| tree.k_nearest(&ds, &q, 10).expect("valid"))
        });
        group.bench_function("scan", |b| {
            b.iter(|| knmatch_core::k_nearest(&ds, &q, 10, &knmatch_core::Euclidean).expect("valid"))
        });
        group.finish();
    }
}

fn bench_hybrid_overhead(c: &mut Criterion) {
    let ds = uniform(30_000, 16, 7);
    let q = ds.point(11).to_vec();
    let mut plain = SortedColumns::build(&ds);
    let schema = HybridSchema::all_numeric(16).expect("valid schema");
    let hybrid = HybridColumns::build(&ds, schema).expect("matching dims");
    let mut group = c.benchmark_group("hybrid_vs_plain_16d");
    group.bench_function("plain", |b| {
        b.iter(|| knmatch_core::k_n_match_ad(&mut plain, &q, 20, 8).expect("valid"))
    });
    group.bench_function("hybrid_all_numeric", |b| {
        b.iter(|| knmatch_core::k_n_match_hybrid(&hybrid, &q, 20, 8).expect("valid"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_frontier,
    bench_pool_size,
    bench_rtree_curse,
    bench_hybrid_overhead
);
criterion_main!(benches);
