//! Criterion: the disk substrate — disk-based AD vs the sequential scan
//! through the page/buffer-pool stack (Figures 11–12's wall-clock analogue)
//! on uniform and skewed (texture-like) data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use knmatch_data::{skewed, uniform};
use knmatch_storage::DiskDatabase;

const CARD: usize = 40_000;
const DIMS: usize = 16;

fn bench_disk_ad_vs_scan(c: &mut Criterion) {
    for (name, ds) in
        [("uniform", uniform(CARD, DIMS, 3)), ("texture", skewed(CARD, DIMS, 3))]
    {
        let mut db = DiskDatabase::build_in_memory(&ds, 256);
        let query = ds.point(999).to_vec();
        let mut group = c.benchmark_group(format!("disk_frequent_{name}_40k_16d"));
        group.bench_function("AD", |b| {
            b.iter(|| {
                db.pool_mut().invalidate_all();
                db.frequent_k_n_match(&query, 20, 4, 8).expect("valid")
            })
        });
        group.bench_function("scan", |b| {
            b.iter(|| {
                db.pool_mut().invalidate_all();
                db.scan_frequent_k_n_match(&query, 20, 4, 8).expect("valid")
            })
        });
        group.finish();
    }
}

fn bench_disk_n1_sweep(c: &mut Criterion) {
    let ds = skewed(CARD, DIMS, 3);
    let mut db = DiskDatabase::build_in_memory(&ds, 256);
    let query = ds.point(31).to_vec();
    let mut group = c.benchmark_group("disk_ad_n1_sweep_texture");
    for n1 in [8usize, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n1), &n1, |b, &n1| {
            b.iter(|| {
                db.pool_mut().invalidate_all();
                db.frequent_k_n_match(&query, 20, 4, n1).expect("valid")
            })
        });
    }
    group.finish();
}

fn bench_disk_build(c: &mut Criterion) {
    let ds = uniform(CARD, DIMS, 3);
    c.bench_function("disk_database_build_40k_16d", |b| {
        b.iter(|| DiskDatabase::build_in_memory(&ds, 256))
    });
}

criterion_group!(benches, bench_disk_ad_vs_scan, bench_disk_n1_sweep, bench_disk_build);
criterion_main!(benches);
