//! # knmatch-bench
//!
//! The reproduction harness: paper-scale experiment drivers shared by the
//! `repro` binary and the Criterion benches. Every table and figure of the
//! paper's Section 5 maps to one experiment name (see DESIGN.md §4).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use knmatch_eval::experiments as exp;

/// Scale of a reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's sizes: 100k-point uniform data, the 68,040-point
    /// Texture stand-in, 100 class-stripping queries.
    Full,
    /// ~1/5 scale for smoke runs and CI.
    Quick,
}

impl Scale {
    /// Uniform-dataset cardinality for Figures 10–12.
    pub fn uniform_card(self) -> usize {
        match self {
            Scale::Full => 100_000,
            Scale::Quick => 20_000,
        }
    }

    /// Texture stand-in cardinality.
    pub fn texture_card(self) -> usize {
        match self {
            Scale::Full => 68_040,
            Scale::Quick => 16_000,
        }
    }

    /// Class-stripping queries per dataset.
    pub fn queries(self) -> usize {
        match self {
            Scale::Full => 100,
            Scale::Quick => 25,
        }
    }

    /// Query points per efficiency measurement.
    pub fn eff_queries(self) -> usize {
        match self {
            Scale::Full => 5,
            Scale::Quick => 3,
        }
    }

    /// Cardinality sweep of Figure 13(b).
    pub fn fig13_sizes(self) -> Vec<usize> {
        match self {
            Scale::Full => vec![50_000, 100_000, 200_000, 300_000],
            Scale::Quick => vec![10_000, 20_000, 40_000],
        }
    }

    /// Dimensionality sweep of Figure 14.
    pub fn fig14_dims(self) -> Vec<usize> {
        vec![8, 16, 32, 48]
    }

    /// Figure 14's per-dataset cardinality.
    pub fn fig14_card(self) -> usize {
        match self {
            Scale::Full => 100_000,
            Scale::Quick => 20_000,
        }
    }
}

/// Master seed for every reproduction run (deterministic output).
pub const SEED: u64 = 42;

/// The experiments the harness can run, in paper order.
pub const EXPERIMENTS: &[&str] = &[
    "fig1", "fig2", "fig3", "table2", "table3", "table4", "fig8a", "fig8b", "fig9a", "fig9b",
    "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "ext1", "ext2", "ext3", "ext4", "ext5",
    "ext6",
];

/// Runs one experiment by name at the given scale, returning its report.
///
/// The figure-10/11/12/15 contexts are rebuilt per call; use
/// [`run_efficiency_block`] to amortise the build over all four.
///
/// # Errors
///
/// Returns an error string for unknown experiment names.
pub fn run(name: &str, scale: Scale) -> Result<String, String> {
    match name {
        "fig1" => Ok(fig1_report()),
        "fig2" => Ok(fig2_report()),
        "fig3" => Ok(fig3_report()),
        "table2" => Ok(exp::table2(SEED).to_string()),
        "table3" => Ok(exp::table3(SEED).to_string()),
        "table4" => Ok(exp::table4(SEED, scale.queries()).to_string()),
        "fig8a" => Ok(exp::fig8a(SEED, scale.queries()).to_string()),
        "fig8b" => Ok(exp::fig8b(SEED, scale.queries()).to_string()),
        "fig9a" => Ok(exp::fig9a(SEED, scale.queries()).to_string()),
        "fig9b" => Ok(exp::fig9b(SEED, scale.queries()).to_string()),
        "fig10" | "fig11" | "fig12" | "fig15" => Ok(run_efficiency_block(scale, Some(name))),
        "fig13" => Ok(exp::fig13(
            scale.uniform_card(),
            &scale.fig13_sizes(),
            &[10, 20, 30, 40],
            scale.eff_queries(),
            SEED,
        )
        .to_string()),
        "fig14" => Ok(exp::fig14(
            scale.fig14_card(),
            &scale.fig14_dims(),
            scale.eff_queries(),
            SEED,
        )
        .to_string()),
        "ext1" => Ok(exp::ext_curse(
            scale.fig14_card() / 2,
            &[2, 4, 8, 16, 32, 48],
            scale.eff_queries(),
            SEED,
        )
        .to_string()),
        "ext2" => Ok(exp::ext_cost_model(
            scale.uniform_card() / 2,
            &[1.0, 2.5, 5.0, 10.0, 20.0],
            scale.eff_queries(),
            SEED,
        )
        .to_string()),
        "ext3" => Ok(exp::ext_va_bits(
            scale.uniform_card() / 2,
            &[2, 4, 6, 8],
            scale.eff_queries(),
            SEED,
        )
        .to_string()),
        "ext4" => Ok(exp::ext_methods(SEED, scale.queries()).to_string()),
        "ext5" => Ok(exp::ext_stride(SEED, scale.queries(), &[1, 2, 3, 4, 6, 8]).to_string()),
        "ext6" => {
            Ok(exp::ext_igrid_bins(SEED, scale.queries(), &[2, 4, 8, 17, 32, 64]).to_string())
        }
        other => Err(format!(
            "unknown experiment '{other}'; expected one of {EXPERIMENTS:?} or 'all'"
        )),
    }
}

/// Runs the context-sharing efficiency figures (10, 11, 12, 15) in one
/// build; `only` restricts the output to a single figure.
pub fn run_efficiency_block(scale: Scale, only: Option<&str>) -> String {
    let mut ctx = exp::eff_context(
        scale.uniform_card(),
        scale.texture_card(),
        scale.eff_queries(),
        SEED,
    );
    let mut out = String::new();
    let ks = [10usize, 20, 30];
    if only.is_none() || only == Some("fig10") {
        out.push_str(&exp::fig10(&mut ctx, &ks).to_string());
    }
    if only.is_none() || only == Some("fig11") {
        out.push_str(&exp::fig11(&mut ctx, &ks).to_string());
    }
    if only.is_none() || only == Some("fig12") {
        out.push_str(&exp::fig12(&mut ctx, &[8, 10, 12, 14, 16], 20).to_string());
    }
    if only.is_none() || only == Some("fig15") {
        out.push_str(&exp::fig15(&mut ctx, &[6, 8, 10, 12, 14, 16], 20).to_string());
    }
    out
}

/// The paper's Figure 1 walk-through as text.
fn fig1_report() -> String {
    use knmatch_core::{k_n_match_scan, k_nearest, paper, Euclidean};
    let ds = paper::fig1_dataset();
    let q = paper::fig1_query();
    let nn = k_nearest(&ds, &q, 1, &Euclidean).expect("static data");
    let mut out = String::from("Figure 1: the motivating 10-d database, query (1,...,1)\n");
    out.push_str(&format!(
        "  Euclidean NN: object {} (the all-20s object)\n",
        nn[0].pid + 1
    ));
    for (n, eps) in [(6usize, 0.0), (7, 0.2), (8, 0.4)] {
        let m = k_n_match_scan(&ds, &q, 1, n).expect("static data");
        out.push_str(&format!(
            "  {n}-match: object {} (eps = {:.1}; paper says eps = {eps})\n",
            m.ids()[0] + 1,
            m.epsilon()
        ));
    }
    out
}

/// The paper's Figure 2 relationships as text.
fn fig2_report() -> String {
    use knmatch_core::{k_n_match_scan, paper, skyline_wrt};
    let ds = paper::fig2_dataset();
    let q = paper::fig2_query();
    let name = |pid: u32| (b'A' + pid as u8) as char;
    let names = |ids: &[u32]| ids.iter().map(|&p| name(p)).collect::<String>();
    let mut out = String::from("Figure 2: the 2-d n-match example (points A-E)\n");
    let m1 = k_n_match_scan(&ds, &q, 1, 1).expect("static data");
    let m2 = k_n_match_scan(&ds, &q, 1, 2).expect("static data");
    let m31 = k_n_match_scan(&ds, &q, 3, 1).expect("static data");
    let m22 = k_n_match_scan(&ds, &q, 2, 2).expect("static data");
    let sky = skyline_wrt(&ds, &q).expect("static data");
    out.push_str(&format!("  1-match: {}\n", names(&m1.ids())));
    out.push_str(&format!("  2-match: {}\n", names(&m2.ids())));
    let mut ids = m31.ids();
    ids.sort_unstable();
    out.push_str(&format!("  3-1-match: {{{}}}\n", names(&ids)));
    let mut ids = m22.ids();
    ids.sort_unstable();
    out.push_str(&format!("  2-2-match: {{{}}}\n", names(&ids)));
    out.push_str(&format!("  skyline:   {{{}}}\n", names(&sky)));
    out
}

/// The paper's Figure 3/5 running example as text.
fn fig3_report() -> String {
    use knmatch_core::{k_n_match_ad, paper, SortedColumns};
    let ds = paper::fig3_dataset();
    let q = paper::fig3_query();
    let mut cols = SortedColumns::build(&ds);
    let (res, stats) = k_n_match_ad(&mut cols, &q, 2, 2).expect("static data");
    let ids: Vec<u32> = res.ids().iter().map(|p| p + 1).collect();
    format!(
        "Figure 3/5: AD running example - 2-2-match of (3.0, 7.0, 4.0)\n  \
         answer: points {ids:?} (paper: {{2, 3}}), eps = {}\n  \
         {} attributes retrieved, {} triples popped (paper's walk pops 5)\n",
        res.epsilon(),
        stats.attributes_retrieved,
        stats.heap_pops
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_reports_match_paper() {
        let f1 = fig1_report();
        assert!(f1.contains("Euclidean NN: object 4"));
        assert!(f1.contains("6-match: object 3"));
        let f2 = fig2_report();
        assert!(f2.contains("1-match: A"));
        assert!(f2.contains("2-match: B"));
        assert!(f2.contains("3-1-match: {ADE}"));
        assert!(f2.contains("2-2-match: {AB}"));
        assert!(f2.contains("skyline:   {ABC}"));
        let f3 = fig3_report();
        assert!(f3.contains("[3, 2]"), "{f3}");
        assert!(f3.contains("eps = 1.5"));
    }

    #[test]
    fn run_rejects_unknown() {
        assert!(run("fig99", Scale::Quick).is_err());
    }

    #[test]
    fn run_table2_quick() {
        let out = run("table2", Scale::Quick).unwrap();
        assert!(out.contains("Table 2"));
    }
}
