//! Event-loop server connection-scaling benchmark. Emits
//! `BENCH_connections.json`.
//!
//! ```text
//! cargo run -p knmatch-bench --release --bin connection_scaling
//! cargo run -p knmatch-bench --release --bin connection_scaling -- \
//!     --cardinality 100000 --dims 32 -k 10 -n 2 --queries 256 \
//!     --depth 8 --threads 8 --out BENCH_connections.json
//! cargo run -p knmatch-bench --release --bin connection_scaling -- --smoke
//! ```
//!
//! Two measurements against the [`EventServer`] (DESIGN.md §13–14),
//! repeated for every readiness backend the host offers (`poll`
//! everywhere, plus edge-triggered `epoll` on Linux), both using the
//! compact binary frame protocol:
//!
//! 1. **pipelined efficiency** — one loopback connection keeps
//!    `--depth` binary `BATCH` frames of `--batch` queries in flight
//!    (send 8 ahead, then one send per response), against a direct
//!    in-process `BatchEngine::run` baseline on the same engine. A
//!    second probe pipelines *single-query* frames
//!    (`Client::run_pipelined`) to expose the per-request overhead
//!    floor. Every served answer is asserted bit-identical to the
//!    direct run before any number is reported.
//! 2. **connection sweep** — for each point (64 → 4096 connections by
//!    default, `--smoke` runs 256 only) a fresh server accepts all
//!    connections up front; `--threads` driver threads then write one
//!    binary `BATCH` frame per connection before reading any response,
//!    so the reactor holds every connection's work in flight at once.
//!    All answers are again asserted bit-identical to the direct run.
//!
//! A counting `#[global_allocator]` reports process-wide allocation
//! counts per point — client and server share the process, so the
//! absolute number includes driver-side parsing, but the poll-vs-epoll
//! *difference* isolates the serving path, and the reactor counters
//! (`poll_iterations`, `events_dispatched`, `writev_calls`) come from
//! STATS. Wall-clock timing only (`std::time::Instant`), no external
//! bench framework, so the workspace builds offline.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// `System` plus two counters, so each measured section can report how
/// many allocations the whole process performed.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counters are plain atomics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// (allocations, bytes) since process start.
fn alloc_counts() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

#[cfg(unix)]
mod real {
    use std::fmt::Write as _;
    use std::sync::Barrier;
    use std::thread;
    use std::time::{Duration, Instant};

    use knmatch_core::{BatchAnswer, BatchEngine, BatchOutcome, BatchQuery, Dataset};
    use knmatch_data::rng::seeded;
    use knmatch_server::{Backend, Client, EngineConfig, EventServer, ReactorChoice, ServerConfig};

    use super::alloc_counts;

    pub struct Config {
        cardinality: usize,
        dims: usize,
        k: usize,
        n: usize,
        queries: usize,
        depth: usize,
        batch: usize,
        threads: usize,
        passes: usize,
        max_conns: usize,
        seed: u64,
        out: String,
        smoke: bool,
    }

    impl Config {
        fn parse() -> Config {
            let args: Vec<String> = std::env::args().skip(1).collect();
            let get = |flag: &str| {
                args.iter()
                    .position(|a| a == flag)
                    .and_then(|i| args.get(i + 1))
                    .cloned()
            };
            let num = |flag: &str, default: usize| {
                get(flag).map_or(default, |v| {
                    v.parse().unwrap_or_else(|_| panic!("bad {flag}"))
                })
            };
            if args.iter().any(|a| a == "--help" || a == "-h") {
                println!(
                    "usage: connection_scaling [--cardinality C] [--dims D] [-k K] [-n N] \
                     [--queries Q] [--depth P] [--batch B] [--threads T] [--passes P] \
                     [--max-conns M] [--seed S] [--smoke] [--out FILE]"
                );
                std::process::exit(0);
            }
            let smoke = args.iter().any(|a| a == "--smoke");
            Config {
                cardinality: num("--cardinality", if smoke { 2_000 } else { 400_000 }),
                dims: num("--dims", if smoke { 8 } else { 32 }),
                k: num("-k", 10),
                n: num("-n", 2),
                queries: num("--queries", if smoke { 64 } else { 256 }),
                depth: num("--depth", 8),
                batch: num("--batch", if smoke { 8 } else { 32 }),
                threads: num("--threads", 8),
                passes: num("--passes", if smoke { 1 } else { 3 }),
                max_conns: num("--max-conns", if smoke { 256 } else { 4096 }),
                seed: get("--seed").map_or(42, |v| v.parse().expect("bad --seed")),
                out: get("--out").unwrap_or_else(|| "BENCH_connections.json".into()),
                smoke,
            }
        }
    }

    /// Structural checksum over answers — a cheap cross-run equality
    /// witness for the JSON report (the real assertion is full `==`).
    fn digest(answers: &[BatchAnswer]) -> u64 {
        let mut sum = 0u64;
        for a in answers {
            let ids = match a {
                BatchAnswer::KnMatch(r) | BatchAnswer::EpsMatch(r) => r.ids(),
                BatchAnswer::Frequent(r) => r.ids(),
            };
            for (rank, pid) in ids.iter().enumerate() {
                sum = sum
                    .wrapping_mul(0x100_0000_01B3)
                    .wrapping_add(*pid as u64 ^ ((rank as u64) << 32));
            }
        }
        sum
    }

    /// Connects with retry: a large sweep point can momentarily overrun
    /// the listen backlog while the reactor drains its accept queue.
    fn connect_binary(addr: std::net::SocketAddr) -> Client {
        for attempt in 0..50 {
            match Client::connect(addr) {
                Ok(mut c) => {
                    c.set_binary(true);
                    return c;
                }
                Err(e) if attempt + 1 == 50 => panic!("connect: {e}"),
                Err(_) => thread::sleep(Duration::from_millis(10)),
            }
        }
        unreachable!()
    }

    struct Pipelined {
        served_qps: f64,
        efficiency: f64,
        perquery_qps: f64,
        perquery_efficiency: f64,
        depth_max: u64,
        allocs_per_query: f64,
    }

    struct SweepRow {
        connections: usize,
        queries_per_conn: usize,
        wall_ms: f64,
        qps: f64,
        conns_peak: u64,
        pipeline_depth_max: u64,
        frames_binary: u64,
        poll_iterations: u64,
        events_dispatched: u64,
        writev_calls: u64,
        allocs: u64,
        alloc_bytes: u64,
    }

    struct BackendReport {
        name: &'static str,
        pipelined: Pipelined,
        rows: Vec<SweepRow>,
    }

    /// The readiness backends this host can run.
    fn backends() -> Vec<(&'static str, ReactorChoice)> {
        if cfg!(target_os = "linux") {
            vec![
                ("poll", ReactorChoice::Poll),
                ("epoll", ReactorChoice::Epoll),
            ]
        } else {
            vec![("poll", ReactorChoice::Poll)]
        }
    }

    /// Phase 1 — pipelined efficiency over one connection.
    #[allow(clippy::too_many_arguments)]
    fn phase_pipelined(
        cfg: &Config,
        ds: &Dataset,
        pool: &[BatchQuery],
        direct: &[BatchAnswer],
        direct_qps: f64,
        cpus: usize,
        reactor: ReactorChoice,
        name: &str,
    ) -> Pipelined {
        let frames: Vec<&[BatchQuery]> = pool.chunks(cfg.batch).collect();
        let wants: Vec<&[BatchAnswer]> = direct.chunks(cfg.batch).collect();
        let engine = EngineConfig {
            workers: cpus,
            backend: Backend::Memory,
            planner: None,
            ..EngineConfig::default()
        }
        .build_in_memory(ds);
        let server = EventServer::bind(
            engine,
            "127.0.0.1:0",
            ServerConfig {
                max_connections: 16,
                reactor,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr();
        let handle = server.handle();
        let mut served_wall = f64::INFINITY;
        let mut perquery_wall = f64::INFINITY;
        let mut best_allocs = u64::MAX;
        let mut depth_max = 0;
        thread::scope(|s| {
            let serving = s.spawn(|| server.serve().expect("serve"));
            let mut client = connect_binary(addr);
            let warm = client
                .run_batch(&pool[..pool.len().min(8)])
                .expect("warm-up");
            assert_eq!(warm.failed, 0);
            for _ in 0..cfg.passes {
                let (allocs0, _) = alloc_counts();
                let t = Instant::now();
                let mut sent = 0;
                while sent < frames.len().min(cfg.depth) {
                    client.send_batch(frames[sent]).expect("send batch");
                    sent += 1;
                }
                for (i, want) in wants.iter().enumerate() {
                    let reply = client.recv_batch(frames[i].len()).expect("recv batch");
                    assert_eq!(reply.failed, 0, "no query may fail");
                    for (got, want) in reply.answers.iter().zip(*want) {
                        assert_eq!(
                            got.as_ref().expect("answer"),
                            want,
                            "pipelined answer diverged from direct run"
                        );
                    }
                    if sent < frames.len() {
                        client.send_batch(frames[sent]).expect("send batch");
                        sent += 1;
                    }
                }
                let wall = t.elapsed().as_secs_f64();
                let (allocs1, _) = alloc_counts();
                if wall < served_wall {
                    served_wall = wall;
                }
                // The pool is warm after pass 1; steady state is the
                // smallest per-pass count.
                best_allocs = best_allocs.min(allocs1 - allocs0);
            }
            // Per-query framing: every request is one query frame,
            // `depth` in flight (`Client::run_pipelined`).
            for _ in 0..cfg.passes {
                let t = Instant::now();
                let answers = client.run_pipelined(pool, cfg.depth).expect("pipelined");
                perquery_wall = perquery_wall.min(t.elapsed().as_secs_f64());
                for (got, want) in answers.iter().zip(direct) {
                    assert_eq!(
                        got.as_ref().expect("answer"),
                        want,
                        "per-query answer diverged from direct run"
                    );
                }
            }
            let (_, _, _, extras) = client.stats_full().expect("stats");
            depth_max = extras
                .expect("event server reports extras")
                .pipeline_depth_max;
            client.quit().expect("quit");
            handle.shutdown();
            serving.join().expect("server thread");
        });
        let served_qps = pool.len() as f64 / served_wall;
        let perquery_qps = pool.len() as f64 / perquery_wall;
        let efficiency = served_qps / direct_qps.max(f64::MIN_POSITIVE);
        let perquery_efficiency = perquery_qps / direct_qps.max(f64::MIN_POSITIVE);
        let allocs_per_query = best_allocs as f64 / pool.len() as f64;
        eprintln!(
            "  [{name}] pipelined depth={} batch={}: served {served_qps:.0} q/s ({:.1}%), \
             per-query frames {perquery_qps:.0} q/s ({:.1}%), depth max {depth_max}, \
             {allocs_per_query:.1} allocs/q",
            cfg.depth,
            cfg.batch,
            efficiency * 100.0,
            perquery_efficiency * 100.0
        );
        Pipelined {
            served_qps,
            efficiency,
            perquery_qps,
            perquery_efficiency,
            depth_max,
            allocs_per_query,
        }
    }

    /// Phase 2 — one sweep point: `conns` connections each holding one
    /// batch in flight; best wall of `passes` fresh-server runs.
    #[allow(clippy::too_many_arguments)]
    fn sweep_point(
        cfg: &Config,
        ds: &Dataset,
        pool: &[BatchQuery],
        direct: &[BatchAnswer],
        cpus: usize,
        reactor: ReactorChoice,
        name: &str,
        conns: usize,
    ) -> SweepRow {
        // Keep total sweep work roughly constant across points.
        let per_conn = (8 * pool.len() / conns).clamp(2, pool.len());
        let chunk = &pool[..per_conn];
        let want = &direct[..per_conn];
        let mut best: Option<SweepRow> = None;
        for _ in 0..cfg.passes {
            let engine = EngineConfig {
                workers: cpus,
                backend: Backend::Memory,
                planner: None,
                ..EngineConfig::default()
            }
            .build_in_memory(ds);
            let server = EventServer::bind(
                engine,
                "127.0.0.1:0",
                ServerConfig {
                    max_connections: conns + 16,
                    reactor,
                    ..ServerConfig::default()
                },
            )
            .expect("bind");
            let addr = server.local_addr();
            let handle = server.handle();
            let threads = cfg.threads.min(conns).max(1);
            let ready = Barrier::new(threads + 1);
            let mut wall = 0.0;
            let mut allocs = 0;
            let mut alloc_bytes = 0;
            let mut extras = None;
            thread::scope(|s| {
                let serving = s.spawn(|| server.serve().expect("serve"));
                let drivers: Vec<_> = (0..threads)
                    .map(|t| {
                        let ready = &ready;
                        let share = conns / threads + usize::from(t < conns % threads);
                        s.spawn(move || {
                            let mut clients: Vec<Client> =
                                (0..share).map(|_| connect_binary(addr)).collect();
                            ready.wait();
                            for c in &mut clients {
                                c.send_batch(chunk).expect("send batch");
                            }
                            for c in &mut clients {
                                let reply = c.recv_batch(chunk.len()).expect("recv batch");
                                assert_eq!(reply.failed, 0, "no query may fail");
                                for (got, want) in reply.answers.iter().zip(want) {
                                    assert_eq!(
                                        got.as_ref().expect("answer"),
                                        want,
                                        "swept answer diverged from direct run"
                                    );
                                }
                            }
                            for c in clients {
                                c.quit().expect("quit");
                            }
                        })
                    })
                    .collect();
                ready.wait();
                let (a0, b0) = alloc_counts();
                let t = Instant::now();
                for d in drivers {
                    d.join().expect("driver thread");
                }
                wall = t.elapsed().as_secs_f64();
                let (a1, b1) = alloc_counts();
                allocs = a1 - a0;
                alloc_bytes = b1 - b0;
                // Reactor-side counters (conns_peak, pipeline depth,
                // frame tally, event/writev counts) travel only over
                // the STATS verb.
                let mut probe = connect_binary(addr);
                let (_, _, _, x) = probe.stats_full().expect("stats");
                extras = Some(x.expect("event server reports extras"));
                probe.quit().expect("quit");
                handle.shutdown();
                serving.join().expect("server thread");
            });
            let stats = server.stats();
            assert_eq!(stats.connections, conns as u64 + 1, "accepts (+probe)");
            let total = conns * per_conn;
            let extras = extras.expect("probe ran");
            let row = SweepRow {
                connections: conns,
                queries_per_conn: per_conn,
                wall_ms: wall * 1e3,
                qps: total as f64 / wall,
                conns_peak: extras.conns_peak,
                pipeline_depth_max: extras.pipeline_depth_max,
                frames_binary: extras.frames_binary,
                poll_iterations: extras.poll_iterations,
                events_dispatched: extras.events_dispatched,
                writev_calls: extras.writev_calls,
                allocs,
                alloc_bytes,
            };
            if best.as_ref().map_or(true, |b| row.wall_ms < b.wall_ms) {
                best = Some(row);
            }
        }
        let row = best.expect("at least one pass");
        eprintln!(
            "  [{name}] conns={conns}: {per_conn} q/conn, {:.0} q/s, peak {} conns, \
             {:.1} events/iter, {} writev calls",
            row.qps,
            row.conns_peak,
            row.events_dispatched as f64 / row.poll_iterations.max(1) as f64,
            row.writev_calls
        );
        row
    }

    pub fn main() {
        let cfg = Config::parse();
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        eprintln!(
            "connection_scaling: c={} d={} k={} n={} queries={} depth={} threads={} \
             passes={} max-conns={} seed={} ({cpus} cpu(s))",
            cfg.cardinality,
            cfg.dims,
            cfg.k,
            cfg.n,
            cfg.queries,
            cfg.depth,
            cfg.threads,
            cfg.passes,
            cfg.max_conns,
            cfg.seed
        );

        let ds = knmatch_data::uniform(cfg.cardinality, cfg.dims, cfg.seed);
        let mut rng = seeded(cfg.seed ^ 0x9E37_79B9);
        let pool: Vec<BatchQuery> = (0..cfg.queries)
            .map(|_| {
                let pid = rng.range_usize(0..ds.len()) as u32;
                let query = ds
                    .point(pid)
                    .iter()
                    .map(|&v| (v + rng.range_f64(-0.01, 0.01)).clamp(0.0, 1.0))
                    .collect();
                BatchQuery::KnMatch {
                    query,
                    k: cfg.k,
                    n: cfg.n,
                }
            })
            .collect();

        let engine = EngineConfig {
            workers: cpus,
            backend: Backend::Memory,
            planner: None,
            ..EngineConfig::default()
        }
        .build_in_memory(&ds);

        // Direct baseline: same engine, no sockets. Warm up, then take
        // the fastest of `passes` runs.
        let _ = engine.run(&pool[..pool.len().min(8)]);
        let mut direct_wall = f64::INFINITY;
        let mut direct: Vec<BatchAnswer> = Vec::new();
        for _ in 0..cfg.passes {
            let t = Instant::now();
            let out: Vec<BatchAnswer> = engine
                .run(&pool)
                .into_iter()
                .map(|r| r.expect("valid workload").into_answer())
                .collect();
            direct_wall = direct_wall.min(t.elapsed().as_secs_f64());
            direct = out;
        }
        drop(engine);
        let direct_qps = pool.len() as f64 / direct_wall;
        let checksum = digest(&direct);
        eprintln!("  direct: {direct_qps:.0} q/s");

        let points: Vec<usize> = if cfg.smoke {
            vec![256]
        } else {
            vec![64, 256, 1024, 4096]
        }
        .into_iter()
        .filter(|&c| c <= cfg.max_conns)
        .collect();

        let mut reports = Vec::new();
        for (name, reactor) in backends() {
            let pipelined =
                phase_pipelined(&cfg, &ds, &pool, &direct, direct_qps, cpus, reactor, name);
            let rows: Vec<SweepRow> = points
                .iter()
                .map(|&conns| sweep_point(&cfg, &ds, &pool, &direct, cpus, reactor, name, conns))
                .collect();
            reports.push(BackendReport {
                name,
                pipelined,
                rows,
            });
        }

        let mut json = String::from("{\n");
        let _ = writeln!(
            json,
            "  \"config\": {{\"cardinality\": {}, \"dims\": {}, \"k\": {}, \"n\": {}, \
             \"queries\": {}, \"depth\": {}, \"batch\": {}, \"threads\": {}, \"passes\": {}, \
             \"seed\": {}, \"cpus\": {cpus}}},",
            cfg.cardinality,
            cfg.dims,
            cfg.k,
            cfg.n,
            cfg.queries,
            cfg.depth,
            cfg.batch,
            cfg.threads,
            cfg.passes,
            cfg.seed
        );
        let _ = writeln!(json, "  \"answer_checksum\": {checksum},");
        let _ = writeln!(json, "  \"direct_qps\": {direct_qps:.0},");
        let _ = writeln!(json, "  \"backends\": [");
        for (b, report) in reports.iter().enumerate() {
            let p = &report.pipelined;
            let _ = writeln!(json, "    {{\"backend\": \"{}\",", report.name);
            let _ = writeln!(
                json,
                "     \"pipelined\": {{\"depth\": {}, \"batch\": {}, \
                 \"served_qps\": {:.0}, \"efficiency\": {:.3}, \
                 \"perquery_qps\": {:.0}, \"perquery_efficiency\": {:.3}, \
                 \"server_pipeline_depth_max\": {}, \"allocs_per_query\": {:.1}}},",
                cfg.depth,
                cfg.batch,
                p.served_qps,
                p.efficiency,
                p.perquery_qps,
                p.perquery_efficiency,
                p.depth_max,
                p.allocs_per_query
            );
            let _ = writeln!(json, "     \"sweep\": [");
            for (i, r) in report.rows.iter().enumerate() {
                let comma = if i + 1 < report.rows.len() { "," } else { "" };
                let _ = writeln!(
                    json,
                    "       {{\"connections\": {}, \"queries_per_conn\": {}, \
                     \"wall_ms\": {:.1}, \"qps\": {:.0}, \"conns_peak\": {}, \
                     \"pipeline_depth_max\": {}, \"frames_binary\": {}, \
                     \"poll_iterations\": {}, \"events_dispatched\": {}, \
                     \"writev_calls\": {}, \"allocs\": {}, \"alloc_bytes\": {}}}{comma}",
                    r.connections,
                    r.queries_per_conn,
                    r.wall_ms,
                    r.qps,
                    r.conns_peak,
                    r.pipeline_depth_max,
                    r.frames_binary,
                    r.poll_iterations,
                    r.events_dispatched,
                    r.writev_calls,
                    r.allocs,
                    r.alloc_bytes
                );
            }
            let _ = writeln!(json, "     ]");
            let comma = if b + 1 < reports.len() { "," } else { "" };
            let _ = writeln!(json, "    }}{comma}");
        }
        let _ = writeln!(json, "  ]");
        json.push_str("}\n");

        std::fs::write(&cfg.out, &json).expect("write output file");
        print!("{json}");
        eprintln!("wrote {}", cfg.out);
    }
}

#[cfg(unix)]
fn main() {
    real::main();
}

#[cfg(not(unix))]
fn main() {
    eprintln!("connection_scaling needs the event-loop server (unix only)");
}
