//! End-to-end TCP server throughput benchmark. Emits `BENCH_server.json`.
//!
//! ```text
//! cargo run -p knmatch-bench --release --bin server_throughput
//! cargo run -p knmatch-bench --release --bin server_throughput -- \
//!     --cardinality 50000 --dims 20 -k 10 -n 2 --queries 256 \
//!     --clients 4 --out BENCH_server.json
//! cargo run -p knmatch-bench --release --bin server_throughput -- --smoke
//! ```
//!
//! For each worker count (1, 2, 4) the same k-n-match workload is run
//! two ways over the identical in-memory engine:
//!
//! 1. **direct** — `BatchEngine::run` in-process, no sockets. This is
//!    the ceiling the wire path is measured against.
//! 2. **served** — a loopback [`Server`] with `--clients` concurrent
//!    [`Client`]s, each submitting the whole workload as `BATCH` frames.
//!    Every served answer is asserted bit-identical to the direct run
//!    (the text protocol round-trips `f64` exactly) before any number
//!    is reported.
//!
//! A third probe measures single-query round-trip latency (one `KNM`
//! line per request, synchronous) to expose per-request protocol
//! overhead separately from pipelined batch throughput.
//!
//! Wall-clock timing only (`std::time::Instant`), no external bench
//! framework, so the workspace builds offline.

use std::fmt::Write as _;
use std::thread;
use std::time::Instant;

use knmatch_core::{BatchAnswer, BatchEngine, BatchOutcome, BatchQuery};
use knmatch_data::rng::seeded;
use knmatch_server::{Backend, Client, EngineConfig, Server, ServerConfig};

struct Config {
    cardinality: usize,
    dims: usize,
    k: usize,
    n: usize,
    queries: usize,
    clients: usize,
    passes: usize,
    seed: u64,
    out: String,
}

impl Config {
    fn parse() -> Config {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let get = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .cloned()
        };
        let num = |flag: &str, default: usize| {
            get(flag).map_or(default, |v| {
                v.parse().unwrap_or_else(|_| panic!("bad {flag}"))
            })
        };
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!(
                "usage: server_throughput [--cardinality C] [--dims D] [-k K] [-n N] \
                 [--queries Q] [--clients N] [--passes P] [--seed S] [--smoke] [--out FILE]"
            );
            std::process::exit(0);
        }
        let smoke = args.iter().any(|a| a == "--smoke");
        Config {
            cardinality: num("--cardinality", if smoke { 2_000 } else { 50_000 }),
            dims: num("--dims", if smoke { 8 } else { 20 }),
            k: num("-k", 10),
            n: num("-n", 2),
            queries: num("--queries", if smoke { 32 } else { 256 }),
            clients: num("--clients", if smoke { 2 } else { 4 }),
            passes: num("--passes", if smoke { 1 } else { 3 }),
            seed: get("--seed").map_or(42, |v| v.parse().expect("bad --seed")),
            out: get("--out").unwrap_or_else(|| "BENCH_server.json".into()),
        }
    }
}

/// Structural checksum over answers — a cheap cross-run equality witness
/// for the JSON report (the real assertion is full `==`).
fn digest(answers: &[BatchAnswer]) -> u64 {
    let mut sum = 0u64;
    for a in answers {
        let ids = match a {
            BatchAnswer::KnMatch(r) | BatchAnswer::EpsMatch(r) => r.ids(),
            BatchAnswer::Frequent(r) => r.ids(),
        };
        for (rank, pid) in ids.iter().enumerate() {
            sum = sum
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(*pid as u64 ^ ((rank as u64) << 32));
        }
    }
    sum
}

struct Row {
    workers: usize,
    direct_qps: f64,
    served_qps: f64,
    batch_ms_mean: f64,
    pingpong_us: f64,
    bytes_in: u64,
    bytes_out: u64,
}

fn main() {
    let cfg = Config::parse();
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "server_throughput: c={} d={} k={} n={} queries={} clients={} passes={} seed={} ({cpus} cpu(s))",
        cfg.cardinality, cfg.dims, cfg.k, cfg.n, cfg.queries, cfg.clients, cfg.passes, cfg.seed
    );

    let ds = knmatch_data::uniform(cfg.cardinality, cfg.dims, cfg.seed);
    let mut rng = seeded(cfg.seed ^ 0x9E37_79B9);
    let batch: Vec<BatchQuery> = (0..cfg.queries)
        .map(|_| {
            let pid = rng.range_usize(0..ds.len()) as u32;
            let query = ds
                .point(pid)
                .iter()
                .map(|&v| (v + rng.range_f64(-0.01, 0.01)).clamp(0.0, 1.0))
                .collect();
            BatchQuery::KnMatch {
                query,
                k: cfg.k,
                n: cfg.n,
            }
        })
        .collect();

    let mut rows = Vec::new();
    for workers in [1usize, 2, 4] {
        let engine = EngineConfig {
            workers,
            backend: Backend::Memory,
            planner: None,
            ..EngineConfig::default()
        }
        .build_in_memory(&ds);

        // Direct baseline: same engine, no sockets. Warm up, then take
        // the fastest of `passes` runs.
        let _ = engine.run(&batch[..batch.len().min(8)]);
        let mut direct_wall = f64::INFINITY;
        let mut direct: Vec<BatchAnswer> = Vec::new();
        for _ in 0..cfg.passes {
            let t = Instant::now();
            let out: Vec<BatchAnswer> = engine
                .run(&batch)
                .into_iter()
                .map(|r| r.expect("valid workload").into_answer())
                .collect();
            direct_wall = direct_wall.min(t.elapsed().as_secs_f64());
            direct = out;
        }
        let direct_qps = batch.len() as f64 / direct_wall;

        // Served: one loopback server, `clients` concurrent connections,
        // each pushing the full workload `passes` times.
        let server = Server::bind(engine, "127.0.0.1:0", ServerConfig::default()).expect("bind");
        let addr = server.local_addr();
        let handle = server.handle();
        let mut served_wall = 0.0;
        let mut batch_ms = Vec::new();
        let mut pingpong_us = 0.0;
        thread::scope(|s| {
            let serving = s.spawn(|| server.serve().expect("serve"));

            // Warm-up connection: spins the engine's worker pool and the
            // accept path before anything is timed.
            let mut warm = Client::connect(addr).expect("connect");
            let reply = warm.run_batch(&batch[..batch.len().min(8)]).expect("warm");
            assert_eq!(reply.failed, 0);
            warm.quit().expect("quit");

            let wall = Instant::now();
            let client_batch_ms: Vec<Vec<f64>> = {
                let results: Vec<_> = (0..cfg.clients)
                    .map(|_| {
                        let batch = &batch;
                        let direct = &direct;
                        s.spawn(move || {
                            let mut client = Client::connect(addr).expect("connect");
                            let mut per_batch = Vec::with_capacity(cfg.passes);
                            for _ in 0..cfg.passes {
                                let t = Instant::now();
                                let reply = client.run_batch(batch).expect("batch");
                                per_batch.push(t.elapsed().as_secs_f64() * 1e3);
                                assert_eq!(reply.failed, 0, "no query may fail");
                                for (got, want) in reply.answers.iter().zip(direct) {
                                    assert_eq!(
                                        got.as_ref().expect("answer"),
                                        want,
                                        "served answer diverged from direct run"
                                    );
                                }
                            }
                            client.quit().expect("quit");
                            per_batch
                        })
                    })
                    .collect();
                results
                    .into_iter()
                    .map(|h| h.join().expect("client thread"))
                    .collect()
            };
            served_wall = wall.elapsed().as_secs_f64();
            batch_ms = client_batch_ms.into_iter().flatten().collect();

            // Single-query round trips: protocol overhead per request.
            let mut probe = Client::connect(addr).expect("connect");
            let probes = batch.len().min(64);
            let t = Instant::now();
            for (q, want) in batch.iter().zip(&direct).take(probes) {
                let got = probe.query(q).expect("transport").expect("answer");
                assert_eq!(&got, want, "single-query answer diverged");
            }
            pingpong_us = t.elapsed().as_secs_f64() * 1e6 / probes as f64;
            probe.quit().expect("quit");

            handle.shutdown();
            serving.join().expect("server thread");
        });
        let stats = server.stats();
        let total = (cfg.clients * cfg.passes * batch.len()) as f64;
        rows.push(Row {
            workers,
            direct_qps,
            served_qps: total / served_wall,
            batch_ms_mean: batch_ms.iter().sum::<f64>() / batch_ms.len() as f64,
            pingpong_us,
            bytes_in: stats.bytes_in,
            bytes_out: stats.bytes_out,
        });
        eprintln!(
            "  workers={workers}: direct {direct_qps:.0} q/s, served {:.0} q/s \
             ({} clients), round-trip {pingpong_us:.0} us",
            total / served_wall,
            cfg.clients
        );
    }

    let checksum = {
        let engine = EngineConfig {
            workers: 1,
            backend: Backend::Memory,
            planner: None,
            ..EngineConfig::default()
        }
        .build_in_memory(&ds);
        let answers: Vec<BatchAnswer> = engine
            .run(&batch)
            .into_iter()
            .map(|r| r.expect("valid workload").into_answer())
            .collect();
        digest(&answers)
    };

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"cardinality\": {}, \"dims\": {}, \"k\": {}, \"n\": {}, \
         \"queries\": {}, \"clients\": {}, \"passes\": {}, \"seed\": {}, \"cpus\": {cpus}}},",
        cfg.cardinality, cfg.dims, cfg.k, cfg.n, cfg.queries, cfg.clients, cfg.passes, cfg.seed
    );
    let _ = writeln!(json, "  \"answer_checksum\": {checksum},");
    let _ = writeln!(json, "  \"workers\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"workers\": {}, \"direct_qps\": {:.0}, \"served_qps\": {:.0}, \
             \"wire_efficiency\": {:.3}, \"batch_ms_mean\": {:.2}, \
             \"roundtrip_us\": {:.1}, \"bytes_in\": {}, \"bytes_out\": {}}}{comma}",
            r.workers,
            r.direct_qps,
            r.served_qps,
            r.served_qps / (r.direct_qps * cfg.clients.min(cpus) as f64).max(f64::MIN_POSITIVE),
            r.batch_ms_mean,
            r.pingpong_us,
            r.bytes_in,
            r.bytes_out
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    std::fs::write(&cfg.out, &json).expect("write output file");
    print!("{json}");
    eprintln!("wrote {}", cfg.out);
}
