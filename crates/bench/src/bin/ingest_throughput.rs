//! Live-ingestion benchmark: query latency with and without a
//! concurrent writer, plus write throughput, over the mutable
//! epoch-versioned engine. Emits `BENCH_ingest.json`.
//!
//! ```text
//! cargo run -p knmatch-bench --release --bin ingest_throughput
//! cargo run -p knmatch-bench --release --bin ingest_throughput -- \
//!     --cardinality 20000 --dims 8 -k 10 -n 2 --queries 64 \
//!     --writes 20000 --merge-threshold 2048 --out BENCH_ingest.json
//! cargo run -p knmatch-bench --release --bin ingest_throughput -- --smoke
//! ```
//!
//! Three measurements over the identical dataset:
//!
//! 1. **direct writes** — `VersionWriter::insert` in-process, no
//!    sockets: the ceiling for the wire write path.
//! 2. **static reads** — a loopback [`Server`] over the mutable engine
//!    with no writer running: the read-latency baseline.
//! 3. **concurrent** — the same read workload while a writer connection
//!    streams inserts (a delete every 16th write) through the same
//!    server. The interesting numbers are the reader's latency
//!    percentiles relative to (2) — epoch snapshots mean writers never
//!    block readers, so the gap should be CPU contention only — and the
//!    served write rate relative to (1).
//!
//! Every reader batch is asserted identical to the pre-write baseline
//! for the seeded keys (writes use a disjoint key range far outside the
//! data cube, so baseline answers stay valid throughout).
//!
//! Wall-clock timing only (`std::time::Instant`), no external bench
//! framework, so the workspace builds offline.

use std::fmt::Write as _;
use std::thread;
use std::time::Instant;

use knmatch_core::{BatchEngine, BatchQuery};
use knmatch_data::rng::seeded;
use knmatch_server::{Client, EngineConfig, Server, ServerConfig};

struct Config {
    cardinality: usize,
    dims: usize,
    k: usize,
    n: usize,
    queries: usize,
    writes: usize,
    merge_threshold: usize,
    seed: u64,
    out: String,
}

impl Config {
    fn parse() -> Config {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let get = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .cloned()
        };
        let num = |flag: &str, default: usize| {
            get(flag).map_or(default, |v| {
                v.parse().unwrap_or_else(|_| panic!("bad {flag}"))
            })
        };
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!(
                "usage: ingest_throughput [--cardinality C] [--dims D] [-k K] [-n N] \
                 [--queries Q] [--writes W] [--merge-threshold R] [--seed S] [--smoke] \
                 [--out FILE]"
            );
            std::process::exit(0);
        }
        let smoke = args.iter().any(|a| a == "--smoke");
        Config {
            cardinality: num("--cardinality", if smoke { 2_000 } else { 20_000 }),
            dims: num("--dims", 8),
            k: num("-k", 10),
            n: num("-n", 2),
            queries: num("--queries", if smoke { 16 } else { 64 }),
            writes: num("--writes", if smoke { 1_000 } else { 20_000 }),
            merge_threshold: num("--merge-threshold", if smoke { 256 } else { 2_048 }),
            seed: get("--seed").map_or(42, |v| v.parse().expect("bad --seed")),
            out: get("--out").unwrap_or_else(|| "BENCH_ingest.json".into()),
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    sorted[((sorted.len() - 1) as f64 * p) as usize]
}

/// Runs the read workload `rounds` times through `client`, returning
/// (per-batch wall ms sorted ascending, total queries, total seconds).
fn read_rounds(
    client: &mut Client,
    batch: &[BatchQuery],
    rounds: usize,
    baseline: &knmatch_server::BatchReply,
) -> (Vec<f64>, usize, f64) {
    let mut per_batch = Vec::with_capacity(rounds);
    let wall = Instant::now();
    for _ in 0..rounds {
        let t = Instant::now();
        let reply = client.run_batch(batch).expect("read batch");
        per_batch.push(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(reply.failed, 0, "no query may fail");
        assert_eq!(
            reply.answers, baseline.answers,
            "reader answers drifted from the pre-write baseline"
        );
    }
    let secs = wall.elapsed().as_secs_f64();
    per_batch.sort_by(f64::total_cmp);
    (per_batch, rounds * batch.len(), secs)
}

fn main() {
    let cfg = Config::parse();
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "ingest_throughput: c={} d={} k={} n={} queries={} writes={} threshold={} seed={} \
         ({cpus} cpu(s))",
        cfg.cardinality,
        cfg.dims,
        cfg.k,
        cfg.n,
        cfg.queries,
        cfg.writes,
        cfg.merge_threshold,
        cfg.seed
    );

    let ds = knmatch_data::uniform(cfg.cardinality, cfg.dims, cfg.seed);
    let mut rng = seeded(cfg.seed ^ 0x9E37_79B9);
    let batch: Vec<BatchQuery> = (0..cfg.queries)
        .map(|_| {
            let pid = rng.range_usize(0..ds.len()) as u32;
            let query = ds
                .point(pid)
                .iter()
                .map(|&v| (v + rng.range_f64(-0.01, 0.01)).clamp(0.0, 1.0))
                .collect();
            BatchQuery::KnMatch {
                query,
                k: cfg.k,
                n: cfg.n,
            }
        })
        .collect();
    // Written points live far outside the unit cube under disjoint keys,
    // so the seeded queries' answers are write-invariant — the reader
    // can assert exactness on every round.
    let write_base = cfg.cardinality as u32 + 1_000;
    let write_point = |i: usize| -> Vec<f64> { vec![100.0 + (i % 97) as f64; cfg.dims] };

    // (1) Direct write ceiling: no sockets, same engine construction.
    let direct_write_ops = {
        let engine = EngineConfig::builder()
            .workers(2)
            .mutable(true)
            .merge_threshold(cfg.merge_threshold)
            .build()
            .expect("valid config")
            .build_in_memory(&ds);
        let w = engine.writer().expect("mutable engine has a writer");
        let t = Instant::now();
        for i in 0..cfg.writes {
            w.insert(write_base + i as u32 % 512, &write_point(i))
                .expect("insert");
            if w.needs_maintenance() {
                w.maintain().expect("maintain");
            }
        }
        cfg.writes as f64 / t.elapsed().as_secs_f64()
    };
    eprintln!("  direct: {direct_write_ops:.0} writes/s");

    let engine = EngineConfig::builder()
        .workers(2)
        .mutable(true)
        .merge_threshold(cfg.merge_threshold)
        .build()
        .expect("valid config")
        .build_in_memory(&ds);
    let server = Server::bind(engine, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();

    let mut static_row = (Vec::new(), 0usize, 0.0f64);
    let mut concurrent_row = (Vec::new(), 0usize, 0.0f64);
    let mut writer_ops = 0.0f64;
    let mut version = None;
    thread::scope(|s| {
        let serving = s.spawn(|| server.serve().expect("serve"));

        let mut reader = Client::connect(addr).expect("connect reader");
        // Warm up, then freeze the answer baseline for exactness checks.
        let baseline = reader.run_batch(&batch).expect("warm-up batch");
        assert_eq!(baseline.failed, 0);

        // (2) Static read baseline — writer idle. Size the round count
        // so static and concurrent phases see comparable samples.
        let rounds = (cfg.writes / (cfg.queries * 4)).clamp(4, 64);
        static_row = read_rounds(&mut reader, &batch, rounds, &baseline);
        eprintln!(
            "  static reads: {:.0} q/s (p95 batch {:.2} ms)",
            static_row.1 as f64 / static_row.2,
            percentile(&static_row.0, 0.95)
        );

        // (3) The same reads while a writer connection streams churn.
        let writer_thread = s.spawn(move || {
            let mut w = Client::connect(addr).expect("connect writer");
            let t = Instant::now();
            for i in 0..cfg.writes {
                let key = write_base + i as u32 % 512;
                // Churn: every 16th write deletes before re-inserting —
                // but only once the key range has wrapped, so the key is
                // guaranteed live.
                if i % 16 == 15 && i >= 512 {
                    w.delete(key).expect("transport").expect("served delete");
                }
                w.insert(key, &write_point(i))
                    .expect("transport")
                    .expect("served insert");
            }
            let ops = cfg.writes as f64 / t.elapsed().as_secs_f64();
            w.quit().expect("quit writer");
            ops
        });
        let mut per_batch = Vec::new();
        let wall = Instant::now();
        let mut reads = 0usize;
        // `is_finished` (rather than a writer-set flag) also ends the
        // loop if the writer thread dies, so the bench cannot wedge.
        while !writer_thread.is_finished() {
            let (mut ms, n, _) = read_rounds(&mut reader, &batch, 1, &baseline);
            per_batch.append(&mut ms);
            reads += n;
        }
        let secs = wall.elapsed().as_secs_f64();
        per_batch.sort_by(f64::total_cmp);
        concurrent_row = (per_batch, reads, secs);
        writer_ops = writer_thread.join().expect("writer thread");
        eprintln!(
            "  concurrent: reads {:.0} q/s (p95 batch {:.2} ms), writes {writer_ops:.0} ops/s",
            concurrent_row.1 as f64 / concurrent_row.2,
            percentile(&concurrent_row.0, 0.95)
        );

        version = reader.stats_report().expect("stats").version;
        reader.quit().expect("quit reader");
        handle.shutdown();
        serving.join().expect("server thread");
    });
    let v = version.expect("mutable engine reports version counters");

    let static_qps = static_row.1 as f64 / static_row.2;
    let concurrent_qps = concurrent_row.1 as f64 / concurrent_row.2;
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"cardinality\": {}, \"dims\": {}, \"k\": {}, \"n\": {}, \
         \"queries\": {}, \"writes\": {}, \"merge_threshold\": {}, \"seed\": {}, \
         \"cpus\": {cpus}}},",
        cfg.cardinality,
        cfg.dims,
        cfg.k,
        cfg.n,
        cfg.queries,
        cfg.writes,
        cfg.merge_threshold,
        cfg.seed
    );
    let _ = writeln!(json, "  \"direct_write_ops_s\": {direct_write_ops:.0},");
    let _ = writeln!(
        json,
        "  \"static_reads\": {{\"qps\": {static_qps:.0}, \"batch_p50_ms\": {:.2}, \
         \"batch_p95_ms\": {:.2}}},",
        percentile(&static_row.0, 0.5),
        percentile(&static_row.0, 0.95)
    );
    let _ = writeln!(
        json,
        "  \"concurrent\": {{\"reader_qps\": {concurrent_qps:.0}, \"batch_p50_ms\": {:.2}, \
         \"batch_p95_ms\": {:.2}, \"writer_ops_s\": {writer_ops:.0}, \
         \"reader_slowdown\": {:.3}}},",
        percentile(&concurrent_row.0, 0.5),
        percentile(&concurrent_row.0, 0.95),
        static_qps / concurrent_qps.max(f64::MIN_POSITIVE)
    );
    let _ = writeln!(
        json,
        "  \"version\": {{\"epoch\": {}, \"live\": {}, \"runs\": {}, \"tombstones\": {}, \
         \"writes\": {}, \"merges\": {}}}",
        v.epoch, v.live, v.runs, v.tombstones, v.writes, v.merges
    );
    json.push_str("}\n");

    std::fs::write(&cfg.out, &json).expect("write output file");
    print!("{json}");
    eprintln!("wrote {}", cfg.out);
}
