//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p knmatch-bench --release --bin repro -- all
//! cargo run -p knmatch-bench --release --bin repro -- table4 fig11
//! cargo run -p knmatch-bench --release --bin repro -- --quick all
//! ```
//!
//! `--quick` runs every experiment at ~1/5 scale (minutes → seconds); the
//! default matches the paper's dataset sizes. Output is deterministic for
//! a given scale (seeded generators, counter-based cost model).

use std::time::Instant;

use knmatch_bench::{run, run_efficiency_block, Scale, EXPERIMENTS};

fn main() {
    let mut scale = Scale::Full;
    let mut wanted: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" | "-q" => scale = Scale::Quick,
            "--help" | "-h" => {
                print_help();
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        print_help();
        return;
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    println!(
        "k-n-match reproduction — scale: {scale:?} (see EXPERIMENTS.md for the \
         paper-vs-measured record)\n"
    );
    // The four context-sharing efficiency figures run together when all are
    // requested, amortising one dataset/structure build.
    let eff_block: Vec<&str> = ["fig10", "fig11", "fig12", "fig15"]
        .into_iter()
        .filter(|f| wanted.iter().any(|w| w == f))
        .collect();
    let run_block_together = eff_block.len() > 1;

    for name in &wanted {
        if run_block_together && eff_block.contains(&name.as_str()) {
            continue;
        }
        run_one(name, scale);
    }
    if run_block_together {
        let t = Instant::now();
        print!("{}", run_efficiency_block(scale, None));
        println!(
            "[figures 10/11/12/15 in {:.1}s]\n",
            t.elapsed().as_secs_f64()
        );
    }
}

fn run_one(name: &str, scale: Scale) {
    let t = Instant::now();
    match run(name, scale) {
        Ok(report) => {
            print!("{report}");
            println!("[{name} in {:.1}s]\n", t.elapsed().as_secs_f64());
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn print_help() {
    println!("usage: repro [--quick] <experiment>... | all");
    println!("experiments: {}", EXPERIMENTS.join(" "));
}
