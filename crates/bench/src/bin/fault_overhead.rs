//! Std-only checksum-overhead benchmark: the disk batch engine over one
//! database *file*, priced under each [`VerifyMode`] read-verification
//! policy. Emits `BENCH_fault_overhead.json`; the run asserts every
//! policy answers bit-for-bit identically and (outside `--smoke`) that
//! the default policy's steady-state overhead stays under 10%.
//!
//! ```text
//! cargo run -p knmatch-bench --release --bin fault_overhead
//! cargo run -p knmatch-bench --release --bin fault_overhead -- --smoke
//! cargo run -p knmatch-bench --release --bin fault_overhead -- \
//!     --cardinality 200000 --dims 16 -k 10 -n 1 --queries 400 \
//!     --pool-pages 64 --reps 5 --out BENCH_fault_overhead.json
//! ```
//!
//! The pool is deliberately small relative to the file, so queries miss
//! and re-read pages from the store — checksum verification only runs on
//! store reads; a pool holding the whole working set would price an idle
//! code path. Each policy runs the batch twice on one engine: the *cold*
//! pass includes first-read verification of every touched page (the
//! `first_read` policy pays its one-time cost here), the *steady* pass
//! shows the recurring cost — under `first_read` the same misses recur
//! but re-reads of verified pages skip the CRC. Wall-clock timing only
//! (`std::time::Instant`), best-of-`reps` per pass, no external bench
//! framework.
//!
//! A second section (unix only) prices the *network* fault hooks on the
//! served path: the same workload pipelined over a loopback
//! [`EventServer`](knmatch_server::EventServer) twice — once with no
//! injector configured, once with a zero-rate injector installed, so
//! the per-I/O hook rolls but never fires. Outside `--smoke` the
//! disabled-hook cost must stay under 1% of baseline qps.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use knmatch_core::{BatchAnswer, BatchEngine, BatchQuery};
use knmatch_storage::{DiskDatabase, DiskQueryEngine, FileStore, VerifyMode};

struct Config {
    cardinality: usize,
    dims: usize,
    k: usize,
    n: usize,
    queries: usize,
    pool_pages: usize,
    reps: usize,
    seed: u64,
    smoke: bool,
    out: String,
}

impl Config {
    fn parse() -> Config {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let get = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .cloned()
        };
        let num = |flag: &str, default: usize| {
            get(flag).map_or(default, |v| {
                v.parse().unwrap_or_else(|_| panic!("bad {flag}"))
            })
        };
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!(
                "usage: fault_overhead [--smoke] [--cardinality C] [--dims D] [-k K] [-n N] \
                 [--queries Q] [--pool-pages P] [--reps R] [--seed S] [--out FILE]"
            );
            std::process::exit(0);
        }
        // Smoke mode: a seconds-long run for CI / verify.sh.
        let smoke = args.iter().any(|a| a == "--smoke");
        let (c0, q0, r0) = if smoke {
            (4_000, 48, 2)
        } else {
            (200_000, 400, 5)
        };
        Config {
            cardinality: num("--cardinality", c0),
            dims: num("--dims", 16),
            k: num("-k", 10),
            n: num("-n", 1),
            queries: num("--queries", q0),
            pool_pages: num("--pool-pages", 64),
            reps: num("--reps", r0),
            seed: get("--seed").map_or(42, |v| v.parse().expect("bad --seed")),
            smoke,
            out: get("--out").unwrap_or_else(|| "BENCH_fault_overhead.json".into()),
        }
    }
}

struct Mode {
    name: &'static str,
    /// Best wall time of the first (cold pool, unverified pages) pass.
    cold: Duration,
    /// Best wall time of the second pass on the same engine.
    steady: Duration,
    store_reads: u64,
    /// Structural checksum of answers + stats — cheap equality witness.
    digest: u64,
}

fn qps(queries: usize, wall: Duration) -> f64 {
    queries as f64 / wall.as_secs_f64()
}

/// Structural checksum over served answers — the equality witness
/// between the with-hooks and without-hooks servers.
#[cfg(unix)]
fn digest_answers(answers: &[Result<BatchAnswer, knmatch_server::ServedError>]) -> u64 {
    let mut sum = 0u64;
    for a in answers {
        let ids = match a.as_ref().expect("answer") {
            BatchAnswer::KnMatch(r) | BatchAnswer::EpsMatch(r) => r.ids(),
            BatchAnswer::Frequent(r) => r.ids(),
        };
        for (rank, pid) in ids.iter().enumerate() {
            sum = sum
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(*pid as u64 ^ ((rank as u64) << 32));
        }
    }
    sum
}

/// Prices the disabled network fault hooks on the served path: two
/// loopback event servers over identical in-memory engines — one with
/// no injector, one with a zero-rate injector (the hooks roll per I/O
/// but never fire) — measured with *interleaved* reps so machine drift
/// hits both sides equally, best-of-`reps` each. Returns
/// `(baseline_qps, hooks_qps)`.
#[cfg(unix)]
fn served_hook_qps(
    ds: &knmatch_core::Dataset,
    batch: &[BatchQuery],
    reps: usize,
    seed: u64,
) -> (f64, f64) {
    use knmatch_server::{
        Backend, Client, EngineConfig, EventServer, NetFaultConfig, ServerConfig,
    };
    let build = |fault: Option<NetFaultConfig>| {
        let engine = EngineConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            backend: Backend::Memory,
            planner: None,
            ..EngineConfig::default()
        }
        .build_in_memory(ds);
        let scfg = ServerConfig {
            executors: 1,
            fault,
            ..ServerConfig::default()
        };
        EventServer::bind(engine, "127.0.0.1:0", scfg).expect("bind")
    };
    let base = build(None);
    let hooks = build(Some(NetFaultConfig {
        seed,
        ..NetFaultConfig::default()
    }));
    let handles = [base.handle(), hooks.handle()];
    let mut best = [Duration::MAX; 2];
    let mut digests = [0u64; 2];
    std::thread::scope(|s| {
        let serve_base = s.spawn(|| base.serve().expect("serve"));
        let serve_hooks = s.spawn(|| hooks.serve().expect("serve"));
        let mut clients = [
            Client::connect(base.local_addr()).expect("connect"),
            Client::connect(hooks.local_addr()).expect("connect"),
        ];
        for c in &mut clients {
            c.set_binary(true);
            let warm = c.run_batch(batch).expect("warm-up batch");
            assert_eq!(warm.failed, 0);
        }
        // Three batches per timed window: a single ~3ms batch is inside
        // scheduler jitter; ~10ms windows make the 1% budget meaningful.
        for _ in 0..reps {
            for (i, c) in clients.iter_mut().enumerate() {
                let t = Instant::now();
                for _ in 0..3 {
                    let reply = c.run_batch(batch).expect("served batch");
                    assert_eq!(reply.failed, 0, "no query may fail");
                    digests[i] = digest_answers(&reply.answers);
                }
                best[i] = best[i].min(t.elapsed() / 3);
            }
        }
        for c in clients {
            c.quit().expect("quit");
        }
        for h in handles {
            h.shutdown();
        }
        serve_base.join().expect("server thread");
        serve_hooks.join().expect("server thread");
    });
    assert_eq!(
        digests[0], digests[1],
        "disabled fault hooks must not change answers"
    );
    (qps(batch.len(), best[0]), qps(batch.len(), best[1]))
}

fn digest_results(results: Vec<knmatch_core::Result<knmatch_storage::DiskBatchOutcome>>) -> u64 {
    let mut digest = 0u64;
    for r in results {
        let o = r.expect("valid workload");
        let ids = match &o.answer {
            BatchAnswer::KnMatch(r) | BatchAnswer::EpsMatch(r) => r.ids(),
            BatchAnswer::Frequent(r) => r.ids(),
        };
        for (rank, pid) in ids.iter().enumerate() {
            digest = digest
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(*pid as u64 ^ ((rank as u64) << 32));
        }
        digest = digest
            .wrapping_add(o.ad.heap_pops)
            .wrapping_add(o.io.page_accesses());
    }
    digest
}

/// One engine lifetime under `mode`: a cold batch pass, then a steady
/// pass on the same (warm verified-map) engine.
fn run_once(
    path: &std::path::Path,
    cfg: &Config,
    batch: &[BatchQuery],
    mode: VerifyMode,
) -> (Duration, Duration, u64, u64) {
    let mut store = FileStore::open(path).expect("open database file");
    store.set_verify_mode(mode);
    let db = DiskDatabase::open_file(path, cfg.pool_pages).expect("open database file");
    let (_, columns) = db.into_engine(1).into_parts();
    let engine =
        DiskQueryEngine::with_workers(store, columns, cfg.pool_pages, 1).expect("pool_pages >= 1");

    let t = Instant::now();
    let first = engine.run(batch);
    let cold = t.elapsed();
    let t = Instant::now();
    let second = engine.run(batch);
    let steady = t.elapsed();

    let d1 = digest_results(first);
    let d2 = digest_results(second);
    assert_eq!(d1, d2, "the two passes must agree");
    (cold, steady, engine.pool_stats().page_accesses(), d1)
}

fn run_mode(
    path: &std::path::Path,
    cfg: &Config,
    batch: &[BatchQuery],
    name: &'static str,
    mode: VerifyMode,
) -> Mode {
    let mut best: Option<Mode> = None;
    for _ in 0..cfg.reps {
        let (cold, steady, store_reads, digest) = run_once(path, cfg, batch, mode);
        match &mut best {
            Some(m) => {
                assert_eq!(digest, m.digest, "repetitions must agree");
                m.cold = m.cold.min(cold);
                m.steady = m.steady.min(steady);
            }
            None => {
                best = Some(Mode {
                    name,
                    cold,
                    steady,
                    store_reads,
                    digest,
                });
            }
        }
    }
    best.expect("reps >= 1")
}

fn main() {
    let cfg = Config::parse();
    eprintln!(
        "fault_overhead: c={} d={} k={} n={} queries={} pool={} reps={} seed={}",
        cfg.cardinality, cfg.dims, cfg.k, cfg.n, cfg.queries, cfg.pool_pages, cfg.reps, cfg.seed
    );

    let dir = std::env::temp_dir().join(format!("knmatch-fault-overhead-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bench.knm");

    let ds = knmatch_data::uniform(cfg.cardinality, cfg.dims, cfg.seed);
    DiskDatabase::create_file(&path, &ds, cfg.pool_pages).expect("build database file");

    let mut rng = knmatch_data::rng::seeded(cfg.seed ^ 0x9E37_79B9);
    let batch: Vec<BatchQuery> = (0..cfg.queries)
        .map(|_| {
            let pid = rng.range_usize(0..ds.len()) as u32;
            let query = ds
                .point(pid)
                .iter()
                .map(|&v| (v + rng.range_f64(-0.01, 0.01)).clamp(0.0, 1.0))
                .collect();
            BatchQuery::KnMatch {
                query,
                k: cfg.k,
                n: cfg.n,
            }
        })
        .collect();

    // Warm-up: page the file into the OS cache so the timed modes price
    // the checksum code, not first-touch filesystem effects.
    let _ = run_once(&path, &cfg, &batch[..batch.len().min(8)], VerifyMode::Never);

    let modes = [
        run_mode(&path, &cfg, &batch, "first_read", VerifyMode::FirstRead),
        run_mode(&path, &cfg, &batch, "always", VerifyMode::Always),
        run_mode(&path, &cfg, &batch, "never", VerifyMode::Never),
    ];
    let [fr, always, never] = &modes;
    assert_eq!(
        fr.digest, never.digest,
        "verification must not change answers"
    );
    assert_eq!(
        always.digest, never.digest,
        "verification must not change answers"
    );
    assert!(
        never.store_reads > 0,
        "the pool must miss for verification to be priced at all"
    );

    let pct = |with: Duration, without: Duration| {
        (qps(cfg.queries, without) - qps(cfg.queries, with)) / qps(cfg.queries, without) * 100.0
    };
    // The recurring cost of the default policy — re-reads of verified
    // pages — against the no-checksum baseline, both in steady state.
    let overhead_pct = pct(fr.steady, never.steady);
    // The one-time cost of verifying the working set (cold pass).
    let first_touch_pct = pct(fr.cold, never.cold);
    // The recurring cost of the paranoid per-read policy.
    let always_pct = pct(always.steady, never.steady);

    // Served path: the network fault hooks priced while disabled. A
    // zero-rate injector still rolls the PRNG once per read and per
    // flush, which is the entire always-on cost of the chaos plumbing.
    #[cfg(unix)]
    let served = {
        let (base_qps, hooks_qps) = served_hook_qps(&ds, &batch, cfg.reps.max(9), cfg.seed);
        let overhead_pct = (base_qps - hooks_qps) / base_qps * 100.0;
        Some((base_qps, hooks_qps, overhead_pct))
    };
    #[cfg(not(unix))]
    let served: Option<(f64, f64, f64)> = None;

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"cardinality\": {}, \"dims\": {}, \"k\": {}, \"n\": {}, \
         \"queries\": {}, \"pool_pages\": {}, \"reps\": {}, \"seed\": {}}},",
        cfg.cardinality, cfg.dims, cfg.k, cfg.n, cfg.queries, cfg.pool_pages, cfg.reps, cfg.seed
    );
    let _ = writeln!(json, "  \"modes\": [");
    for (i, m) in modes.iter().enumerate() {
        let comma = if i + 1 < modes.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"cold_qps\": {:.1}, \"steady_qps\": {:.1}, \
             \"cold_wall_ms\": {:.2}, \"steady_wall_ms\": {:.2}, \"store_reads\": {}}}{comma}",
            m.name,
            qps(cfg.queries, m.cold),
            qps(cfg.queries, m.steady),
            m.cold.as_secs_f64() * 1e3,
            m.steady.as_secs_f64() * 1e3,
            m.store_reads,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"first_touch_overhead_pct\": {first_touch_pct:.2},"
    );
    let _ = writeln!(json, "  \"verify_always_overhead_pct\": {always_pct:.2},");
    let _ = writeln!(json, "  \"checksum_overhead_pct\": {overhead_pct:.2},");
    match served {
        Some((base, hooks, pct)) => {
            let _ = writeln!(
                json,
                "  \"served_fault_hooks\": {{\"baseline_qps\": {base:.1}, \
                 \"hooks_disabled_qps\": {hooks:.1}, \"hook_overhead_pct\": {pct:.2}}}"
            );
        }
        None => {
            let _ = writeln!(json, "  \"served_fault_hooks\": null");
        }
    }
    json.push_str("}\n");

    std::fs::write(&cfg.out, &json).expect("write output file");
    print!("{json}");
    eprintln!("wrote {}", cfg.out);
    std::fs::remove_dir_all(&dir).ok();

    // Smoke runs are too short to time reliably; the committed full run
    // is the one held to the budget.
    if !cfg.smoke {
        assert!(
            overhead_pct < 10.0,
            "steady-state checksum overhead is {overhead_pct:.2}% (budget: 10%)"
        );
        if let Some((_, _, hook_pct)) = served {
            assert!(
                hook_pct < 1.0,
                "disabled fault hooks cost {hook_pct:.2}% served qps (budget: 1%)"
            );
        }
    }
}
