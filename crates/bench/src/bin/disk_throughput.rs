//! Std-only disk batch-throughput benchmark: the sequential
//! `DiskDatabase` loop (one query at a time through the exclusive
//! `BufferPool`) vs. the parallel `DiskQueryEngine` over a shared sharded
//! pool, on one database *file* (real positioned-read I/O). Emits
//! `BENCH_disk_throughput.json` with a worker sweep and per-mode shared-
//! pool hit ratios.
//!
//! ```text
//! cargo run -p knmatch-bench --release --bin disk_throughput
//! cargo run -p knmatch-bench --release --bin disk_throughput -- --smoke
//! cargo run -p knmatch-bench --release --bin disk_throughput -- \
//!     --cardinality 200000 --dims 16 -k 10 -n 1 --queries 400 \
//!     --pool-pages 512 --out BENCH_disk_throughput.json
//! ```
//!
//! Every mode answers the identical workload and the run asserts answers
//! and `AdStats` agree bit-for-bit with the sequential path before
//! reporting numbers. Wall-clock timing only (`std::time::Instant`), no
//! external bench framework, so the workspace builds offline.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use knmatch_core::{AdStats, BatchAnswer, BatchEngine, BatchQuery, Scratch};
use knmatch_data::rng::seeded;
use knmatch_storage::{DiskDatabase, DiskQueryEngine, FileStore, IoStats, SharedDiskColumns};

struct Config {
    cardinality: usize,
    dims: usize,
    k: usize,
    n: usize,
    queries: usize,
    pool_pages: usize,
    seed: u64,
    out: String,
}

impl Config {
    fn parse() -> Config {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let get = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .cloned()
        };
        let num = |flag: &str, default: usize| {
            get(flag).map_or(default, |v| {
                v.parse().unwrap_or_else(|_| panic!("bad {flag}"))
            })
        };
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!(
                "usage: disk_throughput [--smoke] [--cardinality C] [--dims D] [-k K] [-n N] \
                 [--queries Q] [--pool-pages P] [--seed S] [--out FILE]"
            );
            std::process::exit(0);
        }
        // Smoke mode: a seconds-long run for CI / verify.sh.
        let smoke = args.iter().any(|a| a == "--smoke");
        let (c0, q0) = if smoke { (4_000, 48) } else { (200_000, 400) };
        Config {
            cardinality: num("--cardinality", c0),
            dims: num("--dims", 16),
            k: num("-k", 10),
            n: num("-n", 1),
            queries: num("--queries", q0),
            pool_pages: num("--pool-pages", 512),
            seed: get("--seed").map_or(42, |v| v.parse().expect("bad --seed")),
            out: get("--out").unwrap_or_else(|| "BENCH_disk_throughput.json".into()),
        }
    }
}

struct Mode {
    name: String,
    workers: usize,
    wall: Duration,
    latencies: Vec<Duration>,
    attributes: u64,
    /// Actual traffic of the pool serving the mode (exclusive pool for the
    /// sequential baseline, shared pool for the engine).
    pool: IoStats,
}

impl Mode {
    fn qps(&self, queries: usize) -> f64 {
        queries as f64 / self.wall.as_secs_f64()
    }

    fn pct(&self, p: f64) -> f64 {
        let mut us: Vec<f64> = self
            .latencies
            .iter()
            .map(|d| d.as_secs_f64() * 1e6)
            .collect();
        us.sort_by(f64::total_cmp);
        us[((us.len() - 1) as f64 * p) as usize]
    }

    fn hit_ratio(&self) -> f64 {
        let lookups = self.pool.hits + self.pool.page_accesses();
        if lookups == 0 {
            0.0
        } else {
            self.pool.hits as f64 / lookups as f64
        }
    }
}

fn digest(results: &[(BatchAnswer, AdStats)]) -> (u64, u64) {
    // (total attributes, structural checksum) — cheap equality witness.
    let mut attrs = 0u64;
    let mut sum = 0u64;
    for (a, s) in results {
        attrs += s.attributes_retrieved;
        let ids = match a {
            BatchAnswer::KnMatch(r) | BatchAnswer::EpsMatch(r) => r.ids(),
            BatchAnswer::Frequent(r) => r.ids(),
        };
        for (rank, pid) in ids.iter().enumerate() {
            sum = sum
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(*pid as u64 ^ ((rank as u64) << 32));
        }
        sum = sum.wrapping_add(s.heap_pops);
    }
    (attrs, sum)
}

/// A pre-engine product path: one query at a time through the exclusive
/// `BufferPool`, a fresh `Scratch` allocated inside every `k_n_match`
/// call. With `cold`, the pool is invalidated before every query — the
/// path `knmatch bench` runs to get clean per-query `IoStats`, and the
/// one the engine is contractually equivalent to (bit-identical answers,
/// `AdStats`, and per-query stats); it re-fetches shared pages per query.
/// Without, the pool stays warm across queries (stats bleed, no refetch).
fn run_sequential(
    path: &std::path::Path,
    cfg: &Config,
    queries: &[Vec<f64>],
    cold: bool,
) -> (Mode, (u64, u64)) {
    let mut db = DiskDatabase::open_file(path, cfg.pool_pages).expect("open database file");
    let mut latencies = Vec::with_capacity(queries.len());
    let mut out = Vec::with_capacity(queries.len());
    let mut pool = IoStats::default();
    let wall = Instant::now();
    for q in queries {
        if cold {
            db.pool_mut().invalidate_all();
        }
        let t = Instant::now();
        let r = db.k_n_match(q, cfg.k, cfg.n).expect("valid workload");
        latencies.push(t.elapsed());
        pool.merge(r.io);
        out.push((BatchAnswer::KnMatch(r.result), r.ad));
    }
    let wall = wall.elapsed();
    let dig = digest(&out);
    (
        Mode {
            name: if cold {
                "sequential_cold".into()
            } else {
                "sequential_warm".into()
            },
            workers: 1,
            wall,
            latencies,
            attributes: dig.0,
            pool,
        },
        dig,
    )
}

/// One engine mode: a cold shared pool, `workers` workers, answers checked
/// against the sequential digest.
fn run_engine(
    path: &std::path::Path,
    cfg: &Config,
    batch: &[BatchQuery],
    workers: usize,
    reference: (u64, u64),
) -> Mode {
    let store = FileStore::open(path).expect("open database file");
    let db = DiskDatabase::open_file(path, cfg.pool_pages).expect("open database file");
    let engine: DiskQueryEngine<FileStore> = {
        // Reuse the parsed layout but run on an independent FileStore so
        // the sequential handle above stays untouched.
        let (_, columns) = db.into_engine(1).into_parts();
        DiskQueryEngine::with_workers(store, columns, cfg.pool_pages, workers)
            .expect("pool_pages >= 1")
    };

    // Product-path wall time: one engine.run() call on a cold pool.
    let wall = Instant::now();
    let results = engine.run(batch);
    let wall = wall.elapsed();
    let pool = engine.pool_stats();
    let ok: Vec<(BatchAnswer, AdStats)> = results
        .into_iter()
        .map(|r| {
            let o = r.expect("valid workload");
            (o.answer, o.ad)
        })
        .collect();
    let dig = digest(&ok);
    assert_eq!(
        dig, reference,
        "workers {workers}: parallel answers diverged from sequential"
    );

    // Per-query latencies: the same claim loop the engine runs, timed
    // (pool now warm — latencies reflect steady state, wall does not).
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let engine = &engine;
            s.spawn(move || {
                let mut src =
                    SharedDiskColumns::new(engine.columns(), engine.pool(), engine.pool_pages());
                let mut scratch = Scratch::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= batch.len() {
                        break;
                    }
                    let t = Instant::now();
                    let _ = engine
                        .execute(&batch[i], &mut src, &mut scratch)
                        .expect("valid workload");
                    if tx.send(t.elapsed()).is_err() {
                        break;
                    }
                }
            });
        }
    });
    drop(tx);
    let latencies: Vec<Duration> = rx.into_iter().collect();
    Mode {
        name: format!("engine_w{workers}"),
        workers,
        wall,
        latencies,
        attributes: dig.0,
        pool,
    }
}

fn main() {
    let cfg = Config::parse();
    let cpus = thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "disk_throughput: c={} d={} k={} n={} queries={} pool={} seed={} ({cpus} cpu(s))",
        cfg.cardinality, cfg.dims, cfg.k, cfg.n, cfg.queries, cfg.pool_pages, cfg.seed
    );

    let dir = std::env::temp_dir().join(format!("knmatch-disk-throughput-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bench.knm");

    let ds = knmatch_data::uniform(cfg.cardinality, cfg.dims, cfg.seed);
    DiskDatabase::create_file(&path, &ds, cfg.pool_pages).expect("build database file");

    let mut rng = seeded(cfg.seed ^ 0x9E37_79B9);
    let queries: Vec<Vec<f64>> = (0..cfg.queries)
        .map(|_| {
            let pid = rng.range_usize(0..ds.len()) as u32;
            ds.point(pid)
                .iter()
                .map(|&v| (v + rng.range_f64(-0.01, 0.01)).clamp(0.0, 1.0))
                .collect()
        })
        .collect();
    let batch: Vec<BatchQuery> = queries
        .iter()
        .map(|q| BatchQuery::KnMatch {
            query: q.clone(),
            k: cfg.k,
            n: cfg.n,
        })
        .collect();

    // Warm-up: page the file into the OS cache so the timed modes compare
    // pool behaviour, not first-touch filesystem effects.
    {
        let mut db = DiskDatabase::open_file(&path, cfg.pool_pages).expect("open database file");
        for q in queries.iter().take(8) {
            let _ = db.k_n_match(q, cfg.k, cfg.n).expect("valid workload");
        }
    }

    // The reference baseline is the cold-pool sequential path: it is the
    // one whose answers AND per-query IoStats the engine reproduces
    // bit-for-bit (the warm path's stats depend on query order). The warm
    // path is reported too, as the best case for an exclusive pool.
    let (baseline, reference) = run_sequential(&path, &cfg, &queries, true);
    let (warm, warm_dig) = run_sequential(&path, &cfg, &queries, false);
    assert_eq!(warm_dig, reference, "warm answers diverged from cold");
    let mut modes = vec![baseline, warm];
    let mut sweep: Vec<usize> = vec![1, 2, 4];
    if !sweep.contains(&cpus) {
        sweep.push(cpus);
    }
    for workers in sweep {
        modes.push(run_engine(&path, &cfg, &batch, workers, reference));
    }

    let base_qps = modes[0].qps(cfg.queries);
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"cardinality\": {}, \"dims\": {}, \"k\": {}, \"n\": {}, \
         \"queries\": {}, \"pool_pages\": {}, \"seed\": {}, \"cpus\": {cpus}}},",
        cfg.cardinality, cfg.dims, cfg.k, cfg.n, cfg.queries, cfg.pool_pages, cfg.seed
    );
    let _ = writeln!(json, "  \"modes\": [");
    for (i, m) in modes.iter().enumerate() {
        let comma = if i + 1 < modes.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"workers\": {}, \"qps\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"wall_ms\": {:.2}, \
             \"attributes_retrieved\": {}, \"pool_store_reads\": {}, \"pool_hits\": {}, \
             \"pool_hit_ratio\": {:.4}, \"speedup_vs_sequential\": {:.2}}}{comma}",
            m.name,
            m.workers,
            m.qps(cfg.queries),
            m.pct(0.50),
            m.pct(0.99),
            m.wall.as_secs_f64() * 1e3,
            m.attributes,
            m.pool.page_accesses(),
            m.pool.hits,
            m.hit_ratio(),
            m.qps(cfg.queries) / base_qps,
        );
    }
    let _ = writeln!(json, "  ],");
    let w4 = modes
        .iter()
        .find(|m| m.name == "engine_w4")
        .expect("engine_w4 mode exists");
    let _ = writeln!(
        json,
        "  \"speedup_engine_w4_vs_sequential_cold\": {:.2}",
        w4.qps(cfg.queries) / base_qps
    );
    json.push_str("}\n");

    std::fs::write(&cfg.out, &json).expect("write output file");
    print!("{json}");
    eprintln!("wrote {}", cfg.out);
    std::fs::remove_dir_all(&dir).ok();
}
