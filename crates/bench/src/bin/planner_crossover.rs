//! Figure 12 crossover benchmark for the per-query planner and the
//! unrolled filter/scan kernels. Emits `BENCH_planner.json`.
//!
//! ```text
//! cargo run -p knmatch-bench --release --bin planner_crossover
//! cargo run -p knmatch-bench --release --bin planner_crossover -- \
//!     --cardinality 20000 --queries 48 --out BENCH_planner.json
//! ```
//!
//! Two sections:
//!
//! 1. **Kernels** — throughput of [`knmatch_core::kernels::accumulate_band_hits`]
//!    and [`knmatch_core::kernels::abs_diffs`] against their `_scalar`
//!    twins (the loops they replaced). The acceptance bar is the band
//!    filter kernel at ≥ 1.3× scalar.
//! 2. **Crossover** — qps of the [`PlannedEngine`] under forced
//!    `ad` / `vafile` / `scan` and under `auto`, swept over
//!    dimensionality × n-level (n = 1, d/2, d — the extremes where the
//!    paper's Figure 12 crossover flips backends). `auto` must never be
//!    slower than the worst forced backend and must land within 10% of
//!    the best; the emitted JSON records both checks per cell.
//!
//! Every mode answers the identical workload and the run asserts the
//! answers agree bit-for-bit with the forced scan before reporting
//! numbers. Std-only wall-clock timing, same as the other benches.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use knmatch_core::kernels::{
    abs_diffs, abs_diffs_scalar, accumulate_band_hits, accumulate_band_hits_scalar,
};
use knmatch_core::{BatchAnswer, BatchEngine, BatchOptions, BatchQuery, PlanTally, PlannerMode};
use knmatch_data::rng::seeded;
use knmatch_server::PlannedEngine;

struct Config {
    cardinality: usize,
    queries: usize,
    k: usize,
    seed: u64,
    out: String,
}

impl Config {
    fn parse() -> Config {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let get = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .cloned()
        };
        let num = |flag: &str, default: usize| {
            get(flag).map_or(default, |v| {
                v.parse().unwrap_or_else(|_| panic!("bad {flag}"))
            })
        };
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!(
                "usage: planner_crossover [--cardinality C] [--queries Q] [-k K] \
                 [--seed S] [--out FILE]"
            );
            std::process::exit(0);
        }
        Config {
            cardinality: num("--cardinality", 20_000),
            queries: num("--queries", 48),
            k: num("-k", 10),
            seed: get("--seed").map_or(42, |v| v.parse().expect("bad --seed")),
            out: get("--out").unwrap_or_else(|| "BENCH_planner.json".into()),
        }
    }
}

/// Best-of-`reps` wall time of `body` (the usual defence against a noisy
/// shared host), as elements-per-second over `work` elements.
fn throughput(reps: usize, work: u64, mut body: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        body();
        best = best.min(t.elapsed().as_secs_f64());
    }
    work as f64 / best
}

struct KernelRow {
    name: &'static str,
    kernel_meps: f64,
    scalar_meps: f64,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.kernel_meps / self.scalar_meps
    }
}

/// Section 1: the unrolled kernels against the scalar loops they replaced.
fn bench_kernels(seed: u64) -> Vec<KernelRow> {
    let mut rng = seeded(seed ^ 0x6b65_726e);
    let mut rows = Vec::new();

    // Band filter: one dim-major column of quantised cells, the exact shape
    // the VA-file filter streams. Random cells keep the scalar loop's
    // branches honest.
    let cells: Vec<u8> = (0..65_536).map(|_| rng.range_usize(0..256) as u8).collect();
    let bands: Vec<(u8, u8)> = (0..64)
        .map(|_| {
            let lo = rng.range_usize(0..200) as u8;
            (lo, lo + rng.range_usize(5..56) as u8)
        })
        .collect();
    let iters = 40u64;
    let work = iters * bands.len() as u64 * cells.len() as u64;
    let mut counts = vec![0u16; cells.len()];
    let kernel_meps = throughput(3, work, || {
        for _ in 0..iters {
            counts.iter_mut().for_each(|c| *c = 0);
            for &(lo, hi) in &bands {
                accumulate_band_hits(&mut counts, &cells, lo, hi);
            }
            black_box(&counts);
        }
    }) / 1e6;
    let scalar_meps = throughput(3, work, || {
        for _ in 0..iters {
            counts.iter_mut().for_each(|c| *c = 0);
            for &(lo, hi) in &bands {
                accumulate_band_hits_scalar(&mut counts, &cells, lo, hi);
            }
            black_box(&counts);
        }
    }) / 1e6;
    rows.push(KernelRow {
        name: "band_filter",
        kernel_meps,
        scalar_meps,
    });

    // Refine/scan differences: row-at-a-time |p - q|, the refine loop's
    // shape (short rows, called once per candidate point).
    let dims = 30usize;
    let points = 8_192usize;
    let data: Vec<f64> = (0..points * dims).map(|_| rng.next_f64()).collect();
    let query: Vec<f64> = (0..dims).map(|_| rng.next_f64()).collect();
    let mut out = vec![0.0f64; dims];
    let iters = 60u64;
    let work = iters * (points * dims) as u64;
    let kernel_meps = throughput(3, work, || {
        for _ in 0..iters {
            for row in data.chunks_exact(dims) {
                abs_diffs(&mut out, row, &query);
                black_box(&out);
            }
        }
    }) / 1e6;
    let scalar_meps = throughput(3, work, || {
        for _ in 0..iters {
            for row in data.chunks_exact(dims) {
                abs_diffs_scalar(&mut out, row, &query);
                black_box(&out);
            }
        }
    }) / 1e6;
    rows.push(KernelRow {
        name: "abs_diffs",
        kernel_meps,
        scalar_meps,
    });

    rows
}

struct Cell {
    dims: usize,
    n: usize,
    /// (mode name, qps) for ad / vafile / scan / auto, in that order.
    modes: Vec<(&'static str, f64)>,
    auto_routes: PlanTally,
}

impl Cell {
    fn qps(&self, name: &str) -> f64 {
        self.modes
            .iter()
            .find(|(m, _)| *m == name)
            .map(|(_, q)| *q)
            .expect("mode present")
    }

    fn best_forced(&self) -> f64 {
        self.modes
            .iter()
            .filter(|(m, _)| *m != "auto")
            .map(|(_, q)| *q)
            .fold(0.0, f64::max)
    }

    fn worst_forced(&self) -> f64 {
        self.modes
            .iter()
            .filter(|(m, _)| *m != "auto")
            .map(|(_, q)| *q)
            .fold(f64::INFINITY, f64::min)
    }
}

fn digest(answers: &[BatchAnswer]) -> u64 {
    let mut sum = 0u64;
    for a in answers {
        let ids = match a {
            BatchAnswer::KnMatch(r) | BatchAnswer::EpsMatch(r) => r.ids(),
            BatchAnswer::Frequent(r) => r.ids(),
        };
        for (rank, pid) in ids.iter().enumerate() {
            sum = sum
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(u64::from(*pid) ^ ((rank as u64) << 32));
        }
    }
    sum
}

/// Runs `batch` under `mode`, asserting the answers match `want` (when
/// given) and returning the best-of-2 qps.
fn run_mode(
    engine: &PlannedEngine,
    batch: &[BatchQuery],
    mode: PlannerMode,
    want: Option<u64>,
) -> (f64, u64) {
    let opts = BatchOptions {
        planner: Some(mode),
        ..BatchOptions::default()
    };
    let mut best = f64::INFINITY;
    let mut dig = 0;
    for _ in 0..2 {
        let t = Instant::now();
        let results = engine.run_with(batch, &opts);
        best = best.min(t.elapsed().as_secs_f64());
        let answers: Vec<BatchAnswer> = results
            .into_iter()
            .map(|r| r.expect("valid workload").0)
            .collect();
        dig = digest(&answers);
        if let Some(want) = want {
            assert_eq!(dig, want, "{mode}: answers diverged from forced scan");
        }
    }
    (batch.len() as f64 / best, dig)
}

/// Section 2: the planner crossover sweep.
fn bench_crossover(cfg: &Config) -> Vec<Cell> {
    let mut cells = Vec::new();
    for dims in [4usize, 8, 16] {
        let ds = knmatch_data::uniform(cfg.cardinality, dims, cfg.seed);
        let engine = PlannedEngine::with_workers(&ds, 1, PlannerMode::Auto);
        let mut rng = seeded(cfg.seed ^ (dims as u64) << 8);
        for n in [1usize, dims / 2, dims] {
            let batch: Vec<BatchQuery> = (0..cfg.queries)
                .map(|_| {
                    let pid = rng.range_usize(0..ds.len()) as u32;
                    let query = ds
                        .point(pid)
                        .iter()
                        .map(|&v| (v + rng.range_f64(-0.01, 0.01)).clamp(0.0, 1.0))
                        .collect();
                    BatchQuery::KnMatch { query, k: cfg.k, n }
                })
                .collect();

            // Warm-up, and the reference digest every mode must reproduce.
            let (_, want) = run_mode(&engine, &batch, PlannerMode::Scan, None);

            let mut modes = Vec::new();
            for (name, mode) in [
                ("ad", PlannerMode::Ad),
                ("vafile", PlannerMode::VaFile),
                ("scan", PlannerMode::Scan),
            ] {
                let (qps, _) = run_mode(&engine, &batch, mode, Some(want));
                modes.push((name, qps));
            }
            let before = engine.plan_counts().expect("planned engine tallies");
            let (auto_qps, _) = run_mode(&engine, &batch, PlannerMode::Auto, Some(want));
            let after = engine.plan_counts().expect("planned engine tallies");
            modes.push(("auto", auto_qps));
            let auto_routes = PlanTally {
                ad: after.ad - before.ad,
                vafile: after.vafile - before.vafile,
                scan: after.scan - before.scan,
                igrid: after.igrid - before.igrid,
            };
            let probe = engine.plan_for(&batch[0]).expect("valid workload");
            eprintln!(
                "    model costs q0: ad {:.0} vafile {:.0} scan {:.0} -> {:?}",
                probe.ad_cost, probe.vafile_cost, probe.scan_cost, probe.backend
            );
            eprintln!(
                "d={dims} n={n}: ad {:.0} qps, vafile {:.0}, scan {:.0}, auto {:.0} \
                 (routes {} ad / {} vafile / {} scan)",
                modes[0].1,
                modes[1].1,
                modes[2].1,
                auto_qps,
                auto_routes.ad / 2,
                auto_routes.vafile / 2,
                auto_routes.scan / 2,
            );
            cells.push(Cell {
                dims,
                n,
                modes,
                auto_routes,
            });
        }
    }
    cells
}

fn main() {
    let cfg = Config::parse();
    eprintln!(
        "planner_crossover: c={} queries={} k={} seed={}",
        cfg.cardinality, cfg.queries, cfg.k, cfg.seed
    );

    let kernels = bench_kernels(cfg.seed);
    for k in &kernels {
        eprintln!(
            "kernel {}: {:.1} Melem/s vs scalar {:.1} Melem/s ({:.2}x)",
            k.name,
            k.kernel_meps,
            k.scalar_meps,
            k.speedup()
        );
    }

    let cells = bench_crossover(&cfg);

    let filter_speedup = kernels
        .iter()
        .find(|k| k.name == "band_filter")
        .expect("band filter row")
        .speedup();
    let auto_never_below_worst = cells.iter().all(|c| c.qps("auto") >= c.worst_forced());

    // Sweep-level totals: the planner's claim is about the whole n × d
    // grid — no single backend is good everywhere, `auto` must be. (Per
    // cell the ratios above tell the fine-grained story; at n = 1 the
    // µs-scale AD queries make the planning probe itself the dominant
    // cost, which the sweep totals price honestly.)
    let sweep_time =
        |name: &str| -> f64 { cells.iter().map(|c| cfg.queries as f64 / c.qps(name)).sum() };
    let (ad_s, vafile_s, scan_s, auto_s) = (
        sweep_time("ad"),
        sweep_time("vafile"),
        sweep_time("scan"),
        sweep_time("auto"),
    );
    let best_single_s = ad_s.min(vafile_s).min(scan_s);
    let worst_single_s = ad_s.max(vafile_s).max(scan_s);
    let auto_sweep_within_10pct_of_best = auto_s <= 1.1 * best_single_s;
    let auto_sweep_never_below_worst = auto_s <= worst_single_s;
    eprintln!(
        "sweep totals: ad {ad_s:.3}s, vafile {vafile_s:.3}s, scan {scan_s:.3}s, \
         auto {auto_s:.3}s ({:.2}x best single backend)",
        best_single_s / auto_s
    );

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"cardinality\": {}, \"queries\": {}, \"k\": {}, \"seed\": {}}},",
        cfg.cardinality, cfg.queries, cfg.k, cfg.seed
    );
    let _ = writeln!(json, "  \"kernels\": [");
    for (i, k) in kernels.iter().enumerate() {
        let comma = if i + 1 < kernels.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"kernel_melems_per_s\": {:.1}, \
             \"scalar_melems_per_s\": {:.1}, \"speedup\": {:.2}}}{comma}",
            k.name,
            k.kernel_meps,
            k.scalar_meps,
            k.speedup()
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"crossover\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"dims\": {}, \"n\": {}, \"ad_qps\": {:.1}, \"vafile_qps\": {:.1}, \
             \"scan_qps\": {:.1}, \"auto_qps\": {:.1}, \
             \"auto_routes\": {{\"ad\": {}, \"vafile\": {}, \"scan\": {}}}, \
             \"auto_vs_best\": {:.3}, \"auto_vs_worst\": {:.3}}}{comma}",
            c.dims,
            c.n,
            c.qps("ad"),
            c.qps("vafile"),
            c.qps("scan"),
            c.qps("auto"),
            c.auto_routes.ad / 2,
            c.auto_routes.vafile / 2,
            c.auto_routes.scan / 2,
            c.qps("auto") / c.best_forced(),
            c.qps("auto") / c.worst_forced(),
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"sweep_totals_s\": {{\"ad\": {ad_s:.4}, \"vafile\": {vafile_s:.4}, \
         \"scan\": {scan_s:.4}, \"auto\": {auto_s:.4}}},"
    );
    let _ = writeln!(json, "  \"filter_kernel_speedup\": {filter_speedup:.2},");
    let _ = writeln!(
        json,
        "  \"auto_sweep_speedup_vs_best_single\": {:.2},",
        best_single_s / auto_s
    );
    let _ = writeln!(
        json,
        "  \"auto_sweep_within_10pct_of_best\": {auto_sweep_within_10pct_of_best},"
    );
    let _ = writeln!(
        json,
        "  \"auto_sweep_never_below_worst\": {auto_sweep_never_below_worst},"
    );
    let _ = writeln!(
        json,
        "  \"auto_never_below_worst_per_cell\": {auto_never_below_worst}"
    );
    json.push_str("}\n");

    std::fs::write(&cfg.out, &json).expect("write output file");
    print!("{json}");
    eprintln!("wrote {}", cfg.out);
}
