//! Std-only intra-query scaling benchmark for the sharded engine and the
//! structure-of-arrays column layout. Emits `BENCH_shard_scaling.json`.
//!
//! ```text
//! cargo run -p knmatch-bench --release --bin shard_scaling
//! cargo run -p knmatch-bench --release --bin shard_scaling -- \
//!     --cardinality 100000 --dims 30 -k 10 -n 2 --queries 64 \
//!     --out BENCH_shard_scaling.json
//! ```
//!
//! Two experiments over the identical query workload:
//!
//! 1. **SoA vs AoS at one shard** — the shipped [`SortedColumns`]
//!    (separate value/pid arrays) against a bench-local array-of-structs
//!    source holding `Vec<SortedEntry>` per dimension. Answers and
//!    `AdStats` are asserted bit-identical before any number is reported;
//!    the SoA layout must not regress single-shard latency.
//! 2. **Shard scaling** — single-query latency through
//!    [`ShardedQueryEngine`] at 1, 2, and 4 shards, answers asserted
//!    bit-identical to the unsharded engine.
//!
//! Wall-clock timing only (`std::time::Instant`), no external bench
//! framework, so the workspace builds offline.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use knmatch_core::{
    execute_batch_query, AdStats, BatchAnswer, BatchEngine, BatchQuery, Scratch, ShardedColumns,
    ShardedQueryEngine, SortedAccessSource, SortedColumns, SortedEntry,
};
use knmatch_data::rng::seeded;

struct Config {
    cardinality: usize,
    dims: usize,
    k: usize,
    n: usize,
    queries: usize,
    seed: u64,
    workers: usize,
    out: String,
}

impl Config {
    fn parse() -> Config {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let get = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .cloned()
        };
        let num = |flag: &str, default: usize| {
            get(flag).map_or(default, |v| {
                v.parse().unwrap_or_else(|_| panic!("bad {flag}"))
            })
        };
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!(
                "usage: shard_scaling [--cardinality C] [--dims D] [-k K] [-n N] \
                 [--queries Q] [--seed S] [--workers W] [--out FILE]"
            );
            std::process::exit(0);
        }
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        // Defaults mirror the `throughput` bench's canonical workload so
        // the two reports describe the same database.
        Config {
            cardinality: num("--cardinality", 100_000),
            dims: num("--dims", 30),
            k: num("-k", 10),
            n: num("-n", 2),
            queries: num("--queries", 64),
            seed: get("--seed").map_or(42, |v| v.parse().expect("bad --seed")),
            workers: num("--workers", cpus),
            out: get("--out").unwrap_or_else(|| "BENCH_shard_scaling.json".into()),
        }
    }
}

/// The layout the SoA refactor replaced: one `Vec<SortedEntry>` per
/// dimension, values and pids interleaved in memory. Built from the
/// shipped columns so both layouts hold byte-identical orders.
struct AosColumns {
    cardinality: usize,
    cols: Vec<Vec<SortedEntry>>,
}

impl AosColumns {
    fn from_soa(cols: &SortedColumns) -> AosColumns {
        AosColumns {
            cardinality: cols.cardinality(),
            cols: (0..cols.dims()).map(|d| cols.column(d).to_vec()).collect(),
        }
    }
}

impl SortedAccessSource for AosColumns {
    fn dims(&self) -> usize {
        self.cols.len()
    }
    fn cardinality(&self) -> usize {
        self.cardinality
    }
    fn locate(&mut self, dim: usize, q: f64) -> usize {
        self.cols[dim].partition_point(|e| e.value < q)
    }
    fn entry(&mut self, dim: usize, rank: usize) -> SortedEntry {
        self.cols[dim][rank]
    }
}

fn percentile(latencies: &[f64], p: f64) -> f64 {
    let mut us = latencies.to_vec();
    us.sort_by(f64::total_cmp);
    us[((us.len() - 1) as f64 * p) as usize]
}

fn mean(latencies: &[f64]) -> f64 {
    latencies.iter().sum::<f64>() / latencies.len() as f64
}

/// Runs every query once through `src`, returning per-query latencies in
/// microseconds plus the answers for the bit-identity assertions.
fn run_source<S: SortedAccessSource>(
    src: &mut S,
    batch: &[BatchQuery],
) -> (Vec<f64>, Vec<(BatchAnswer, AdStats)>) {
    let mut scratch = Scratch::new();
    let mut latencies = Vec::with_capacity(batch.len());
    let mut out = Vec::with_capacity(batch.len());
    for q in batch {
        let t = Instant::now();
        let r = execute_batch_query(src, q, &mut scratch).expect("valid workload");
        latencies.push(t.elapsed().as_secs_f64() * 1e6);
        out.push(r);
    }
    (latencies, out)
}

fn main() {
    let cfg = Config::parse();
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "shard_scaling: c={} d={} k={} n={} queries={} seed={} workers={} ({cpus} cpu(s))",
        cfg.cardinality, cfg.dims, cfg.k, cfg.n, cfg.queries, cfg.seed, cfg.workers
    );

    let ds = knmatch_data::uniform(cfg.cardinality, cfg.dims, cfg.seed);
    let mut rng = seeded(cfg.seed ^ 0x9E37_79B9);
    let batch: Vec<BatchQuery> = (0..cfg.queries)
        .map(|_| {
            let pid = rng.range_usize(0..ds.len()) as u32;
            let query = ds
                .point(pid)
                .iter()
                .map(|&v| (v + rng.range_f64(-0.01, 0.01)).clamp(0.0, 1.0))
                .collect();
            BatchQuery::KnMatch {
                query,
                k: cfg.k,
                n: cfg.n,
            }
        })
        .collect();

    // --- Experiment 1: SoA vs AoS, one shard, sequential. ---------------
    // Alternating passes with a per-query minimum: the min filters
    // scheduler noise and the interleave removes run-order bias (frequency
    // ramp-up, allocator warmth) that a single A-then-B run bakes in.
    let mut soa = SortedColumns::build(&ds);
    let mut aos = AosColumns::from_soa(&soa);
    let _ = run_source(&mut soa, &batch[..batch.len().min(8)]);
    let _ = run_source(&mut aos, &batch[..batch.len().min(8)]);
    let mut soa_lat = vec![f64::INFINITY; batch.len()];
    let mut aos_lat = vec![f64::INFINITY; batch.len()];
    let mut soa_out = Vec::new();
    for pass in 0..3 {
        let (lat, out) = run_source(&mut soa, &batch);
        for (best, l) in soa_lat.iter_mut().zip(&lat) {
            *best = best.min(*l);
        }
        let (lat, aos_out) = run_source(&mut aos, &batch);
        for (best, l) in aos_lat.iter_mut().zip(&lat) {
            *best = best.min(*l);
        }
        assert_eq!(
            out, aos_out,
            "SoA and AoS layouts must answer identically (answers and stats)"
        );
        if pass == 0 {
            soa_out = out;
        }
    }
    let soa_mean = mean(&soa_lat);
    let aos_mean = mean(&aos_lat);

    // --- Experiment 2: shard scaling through the sharded engine. --------
    let mut shard_rows = Vec::new();
    let mut one_shard_mean = 0.0;
    for shards in [1usize, 2, 4] {
        let cols = Arc::new(ShardedColumns::build_with_workers(&ds, shards, cfg.workers));
        let engine = ShardedQueryEngine::with_workers(cols, cfg.workers);
        // Warm-up: spin the pool once.
        let _ = engine.run(&batch[..batch.len().min(8)]);
        let mut latencies = Vec::with_capacity(batch.len());
        for (q, want) in batch.iter().zip(&soa_out) {
            let t = Instant::now();
            let outcome = engine.execute(q).expect("valid workload");
            latencies.push(t.elapsed().as_secs_f64() * 1e6);
            assert_eq!(
                outcome.answer, want.0,
                "sharded answer diverged at shards={shards}"
            );
        }
        let m = mean(&latencies);
        if shards == 1 {
            one_shard_mean = m;
        }
        shard_rows.push((shards, m, percentile(&latencies, 0.50), one_shard_mean / m));
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"cardinality\": {}, \"dims\": {}, \"k\": {}, \"n\": {}, \
         \"queries\": {}, \"seed\": {}, \"workers\": {}, \"cpus\": {cpus}}},",
        cfg.cardinality, cfg.dims, cfg.k, cfg.n, cfg.queries, cfg.seed, cfg.workers
    );
    let _ = writeln!(
        json,
        "  \"layout_shards1\": {{\"soa_mean_us\": {soa_mean:.1}, \
         \"soa_p50_us\": {:.1}, \"aos_mean_us\": {aos_mean:.1}, \
         \"aos_p50_us\": {:.1}, \"soa_speedup_vs_aos\": {:.3}}},",
        percentile(&soa_lat, 0.50),
        percentile(&aos_lat, 0.50),
        aos_mean / soa_mean
    );
    let _ = writeln!(json, "  \"shards\": [");
    for (i, (shards, m, p50, speedup)) in shard_rows.iter().enumerate() {
        let comma = if i + 1 < shard_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"shards\": {shards}, \"mean_us\": {m:.1}, \"p50_us\": {p50:.1}, \
             \"speedup_vs_1shard\": {speedup:.3}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    std::fs::write(&cfg.out, &json).expect("write output file");
    print!("{json}");
    eprintln!("wrote {}", cfg.out);
}
