//! Std-only batch-throughput benchmark: the allocating sequential loop
//! vs. scratch reuse vs. the parallel [`QueryEngine`], on one uniform
//! dataset. Emits `BENCH_throughput.json`.
//!
//! ```text
//! cargo run -p knmatch-bench --release --bin throughput
//! cargo run -p knmatch-bench --release --bin throughput -- \
//!     --cardinality 100000 --dims 30 -k 10 -n 2 --queries 200 --out BENCH_throughput.json
//! ```
//!
//! All modes answer the identical workload and the run asserts their
//! answers and `AdStats` agree bit-for-bit before reporting numbers.
//! Wall-clock timing (`std::time::Instant`), no external bench framework,
//! so the workspace builds offline.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use knmatch_core::{
    k_n_match_ad, AdStats, BatchAnswer, BatchEngine, BatchQuery, QueryEngine, Scratch,
    SortedColumns,
};
use knmatch_data::rng::seeded;

struct Config {
    cardinality: usize,
    dims: usize,
    k: usize,
    n: usize,
    queries: usize,
    seed: u64,
    out: String,
}

impl Config {
    fn parse() -> Config {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let get = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .cloned()
        };
        let num = |flag: &str, default: usize| {
            get(flag).map_or(default, |v| {
                v.parse().unwrap_or_else(|_| panic!("bad {flag}"))
            })
        };
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!(
                "usage: throughput [--cardinality C] [--dims D] [-k K] [-n N] \
                 [--queries Q] [--seed S] [--out FILE]"
            );
            std::process::exit(0);
        }
        Config {
            cardinality: num("--cardinality", 100_000),
            dims: num("--dims", 30),
            k: num("-k", 10),
            n: num("-n", 1),
            queries: num("--queries", 2000),
            seed: get("--seed").map_or(42, |v| v.parse().expect("bad --seed")),
            out: get("--out").unwrap_or_else(|| "BENCH_throughput.json".into()),
        }
    }
}

struct Mode {
    name: &'static str,
    workers: usize,
    wall: Duration,
    latencies: Vec<Duration>,
    attributes: u64,
}

impl Mode {
    fn qps(&self, queries: usize) -> f64 {
        queries as f64 / self.wall.as_secs_f64()
    }

    fn pct(&self, p: f64) -> f64 {
        let mut us: Vec<f64> = self
            .latencies
            .iter()
            .map(|d| d.as_secs_f64() * 1e6)
            .collect();
        us.sort_by(f64::total_cmp);
        us[((us.len() - 1) as f64 * p) as usize]
    }
}

fn digest(results: &[(BatchAnswer, AdStats)]) -> (u64, u64) {
    // (total attributes, structural checksum) — cheap equality witness.
    let mut attrs = 0u64;
    let mut sum = 0u64;
    for (a, s) in results {
        attrs += s.attributes_retrieved;
        let ids = match a {
            BatchAnswer::KnMatch(r) | BatchAnswer::EpsMatch(r) => r.ids(),
            BatchAnswer::Frequent(r) => r.ids(),
        };
        for (rank, pid) in ids.iter().enumerate() {
            sum = sum
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(*pid as u64 ^ ((rank as u64) << 32));
        }
        sum = sum.wrapping_add(s.heap_pops);
    }
    (attrs, sum)
}

/// The pre-engine code path: one fresh allocation set per query.
fn run_alloc_loop(cols: &SortedColumns, queries: &[Vec<f64>], k: usize, n: usize) -> Mode {
    let mut cols = cols.clone();
    let mut latencies = Vec::with_capacity(queries.len());
    let mut out = Vec::with_capacity(queries.len());
    let wall = Instant::now();
    for q in queries {
        let t = Instant::now();
        let (r, s) = k_n_match_ad(&mut cols, q, k, n).expect("valid workload");
        latencies.push(t.elapsed());
        out.push((BatchAnswer::KnMatch(r), s));
    }
    let wall = wall.elapsed();
    let (attributes, _) = digest(&out);
    Mode {
        name: "sequential_alloc",
        workers: 1,
        wall,
        latencies,
        attributes,
    }
}

/// One engine worker's life, measured: claim queries off a shared counter,
/// reuse one `Scratch`, record per-query latency.
fn run_engine(
    engine: &QueryEngine,
    batch: &[BatchQuery],
    workers: usize,
    name: &'static str,
    reference: Option<(u64, u64)>,
) -> Mode {
    // Product-path wall time: one engine.run() call.
    let wall = Instant::now();
    let results = engine.run(batch);
    let wall = wall.elapsed();
    let ok: Vec<(BatchAnswer, AdStats)> = results
        .into_iter()
        .map(|r| r.expect("valid workload"))
        .collect();
    let dig = digest(&ok);
    if let Some(want) = reference {
        assert_eq!(
            dig, want,
            "{name}: parallel answers diverged from sequential"
        );
    }

    // Per-query latencies: same claim loop the engine runs, timed.
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            s.spawn(move || {
                let mut scratch = Scratch::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= batch.len() {
                        break;
                    }
                    let t = Instant::now();
                    let _ = engine
                        .execute(&batch[i], &mut scratch)
                        .expect("valid workload");
                    if tx.send(t.elapsed()).is_err() {
                        break;
                    }
                }
            });
        }
    });
    drop(tx);
    let latencies: Vec<Duration> = rx.into_iter().collect();
    Mode {
        name,
        workers,
        wall,
        latencies,
        attributes: dig.0,
    }
}

fn main() {
    let cfg = Config::parse();
    let cpus = thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "throughput: c={} d={} k={} n={} queries={} seed={} ({cpus} cpu(s))",
        cfg.cardinality, cfg.dims, cfg.k, cfg.n, cfg.queries, cfg.seed
    );

    let ds = knmatch_data::uniform(cfg.cardinality, cfg.dims, cfg.seed);
    let mut rng = seeded(cfg.seed ^ 0x9E37_79B9);
    let queries: Vec<Vec<f64>> = (0..cfg.queries)
        .map(|_| {
            let pid = rng.range_usize(0..ds.len()) as u32;
            ds.point(pid)
                .iter()
                .map(|&v| (v + rng.range_f64(-0.01, 0.01)).clamp(0.0, 1.0))
                .collect()
        })
        .collect();
    let cols = SortedColumns::build(&ds);
    let batch: Vec<BatchQuery> = queries
        .iter()
        .map(|q| BatchQuery::KnMatch {
            query: q.clone(),
            k: cfg.k,
            n: cfg.n,
        })
        .collect();

    // Warm-up pass (page in columns, stabilise the allocator).
    let engine = QueryEngine::with_workers(Arc::new(cols.clone()), 1);
    let _ = engine.run(&batch[..batch.len().min(8)]);

    let baseline = run_alloc_loop(&cols, &queries, cfg.k, cfg.n);
    let reference = {
        let mut c = cols.clone();
        let out: Vec<(BatchAnswer, AdStats)> = queries
            .iter()
            .map(|q| {
                let (r, s) = k_n_match_ad(&mut c, q, cfg.k, cfg.n).expect("valid workload");
                (BatchAnswer::KnMatch(r), s)
            })
            .collect();
        digest(&out)
    };

    let shared = Arc::new(cols);
    let mut modes = vec![baseline];
    for (workers, name) in [
        (1usize, "engine_w1"),
        (2, "engine_w2"),
        (4, "engine_w4"),
        (cpus, "engine_wcpus"),
    ] {
        let engine = QueryEngine::with_workers(shared.clone(), workers);
        modes.push(run_engine(&engine, &batch, workers, name, Some(reference)));
    }

    let base_qps = modes[0].qps(cfg.queries);
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"cardinality\": {}, \"dims\": {}, \"k\": {}, \"n\": {}, \
         \"queries\": {}, \"seed\": {}, \"cpus\": {cpus}}},",
        cfg.cardinality, cfg.dims, cfg.k, cfg.n, cfg.queries, cfg.seed
    );
    let _ = writeln!(json, "  \"modes\": [");
    for (i, m) in modes.iter().enumerate() {
        let comma = if i + 1 < modes.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"workers\": {}, \"qps\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"wall_ms\": {:.2}, \
             \"attributes_retrieved\": {}, \"speedup_vs_alloc\": {:.2}}}{comma}",
            m.name,
            m.workers,
            m.qps(cfg.queries),
            m.pct(0.50),
            m.pct(0.99),
            m.wall.as_secs_f64() * 1e3,
            m.attributes,
            m.qps(cfg.queries) / base_qps,
        );
    }
    let _ = writeln!(json, "  ],");
    let w4 = modes
        .iter()
        .find(|m| m.name == "engine_w4")
        .expect("engine_w4 mode exists");
    let _ = writeln!(
        json,
        "  \"speedup_engine_w4_vs_sequential_alloc\": {:.2}",
        w4.qps(cfg.queries) / base_qps
    );
    json.push_str("}\n");

    std::fs::write(&cfg.out, &json).expect("write output file");
    print!("{json}");
    eprintln!("wrote {}", cfg.out);
}
