//! A blocking client for the text protocol — the other half of the
//! conversation [`Server`](crate::Server) holds, used by `knmatch
//! client`, the cross-check tests and the `server_throughput` bench.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use knmatch_core::{BatchAnswer, BatchQuery, PlanTally, PlannerMode};

use crate::protocol::{
    format_query, parse_response, ErrorKind, ProtoError, Response, StatsSnapshot,
};

/// A failure reported by the server for one query (`ERR` line), as
/// opposed to a transport failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServedError {
    /// The error category.
    pub kind: ErrorKind,
    /// The server's message.
    pub message: String,
}

impl std::fmt::Display for ServedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.token(), self.message)
    }
}

impl std::error::Error for ServedError {}

/// A transport- or protocol-level client failure: the conversation
/// itself broke (socket error, unparseable or out-of-order response).
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's bytes did not parse as a response line.
    Proto(ProtoError),
    /// A parseable response of the wrong shape for what was asked.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// The outcome of one [`Client::run_batch`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReply {
    /// One entry per submitted query, in submission order: the answer or
    /// the server-reported error.
    pub answers: Vec<Result<BatchAnswer, ServedError>>,
    /// The `DONE` trailer's success count.
    pub ok: u64,
    /// The `DONE` trailer's failure count.
    pub failed: u64,
}

/// One connection to a `knmatch serve` process.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`).
    ///
    /// # Errors
    ///
    /// Socket errors from connect.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sets a socket read timeout so a stuck server surfaces as an error
    /// instead of a hang. `None` blocks forever (the default).
    ///
    /// # Errors
    ///
    /// Socket errors from the setsockopt.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    fn send_line(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(parse_response(line.trim_end_matches(['\n', '\r']))?)
    }

    /// Liveness probe (`PING` → `OK PONG`).
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send_line("PING")?;
        match self.recv()? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Sets the per-query deadline for this connection's later queries
    /// (0 clears it).
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn set_deadline_ms(&mut self, ms: u64) -> Result<(), ClientError> {
        self.send_line(&format!("DEADLINE {ms}"))?;
        match self.recv()? {
            Response::Deadline(got) if got == ms => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Toggles fail-fast for this connection's later batches.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn set_fail_fast(&mut self, on: bool) -> Result<(), ClientError> {
        self.send_line(&format!("FAILFAST {}", u8::from(on)))?;
        match self.recv()? {
            Response::FailFast(got) if got == on => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Sets the planner route for this connection's later queries
    /// (`PLANNER <auto|ad|vafile|scan|igrid>`). Engines without a planner
    /// accept and ignore it.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn set_planner(&mut self, mode: PlannerMode) -> Result<(), ClientError> {
        self.send_line(&format!("PLANNER {mode}"))?;
        match self.recv()? {
            Response::Planner(got) if got == mode => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Runs one query, returning the answer or the server-reported
    /// per-query error.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn query(
        &mut self,
        q: &BatchQuery,
    ) -> Result<Result<BatchAnswer, ServedError>, ClientError> {
        self.send_line(&format_query(q))?;
        match self.recv()? {
            Response::Answer(a) => Ok(Ok(a)),
            Response::Error { kind, message } => Ok(Err(ServedError { kind, message })),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Submits `queries` as one `BATCH`, pipelining all query lines in a
    /// single write, and collects the per-query responses plus the `DONE`
    /// trailer.
    ///
    /// # Errors
    ///
    /// Transport failures or an out-of-shape response stream.
    pub fn run_batch(&mut self, queries: &[BatchQuery]) -> Result<BatchReply, ClientError> {
        let mut frame = format!("BATCH {}\n", queries.len());
        for q in queries {
            frame.push_str(&format_query(q));
            frame.push('\n');
        }
        self.writer.write_all(frame.as_bytes())?;
        let mut answers = Vec::with_capacity(queries.len());
        for _ in 0..queries.len() {
            match self.recv()? {
                Response::Answer(a) => answers.push(Ok(a)),
                Response::Error { kind, message } => {
                    answers.push(Err(ServedError { kind, message }))
                }
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
        match self.recv()? {
            Response::Done { ok, failed } => Ok(BatchReply {
                answers,
                ok,
                failed,
            }),
            other => Err(ClientError::Unexpected(format!(
                "expected DONE, got {other:?}"
            ))),
        }
    }

    /// Fetches this connection's and the server's counters.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn stats(&mut self) -> Result<(StatsSnapshot, StatsSnapshot), ClientError> {
        self.stats_with_plans()
            .map(|(conn, server, _)| (conn, server))
    }

    /// Like [`stats`](Client::stats) but also returning the engine's plan
    /// tally — `None` when the served engine has no planner (or the server
    /// predates the counters).
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn stats_with_plans(
        &mut self,
    ) -> Result<(StatsSnapshot, StatsSnapshot, Option<PlanTally>), ClientError> {
        self.send_line("STATS")?;
        match self.recv()? {
            Response::Stats {
                conn,
                server,
                plans,
            } => Ok((conn, server, plans)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Asks the server to drain and stop, consuming this connection.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn shutdown_server(mut self) -> Result<(), ClientError> {
        self.send_line("SHUTDOWN")?;
        match self.recv()? {
            Response::ShuttingDown => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Closes the connection politely (`QUIT` → `OK BYE`).
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn quit(mut self) -> Result<(), ClientError> {
        self.send_line("QUIT")?;
        match self.recv()? {
            Response::Bye => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Sends raw bytes down the socket — the fuzz tests' hook for
    /// malformed and truncated frames. Not part of the polite API.
    ///
    /// # Errors
    ///
    /// Socket errors from the write.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)
    }

    /// Reads one raw response line — the fuzz tests' counterpart to
    /// [`send_raw`](Client::send_raw).
    ///
    /// # Errors
    ///
    /// Socket errors, or `UnexpectedEof` when the server closed.
    pub fn recv_response(&mut self) -> Result<Response, ClientError> {
        self.recv()
    }
}
