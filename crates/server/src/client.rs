//! A blocking client for the text protocol and its binary frame
//! sibling — the other half of the conversation
//! [`Server`](crate::Server) and [`EventServer`](crate::reactor) hold,
//! used by `knmatch client`, the cross-check tests and the benches.
//!
//! The receive path sniffs each response's first byte, so one client
//! can mix text lines and binary frames on the same connection (the
//! servers do the same for requests). [`Client::set_binary`] switches
//! what *this* client sends; [`Client::run_pipelined`] keeps a window
//! of requests in flight against the event-loop server.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

use knmatch_core::{BatchAnswer, BatchQuery, PlanTally, PlannerMode};
use knmatch_data::rng::Rng64;

use crate::protocol::{
    decode_response_frame, encode_batch_frame, encode_request_frame, format_query, parse_response,
    render_coords, retry_after_ms, ErrorKind, ProtoError, Request, Response, ServerExtras,
    StatsSnapshot, VersionCounters, FRAME_HEADER_LEN, FRAME_MAGIC, MAX_FRAME,
};

/// A failure reported by the server for one query (`ERR` line), as
/// opposed to a transport failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServedError {
    /// The error category.
    pub kind: ErrorKind,
    /// The server's message.
    pub message: String,
}

impl std::fmt::Display for ServedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.token(), self.message)
    }
}

impl std::error::Error for ServedError {}

/// A transport- or protocol-level client failure: the conversation
/// itself broke (socket error, unparseable or out-of-order response).
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's bytes did not parse as a response line.
    Proto(ProtoError),
    /// A parseable response of the wrong shape for what was asked.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// The outcome of one [`Client::run_batch`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReply {
    /// One entry per submitted query, in submission order: the answer or
    /// the server-reported error.
    pub answers: Vec<Result<BatchAnswer, ServedError>>,
    /// The `DONE` trailer's success count.
    pub ok: u64,
    /// The `DONE` trailer's failure count.
    pub failed: u64,
}

/// The complete `STATS` reply, one field per optional counter group.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// This connection's counters.
    pub conn: StatsSnapshot,
    /// Server-lifetime counters.
    pub server: StatsSnapshot,
    /// Server-lifetime plan-choice counters, present when the served
    /// engine has a cost-based planner.
    pub plans: Option<PlanTally>,
    /// Reactor and robustness counters, present on servers that track
    /// them.
    pub extras: Option<ServerExtras>,
    /// Version counters, present when the served engine is mutable.
    pub version: Option<VersionCounters>,
}

/// The `OK EPOCH` reply: a point-in-time view of a mutable engine's
/// version state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochInfo {
    /// Current epoch (bumped by every publishing write).
    pub epoch: u64,
    /// Live points at that epoch.
    pub live: u64,
    /// Rows in the unsealed write delta.
    pub delta: u64,
    /// Sealed immutable runs.
    pub runs: u64,
}

/// Every per-request knob the clients expose, in one struct: what used
/// to be scattered across [`Client::set_binary`] /
/// [`Client::set_deadline_ms`] / [`Client::set_fail_fast`] /
/// [`Client::set_planner`], the `run_batch` / `run_pipelined` split,
/// and [`RetryingClient`]'s policy. [`Client::run`] and the one-call
/// [`run_with_options`] consume it; the older methods remain as thin
/// wrappers over specific corners of this struct.
///
/// Every field defaults to `None` — "leave the connection as it is, run
/// one plain batch, don't retry".
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RequestOptions {
    /// `Some(on)` switches the request encoding before running;
    /// `None` keeps the connection's current setting.
    pub binary: Option<bool>,
    /// `Some(depth)` submits individually pipelined requests with at
    /// most `depth` in flight; `None` submits one `BATCH`.
    pub pipeline: Option<usize>,
    /// `Some(ms)` sets the per-query deadline first (0 clears it).
    pub deadline_ms: Option<u64>,
    /// `Some(on)` toggles fail-fast for the batch first.
    pub fail_fast: Option<bool>,
    /// `Some(mode)` sets the planner route first.
    pub planner: Option<PlannerMode>,
    /// `Some(policy)` rides out transient faults by reconnecting,
    /// backing off and resending. Honoured by [`run_with_options`] and
    /// [`RetryingClient`]; a lone [`Client::run`] cannot reconnect and
    /// ignores it.
    pub retry: Option<RetryPolicy>,
}

impl RequestOptions {
    /// Sets the request encoding.
    pub fn binary(mut self, on: bool) -> Self {
        self.binary = Some(on);
        self
    }

    /// Pipelines individual requests with at most `depth` in flight.
    pub fn pipeline(mut self, depth: usize) -> Self {
        self.pipeline = Some(depth);
        self
    }

    /// Sets the per-query deadline (0 clears it).
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Toggles batch fail-fast.
    pub fn fail_fast(mut self, on: bool) -> Self {
        self.fail_fast = Some(on);
        self
    }

    /// Sets the planner route.
    pub fn planner(mut self, mode: PlannerMode) -> Self {
        self.planner = Some(mode);
        self
    }

    /// Retries transient faults under `policy`.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }
}

/// One connection to a `knmatch serve` process.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    binary: bool,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`).
    ///
    /// # Errors
    ///
    /// Socket errors from connect.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            binary: false,
        })
    }

    /// Switches request encoding: `true` sends compact binary frames
    /// instead of text lines. Responses are sniffed either way, so this
    /// can be toggled mid-connection.
    pub fn set_binary(&mut self, on: bool) {
        self.binary = on;
    }

    /// Sets a socket read timeout so a stuck server surfaces as an error
    /// instead of a hang. `None` blocks forever (the default).
    ///
    /// # Errors
    ///
    /// Socket errors from the setsockopt.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    fn send_line(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    /// Sends `req` in the encoding [`set_binary`](Client::set_binary)
    /// selected.
    fn send_request(&mut self, req: &Request) -> Result<(), ClientError> {
        if self.binary {
            let mut frame = Vec::new();
            encode_request_frame(req, &mut frame)?;
            self.writer.write_all(&frame)?;
            return Ok(());
        }
        let line = match req {
            Request::Query(q) => format_query(q),
            Request::Batch(count) => format!("BATCH {count}"),
            Request::Deadline(ms) => format!("DEADLINE {ms}"),
            Request::FailFast(on) => format!("FAILFAST {}", u8::from(*on)),
            Request::Planner(mode) => format!("PLANNER {mode}"),
            Request::Stats => "STATS".into(),
            Request::Ping => "PING".into(),
            Request::Quit => "QUIT".into(),
            Request::Shutdown => "SHUTDOWN".into(),
            Request::Insert { key, point } => {
                let mut line = format!("INSERT {key} ");
                render_coords(&mut line, point);
                line
            }
            Request::Delete(key) => format!("DELETE {key}"),
            Request::Epoch => "EPOCH".into(),
            Request::Seal => "SEAL".into(),
        };
        self.send_line(&line)
    }

    /// Reads one response, sniffing the first byte for the frame magic
    /// (binary) versus anything else (a text line).
    fn recv(&mut self) -> Result<Response, ClientError> {
        let first = {
            let buf = self.reader.fill_buf()?;
            if buf.is_empty() {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            buf[0]
        };
        if first == FRAME_MAGIC {
            let mut header = [0u8; FRAME_HEADER_LEN];
            self.reader.read_exact(&mut header)?;
            let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]) as usize;
            if len > MAX_FRAME {
                return Err(ClientError::Proto(ProtoError(format!(
                    "response frame of {len} bytes exceeds {MAX_FRAME}"
                ))));
            }
            let mut payload = vec![0u8; len];
            self.reader.read_exact(&mut payload)?;
            return Ok(decode_response_frame(header[1], &payload)?);
        }
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        if !line.ends_with('\n') {
            // read_line only returns a newline-less line at EOF: the
            // server died mid-response. Truncation is a transport
            // failure (retryable), not a protocol one.
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-response",
            )));
        }
        Ok(parse_response(line.trim_end_matches(['\n', '\r']))?)
    }

    /// Liveness probe (`PING` → `OK PONG`).
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send_request(&Request::Ping)?;
        match self.recv()? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Sets the per-query deadline for this connection's later queries
    /// (0 clears it).
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn set_deadline_ms(&mut self, ms: u64) -> Result<(), ClientError> {
        self.send_request(&Request::Deadline(ms))?;
        match self.recv()? {
            Response::Deadline(got) if got == ms => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Toggles fail-fast for this connection's later batches.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn set_fail_fast(&mut self, on: bool) -> Result<(), ClientError> {
        self.send_request(&Request::FailFast(on))?;
        match self.recv()? {
            Response::FailFast(got) if got == on => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Sets the planner route for this connection's later queries
    /// (`PLANNER <auto|ad|vafile|scan|igrid>`). Engines without a planner
    /// accept and ignore it.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn set_planner(&mut self, mode: PlannerMode) -> Result<(), ClientError> {
        self.send_request(&Request::Planner(mode))?;
        match self.recv()? {
            Response::Planner(got) if got == mode => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Runs one query, returning the answer or the server-reported
    /// per-query error.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn query(
        &mut self,
        q: &BatchQuery,
    ) -> Result<Result<BatchAnswer, ServedError>, ClientError> {
        let mut burst = Vec::new();
        self.push_query(q, &mut burst);
        self.writer.write_all(&burst)?;
        match self.recv()? {
            Response::Answer(a) => Ok(Ok(a)),
            Response::Error { kind, message } => Ok(Err(ServedError { kind, message })),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Appends one query request to `burst` in the selected encoding.
    fn push_query(&self, q: &BatchQuery, burst: &mut Vec<u8>) {
        if self.binary {
            crate::protocol::encode_query_frame(q, burst);
        } else {
            burst.extend_from_slice(format_query(q).as_bytes());
            burst.push(b'\n');
        }
    }

    /// Runs `queries` with every knob drawn from `opts`: applies the
    /// connection-scoped options it carries (binary framing, deadline,
    /// fail-fast, planner — each only when `Some`), then submits the
    /// whole slice — as one `BATCH` by default, or as individually
    /// pipelined requests when [`RequestOptions::pipeline`] is set (the
    /// servers guarantee response order, see DESIGN.md §13; the
    /// pipelined path has no `DONE` trailer, so `ok`/`failed` are
    /// counted client-side).
    ///
    /// [`RequestOptions::retry`] is ignored here — a lone connection
    /// cannot reconnect. Use [`run_with_options`] or a
    /// [`RetryingClient`] for the retry loop.
    ///
    /// # Errors
    ///
    /// Transport failures or an out-of-shape response stream.
    pub fn run(
        &mut self,
        queries: &[BatchQuery],
        opts: &RequestOptions,
    ) -> Result<BatchReply, ClientError> {
        if let Some(on) = opts.binary {
            self.set_binary(on);
        }
        if let Some(ms) = opts.deadline_ms {
            self.set_deadline_ms(ms)?;
        }
        if let Some(on) = opts.fail_fast {
            self.set_fail_fast(on)?;
        }
        if let Some(mode) = opts.planner {
            self.set_planner(mode)?;
        }
        let Some(depth) = opts.pipeline else {
            self.send_batch(queries)?;
            return self.recv_batch(queries.len());
        };
        let depth = depth.max(1);
        let mut answers = Vec::with_capacity(queries.len());
        let mut sent = 0;
        let mut burst = Vec::new();
        while answers.len() < queries.len() {
            burst.clear();
            while sent < queries.len() && sent - answers.len() < depth {
                self.push_query(&queries[sent], &mut burst);
                sent += 1;
            }
            if !burst.is_empty() {
                self.writer.write_all(&burst)?;
            }
            match self.recv()? {
                Response::Answer(a) => answers.push(Ok(a)),
                Response::Error { kind, message } => {
                    answers.push(Err(ServedError { kind, message }))
                }
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
        let ok = answers.iter().filter(|a| a.is_ok()).count() as u64;
        let failed = answers.len() as u64 - ok;
        Ok(BatchReply {
            answers,
            ok,
            failed,
        })
    }

    /// Runs `queries` as individually pipelined requests with at most
    /// `depth` in flight, returning the per-query results in submission
    /// order. Thin wrapper over [`run`](Client::run) with
    /// [`RequestOptions::pipeline`] set.
    ///
    /// # Errors
    ///
    /// Transport failures or an out-of-shape response stream.
    pub fn run_pipelined(
        &mut self,
        queries: &[BatchQuery],
        depth: usize,
    ) -> Result<Vec<Result<BatchAnswer, ServedError>>, ClientError> {
        self.run(queries, &RequestOptions::default().pipeline(depth))
            .map(|reply| reply.answers)
    }

    /// Submits `queries` as one `BATCH`, pipelining all query lines in a
    /// single write, and collects the per-query responses plus the `DONE`
    /// trailer. Thin wrapper over [`run`](Client::run) with default
    /// options.
    ///
    /// # Errors
    ///
    /// Transport failures or an out-of-shape response stream.
    pub fn run_batch(&mut self, queries: &[BatchQuery]) -> Result<BatchReply, ClientError> {
        self.run(queries, &RequestOptions::default())
    }

    /// Writes `queries` as one batch request without waiting for the
    /// responses — pair with [`recv_batch`](Client::recv_batch) to
    /// pipeline whole batches.
    ///
    /// # Errors
    ///
    /// Socket errors from the write.
    pub fn send_batch(&mut self, queries: &[BatchQuery]) -> Result<(), ClientError> {
        if self.binary {
            let mut frame = Vec::new();
            encode_batch_frame(queries, &mut frame);
            self.writer.write_all(&frame)?;
            return Ok(());
        }
        let mut frame = format!("BATCH {}\n", queries.len());
        for q in queries {
            frame.push_str(&format_query(q));
            frame.push('\n');
        }
        self.writer.write_all(frame.as_bytes())?;
        Ok(())
    }

    /// Collects the `count` per-query responses and `DONE` trailer of
    /// one in-flight batch.
    ///
    /// # Errors
    ///
    /// Transport failures or an out-of-shape response stream.
    pub fn recv_batch(&mut self, count: usize) -> Result<BatchReply, ClientError> {
        let mut answers = Vec::with_capacity(count);
        for _ in 0..count {
            match self.recv()? {
                Response::Answer(a) => answers.push(Ok(a)),
                Response::Error { kind, message } => {
                    answers.push(Err(ServedError { kind, message }))
                }
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
        match self.recv()? {
            Response::Done { ok, failed } => Ok(BatchReply {
                answers,
                ok,
                failed,
            }),
            other => Err(ClientError::Unexpected(format!(
                "expected DONE, got {other:?}"
            ))),
        }
    }

    /// Fetches this connection's and the server's counters.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn stats(&mut self) -> Result<(StatsSnapshot, StatsSnapshot), ClientError> {
        self.stats_with_plans()
            .map(|(conn, server, _)| (conn, server))
    }

    /// Like [`stats`](Client::stats) but also returning the engine's plan
    /// tally — `None` when the served engine has no planner (or the server
    /// predates the counters).
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn stats_with_plans(
        &mut self,
    ) -> Result<(StatsSnapshot, StatsSnapshot, Option<PlanTally>), ClientError> {
        self.stats_full()
            .map(|(conn, server, plans, _)| (conn, server, plans))
    }

    /// The full `STATS` response minus the version counters — a thin
    /// wrapper over [`stats_report`](Client::stats_report) kept for the
    /// tuple-shaped call sites.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    #[allow(clippy::type_complexity)]
    pub fn stats_full(
        &mut self,
    ) -> Result<
        (
            StatsSnapshot,
            StatsSnapshot,
            Option<PlanTally>,
            Option<ServerExtras>,
        ),
        ClientError,
    > {
        self.stats_report()
            .map(|r| (r.conn, r.server, r.plans, r.extras))
    }

    /// The complete `STATS` response as one [`StatsReport`]: connection
    /// and server counters, the plan tally, the reactor extras, and the
    /// version counters (each optional group `None` when the server does
    /// not track it).
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn stats_report(&mut self) -> Result<StatsReport, ClientError> {
        self.send_request(&Request::Stats)?;
        match self.recv()? {
            Response::Stats {
                conn,
                server,
                plans,
                extras,
                version,
            } => Ok(StatsReport {
                conn,
                server,
                plans,
                extras,
                version,
            }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Upserts one point under `key` (`INSERT` — mutable servers only),
    /// returning the post-write epoch or the server-reported error.
    ///
    /// Writes go through a plain [`Client`] on purpose: they are not
    /// resend-safe, so [`RetryingClient`] does not wrap them.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn insert(
        &mut self,
        key: u32,
        point: &[f64],
    ) -> Result<Result<u64, ServedError>, ClientError> {
        self.send_request(&Request::Insert {
            key,
            point: point.to_vec(),
        })?;
        match self.recv()? {
            Response::Inserted(epoch) => Ok(Ok(epoch)),
            Response::Error { kind, message } => Ok(Err(ServedError { kind, message })),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Removes the point under `key` (`DELETE` — mutable servers only),
    /// returning the post-write epoch or the server-reported error.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn delete(&mut self, key: u32) -> Result<Result<u64, ServedError>, ClientError> {
        self.send_request(&Request::Delete(key))?;
        match self.recv()? {
            Response::Deleted(epoch) => Ok(Ok(epoch)),
            Response::Error { kind, message } => Ok(Err(ServedError { kind, message })),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the mutable engine's version state (`EPOCH`).
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn epoch(&mut self) -> Result<Result<EpochInfo, ServedError>, ClientError> {
        self.send_request(&Request::Epoch)?;
        match self.recv()? {
            Response::Epoch {
                epoch,
                live,
                delta,
                runs,
            } => Ok(Ok(EpochInfo {
                epoch,
                live,
                delta,
                runs,
            })),
            Response::Error { kind, message } => Ok(Err(ServedError { kind, message })),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Seals the mutable engine's write delta into an immutable run
    /// (`SEAL`), returning the epoch after the seal.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn seal(&mut self) -> Result<Result<u64, ServedError>, ClientError> {
        self.send_request(&Request::Seal)?;
        match self.recv()? {
            Response::Sealed(epoch) => Ok(Ok(epoch)),
            Response::Error { kind, message } => Ok(Err(ServedError { kind, message })),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Asks the server to drain and stop, consuming this connection.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn shutdown_server(mut self) -> Result<(), ClientError> {
        self.send_request(&Request::Shutdown)?;
        match self.recv()? {
            Response::ShuttingDown => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Closes the connection politely (`QUIT` → `OK BYE`).
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn quit(mut self) -> Result<(), ClientError> {
        self.send_request(&Request::Quit)?;
        match self.recv()? {
            Response::Bye => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Sends raw bytes down the socket — the fuzz tests' hook for
    /// malformed and truncated frames. Not part of the polite API.
    ///
    /// # Errors
    ///
    /// Socket errors from the write.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)
    }

    /// Reads one raw response line — the fuzz tests' counterpart to
    /// [`send_raw`](Client::send_raw).
    ///
    /// # Errors
    ///
    /// Socket errors, or `UnexpectedEof` when the server closed.
    pub fn recv_response(&mut self) -> Result<Response, ClientError> {
        self.recv()
    }
}

/// How a [`RetryingClient`] reacts to transient failures: how many
/// retries, how long to wait for each response, and the shape of the
/// backoff between attempts.
///
/// Backoff is *decorrelated jitter*: each sleep is drawn uniformly from
/// `[backoff_base, prev_sleep * 3]` and clamped to `backoff_cap`, so
/// concurrent clients spread out instead of retrying in lockstep. When
/// the server's error carried a `retry-after-ms` hint, the hint is a
/// floor on the sleep. The jitter stream is seeded, so a given client
/// replays the same sleeps run over run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub retries: u32,
    /// Socket read timeout per response; a server stalled past this
    /// surfaces as an [`ClientError::Io`] and is retried on a fresh
    /// connection. `None` waits forever.
    pub timeout: Option<Duration>,
    /// Smallest sleep between attempts.
    pub backoff_base: Duration,
    /// Largest sleep between attempts.
    pub backoff_cap: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 3,
            timeout: Some(Duration::from_secs(10)),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(2),
            seed: 0x5EED,
        }
    }
}

/// A [`Client`] wrapper that rides out transient faults: socket errors
/// reconnect and resend (safe because every request is a pure read),
/// and `ERR overloaded` / `ERR busy` replies back off and retry,
/// honouring the server's `retry-after-ms` hint as a floor.
///
/// Connection-scoped options (binary framing, `DEADLINE`, `FAILFAST`,
/// `PLANNER`) are recorded here and replayed onto every fresh
/// connection, so a mid-session reconnect is invisible to the caller.
#[derive(Debug)]
pub struct RetryingClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    conn: Option<Client>,
    rng: Rng64,
    prev_backoff: Duration,
    retries_used: u64,
    // Options replayed after every reconnect.
    binary: bool,
    deadline_ms: Option<u64>,
    fail_fast: Option<bool>,
    planner: Option<PlannerMode>,
}

impl RetryingClient {
    /// Resolves `addr` and prepares a client; the first connection is
    /// made lazily by the first request (so connect failures get the
    /// retry loop too).
    ///
    /// # Errors
    ///
    /// Address resolution failures.
    pub fn connect<A: ToSocketAddrs>(addr: A, policy: RetryPolicy) -> io::Result<RetryingClient> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        Ok(RetryingClient {
            addr,
            policy,
            conn: None,
            rng: Rng64::new(policy.seed),
            prev_backoff: Duration::ZERO,
            retries_used: 0,
            binary: false,
            deadline_ms: None,
            fail_fast: None,
            planner: None,
        })
    }

    /// Retries spent so far, across all requests.
    pub fn retries_used(&self) -> u64 {
        self.retries_used
    }

    /// Records the request encoding; applied immediately and replayed on
    /// reconnect.
    pub fn set_binary(&mut self, on: bool) {
        self.binary = on;
        if let Some(c) = self.conn.as_mut() {
            c.set_binary(on);
        }
    }

    /// Records the per-query deadline (0 clears); replayed on reconnect.
    /// If a live connection refuses the roundtrip it is dropped and the
    /// option takes effect on the next (replayed) connection.
    pub fn set_deadline_ms(&mut self, ms: u64) {
        self.deadline_ms = if ms == 0 { None } else { Some(ms) };
        if let Some(c) = self.conn.as_mut() {
            if c.set_deadline_ms(ms).is_err() {
                self.conn = None;
            }
        }
    }

    /// Records fail-fast for later batches; replayed on reconnect.
    pub fn set_fail_fast(&mut self, on: bool) {
        self.fail_fast = Some(on);
        if let Some(c) = self.conn.as_mut() {
            if c.set_fail_fast(on).is_err() {
                self.conn = None;
            }
        }
    }

    /// Records the planner mode; replayed on reconnect.
    pub fn set_planner(&mut self, mode: PlannerMode) {
        self.planner = Some(mode);
        if let Some(c) = self.conn.as_mut() {
            if c.set_planner(mode).is_err() {
                self.conn = None;
            }
        }
    }

    fn ensure_conn(&mut self) -> Result<&mut Client, ClientError> {
        if self.conn.is_none() {
            let mut c = Client::connect(self.addr)?;
            c.set_timeout(self.policy.timeout)?;
            c.set_binary(self.binary);
            if let Some(ms) = self.deadline_ms {
                c.set_deadline_ms(ms)?;
            }
            if let Some(on) = self.fail_fast {
                c.set_fail_fast(on)?;
            }
            if let Some(mode) = self.planner {
                c.set_planner(mode)?;
            }
            self.conn = Some(c);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// The next decorrelated-jitter sleep, floored by the server's
    /// `retry-after-ms` hint when one was given. Split from the sleep
    /// itself so tests can pin the sequence.
    fn next_backoff(&mut self, hint_ms: Option<u64>) -> Duration {
        let base = self.policy.backoff_base;
        let prev = self.prev_backoff.max(base);
        let span = (prev * 3).saturating_sub(base);
        let mut sleep = base + span.mul_f64(self.rng.next_f64());
        sleep = sleep.min(self.policy.backoff_cap);
        if let Some(ms) = hint_ms {
            sleep = sleep.max(Duration::from_millis(ms));
        }
        self.prev_backoff = sleep;
        sleep
    }

    fn backoff(&mut self, hint_ms: Option<u64>) {
        let sleep = self.next_backoff(hint_ms);
        if !sleep.is_zero() {
            thread::sleep(sleep);
        }
    }

    /// `true` when the reply is pure shed/busy noise worth retrying: at
    /// least one answer and every answer an `overloaded`/`busy` error.
    /// (The event loop sheds whole batches at admission, so a shed reply
    /// is all-or-nothing; a mixed reply is real work and returned as-is.)
    fn all_shed(reply: &BatchReply) -> bool {
        !reply.answers.is_empty()
            && reply.answers.iter().all(|a| {
                matches!(
                    a,
                    Err(e) if matches!(e.kind, ErrorKind::Overloaded | ErrorKind::Busy)
                )
            })
    }

    /// The largest `retry-after-ms` hint across a shed reply's errors.
    fn shed_hint(reply: &BatchReply) -> Option<u64> {
        reply
            .answers
            .iter()
            .filter_map(|a| a.as_ref().err())
            .filter_map(|e| retry_after_ms(&e.message))
            .max()
    }

    /// Runs `queries` as one batch, retrying transient failures per the
    /// policy. Socket errors drop the connection and resend everything
    /// on a fresh one — safe because queries never mutate server state.
    ///
    /// # Errors
    ///
    /// The final attempt's failure once retries are exhausted, or any
    /// non-retryable failure (a protocol error, an unexpected response).
    pub fn run_batch(&mut self, queries: &[BatchQuery]) -> Result<BatchReply, ClientError> {
        let mut attempt = 0u32;
        let mut hint: Option<u64> = None;
        loop {
            if attempt > 0 {
                self.retries_used += 1;
                self.backoff(hint.take());
            }
            let result = self.ensure_conn().and_then(|c| c.run_batch(queries));
            match result {
                Ok(reply) => {
                    if attempt < self.policy.retries && Self::all_shed(&reply) {
                        hint = Self::shed_hint(&reply);
                        attempt += 1;
                        continue;
                    }
                    return Ok(reply);
                }
                Err(ClientError::Io(_)) if attempt < self.policy.retries => {
                    self.conn = None;
                    attempt += 1;
                }
                Err(e) => {
                    if matches!(e, ClientError::Io(_)) {
                        self.conn = None;
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Runs one query with the same retry loop as
    /// [`run_batch`](RetryingClient::run_batch).
    ///
    /// # Errors
    ///
    /// The final attempt's failure once retries are exhausted, or any
    /// non-retryable failure.
    pub fn query(
        &mut self,
        q: &BatchQuery,
    ) -> Result<Result<BatchAnswer, ServedError>, ClientError> {
        let mut attempt = 0u32;
        let mut hint: Option<u64> = None;
        loop {
            if attempt > 0 {
                self.retries_used += 1;
                self.backoff(hint.take());
            }
            let result = self.ensure_conn().and_then(|c| c.query(q));
            match result {
                Ok(Err(e))
                    if attempt < self.policy.retries
                        && matches!(e.kind, ErrorKind::Overloaded | ErrorKind::Busy) =>
                {
                    hint = retry_after_ms(&e.message);
                    if e.kind == ErrorKind::Busy {
                        // Busy is a farewell: the server closes right
                        // after sending it, so don't reuse the socket.
                        self.conn = None;
                    }
                    attempt += 1;
                }
                Ok(answer) => return Ok(answer),
                Err(ClientError::Io(_)) if attempt < self.policy.retries => {
                    self.conn = None;
                    attempt += 1;
                }
                Err(e) => {
                    if matches!(e, ClientError::Io(_)) {
                        self.conn = None;
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Fetches the server counters (no retry value in wrapping this, but
    /// keeps harnesses on one client type).
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn stats_full(
        &mut self,
    ) -> Result<
        (
            StatsSnapshot,
            StatsSnapshot,
            Option<PlanTally>,
            Option<ServerExtras>,
        ),
        ClientError,
    > {
        self.ensure_conn().and_then(|c| c.stats_full())
    }

    /// Fetches the full counter report, version group included (no
    /// retry value in wrapping this, but keeps harnesses on one client
    /// type).
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn stats_report(&mut self) -> Result<StatsReport, ClientError> {
        self.ensure_conn().and_then(Client::stats_report)
    }

    /// Closes the connection if one is open (`QUIT` best-effort).
    pub fn close(&mut self) {
        if let Some(c) = self.conn.take() {
            c.quit().ok();
        }
    }
}

/// Connects to `addr` and runs `queries` with every knob drawn from
/// `opts` — the one-call front-end over [`Client`] and
/// [`RetryingClient`].
///
/// With [`RequestOptions::retry`] set, transient faults reconnect, back
/// off and resend the whole batch; [`RequestOptions::pipeline`] is
/// ignored on that path (a reconnect mid-window would re-run requests
/// whose responses were already consumed, so retrying only resends
/// all-or-nothing batches). Without `retry`, this is one plain
/// [`Client::run`]. Either way the connection is closed politely before
/// returning an answer.
///
/// # Errors
///
/// Connect failures, transport failures, or an out-of-shape response
/// stream (after the retry budget, when one was given).
pub fn run_with_options<A: ToSocketAddrs>(
    addr: A,
    queries: &[BatchQuery],
    opts: &RequestOptions,
) -> Result<BatchReply, ClientError> {
    match opts.retry {
        Some(policy) => {
            let mut c = RetryingClient::connect(addr, policy)?;
            if let Some(on) = opts.binary {
                c.set_binary(on);
            }
            if let Some(ms) = opts.deadline_ms {
                c.set_deadline_ms(ms);
            }
            if let Some(on) = opts.fail_fast {
                c.set_fail_fast(on);
            }
            if let Some(mode) = opts.planner {
                c.set_planner(mode);
            }
            let reply = c.run_batch(queries)?;
            c.close();
            Ok(reply)
        }
        None => {
            let mut c = Client::connect(addr)?;
            let reply = c.run(queries, opts)?;
            c.quit().ok();
            Ok(reply)
        }
    }
}

#[cfg(test)]
mod retry_tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            retries: 5,
            timeout: None,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            seed: 42,
        }
    }

    fn client(policy: RetryPolicy) -> RetryingClient {
        RetryingClient::connect("127.0.0.1:1", policy).unwrap()
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let mut a = client(policy());
        let mut b = client(policy());
        let mut prev = Duration::ZERO;
        for _ in 0..32 {
            let s = a.next_backoff(None);
            assert_eq!(s, b.next_backoff(None), "seeded streams must agree");
            assert!(s >= a.policy.backoff_base, "below base: {s:?}");
            assert!(s <= a.policy.backoff_cap, "above cap: {s:?}");
            // Decorrelated jitter: bounded by 3x the previous sleep.
            let ceiling = (prev.max(a.policy.backoff_base) * 3).min(a.policy.backoff_cap);
            assert!(s <= ceiling, "{s:?} above decorrelated ceiling {ceiling:?}");
            prev = s;
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = client(policy());
        let mut b = client(RetryPolicy {
            seed: 43,
            ..policy()
        });
        let same = (0..16)
            .filter(|_| a.next_backoff(None) == b.next_backoff(None))
            .count();
        assert!(same < 16, "distinct seeds produced identical jitter");
    }

    #[test]
    fn retry_after_hint_floors_the_sleep() {
        let mut c = client(policy());
        let s = c.next_backoff(Some(400));
        assert!(s >= Duration::from_millis(400), "hint not honoured: {s:?}");
        assert!(s <= c.policy.backoff_cap);
        // The floored value feeds the next ceiling, so backoff keeps
        // growing from the hint rather than collapsing back to base.
        let next = c.next_backoff(None);
        assert!(next <= Duration::from_millis(1200).min(c.policy.backoff_cap));
    }

    #[test]
    fn all_shed_requires_unanimous_overload() {
        let shed = |kind: ErrorKind| {
            Err(ServedError {
                kind,
                message: crate::protocol::with_retry_after("server overloaded", 25),
            })
        };
        let reply = BatchReply {
            answers: vec![shed(ErrorKind::Overloaded), shed(ErrorKind::Busy)],
            ok: 0,
            failed: 2,
        };
        assert!(RetryingClient::all_shed(&reply));
        assert_eq!(RetryingClient::shed_hint(&reply), Some(25));

        let mixed = BatchReply {
            answers: vec![
                shed(ErrorKind::Overloaded),
                Err(ServedError {
                    kind: ErrorKind::Query,
                    message: "k exceeds rows".into(),
                }),
            ],
            ok: 0,
            failed: 2,
        };
        assert!(!RetryingClient::all_shed(&mixed));
        assert!(!RetryingClient::all_shed(&BatchReply {
            answers: vec![],
            ok: 0,
            failed: 0,
        }));
    }
}
