//! A blocking client for the text protocol and its binary frame
//! sibling — the other half of the conversation
//! [`Server`](crate::Server) and [`EventServer`](crate::reactor) hold,
//! used by `knmatch client`, the cross-check tests and the benches.
//!
//! The receive path sniffs each response's first byte, so one client
//! can mix text lines and binary frames on the same connection (the
//! servers do the same for requests). [`Client::set_binary`] switches
//! what *this* client sends; [`Client::run_pipelined`] keeps a window
//! of requests in flight against the event-loop server.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use knmatch_core::{BatchAnswer, BatchQuery, PlanTally, PlannerMode};

use crate::protocol::{
    decode_response_frame, encode_batch_frame, encode_request_frame, format_query, parse_response,
    ErrorKind, ProtoError, Request, Response, ServerExtras, StatsSnapshot, FRAME_HEADER_LEN,
    FRAME_MAGIC, MAX_FRAME,
};

/// A failure reported by the server for one query (`ERR` line), as
/// opposed to a transport failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServedError {
    /// The error category.
    pub kind: ErrorKind,
    /// The server's message.
    pub message: String,
}

impl std::fmt::Display for ServedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.token(), self.message)
    }
}

impl std::error::Error for ServedError {}

/// A transport- or protocol-level client failure: the conversation
/// itself broke (socket error, unparseable or out-of-order response).
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's bytes did not parse as a response line.
    Proto(ProtoError),
    /// A parseable response of the wrong shape for what was asked.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// The outcome of one [`Client::run_batch`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReply {
    /// One entry per submitted query, in submission order: the answer or
    /// the server-reported error.
    pub answers: Vec<Result<BatchAnswer, ServedError>>,
    /// The `DONE` trailer's success count.
    pub ok: u64,
    /// The `DONE` trailer's failure count.
    pub failed: u64,
}

/// One connection to a `knmatch serve` process.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    binary: bool,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`).
    ///
    /// # Errors
    ///
    /// Socket errors from connect.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            binary: false,
        })
    }

    /// Switches request encoding: `true` sends compact binary frames
    /// instead of text lines. Responses are sniffed either way, so this
    /// can be toggled mid-connection.
    pub fn set_binary(&mut self, on: bool) {
        self.binary = on;
    }

    /// Sets a socket read timeout so a stuck server surfaces as an error
    /// instead of a hang. `None` blocks forever (the default).
    ///
    /// # Errors
    ///
    /// Socket errors from the setsockopt.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    fn send_line(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    /// Sends `req` in the encoding [`set_binary`](Client::set_binary)
    /// selected.
    fn send_request(&mut self, req: &Request) -> Result<(), ClientError> {
        if self.binary {
            let mut frame = Vec::new();
            encode_request_frame(req, &mut frame)?;
            self.writer.write_all(&frame)?;
            return Ok(());
        }
        let line = match req {
            Request::Query(q) => format_query(q),
            Request::Batch(count) => format!("BATCH {count}"),
            Request::Deadline(ms) => format!("DEADLINE {ms}"),
            Request::FailFast(on) => format!("FAILFAST {}", u8::from(*on)),
            Request::Planner(mode) => format!("PLANNER {mode}"),
            Request::Stats => "STATS".into(),
            Request::Ping => "PING".into(),
            Request::Quit => "QUIT".into(),
            Request::Shutdown => "SHUTDOWN".into(),
        };
        self.send_line(&line)
    }

    /// Reads one response, sniffing the first byte for the frame magic
    /// (binary) versus anything else (a text line).
    fn recv(&mut self) -> Result<Response, ClientError> {
        let first = {
            let buf = self.reader.fill_buf()?;
            if buf.is_empty() {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            buf[0]
        };
        if first == FRAME_MAGIC {
            let mut header = [0u8; FRAME_HEADER_LEN];
            self.reader.read_exact(&mut header)?;
            let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]) as usize;
            if len > MAX_FRAME {
                return Err(ClientError::Proto(ProtoError(format!(
                    "response frame of {len} bytes exceeds {MAX_FRAME}"
                ))));
            }
            let mut payload = vec![0u8; len];
            self.reader.read_exact(&mut payload)?;
            return Ok(decode_response_frame(header[1], &payload)?);
        }
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(parse_response(line.trim_end_matches(['\n', '\r']))?)
    }

    /// Liveness probe (`PING` → `OK PONG`).
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send_request(&Request::Ping)?;
        match self.recv()? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Sets the per-query deadline for this connection's later queries
    /// (0 clears it).
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn set_deadline_ms(&mut self, ms: u64) -> Result<(), ClientError> {
        self.send_request(&Request::Deadline(ms))?;
        match self.recv()? {
            Response::Deadline(got) if got == ms => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Toggles fail-fast for this connection's later batches.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn set_fail_fast(&mut self, on: bool) -> Result<(), ClientError> {
        self.send_request(&Request::FailFast(on))?;
        match self.recv()? {
            Response::FailFast(got) if got == on => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Sets the planner route for this connection's later queries
    /// (`PLANNER <auto|ad|vafile|scan|igrid>`). Engines without a planner
    /// accept and ignore it.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn set_planner(&mut self, mode: PlannerMode) -> Result<(), ClientError> {
        self.send_request(&Request::Planner(mode))?;
        match self.recv()? {
            Response::Planner(got) if got == mode => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Runs one query, returning the answer or the server-reported
    /// per-query error.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn query(
        &mut self,
        q: &BatchQuery,
    ) -> Result<Result<BatchAnswer, ServedError>, ClientError> {
        let mut burst = Vec::new();
        self.push_query(q, &mut burst);
        self.writer.write_all(&burst)?;
        match self.recv()? {
            Response::Answer(a) => Ok(Ok(a)),
            Response::Error { kind, message } => Ok(Err(ServedError { kind, message })),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Appends one query request to `burst` in the selected encoding.
    fn push_query(&self, q: &BatchQuery, burst: &mut Vec<u8>) {
        if self.binary {
            crate::protocol::encode_query_frame(q, burst);
        } else {
            burst.extend_from_slice(format_query(q).as_bytes());
            burst.push(b'\n');
        }
    }

    /// Runs `queries` as individually pipelined requests with at most
    /// `depth` in flight, returning the per-query results in submission
    /// order (the servers guarantee response order, see DESIGN.md §13).
    ///
    /// # Errors
    ///
    /// Transport failures or an out-of-shape response stream.
    pub fn run_pipelined(
        &mut self,
        queries: &[BatchQuery],
        depth: usize,
    ) -> Result<Vec<Result<BatchAnswer, ServedError>>, ClientError> {
        let depth = depth.max(1);
        let mut answers = Vec::with_capacity(queries.len());
        let mut sent = 0;
        let mut burst = Vec::new();
        while answers.len() < queries.len() {
            burst.clear();
            while sent < queries.len() && sent - answers.len() < depth {
                self.push_query(&queries[sent], &mut burst);
                sent += 1;
            }
            if !burst.is_empty() {
                self.writer.write_all(&burst)?;
            }
            match self.recv()? {
                Response::Answer(a) => answers.push(Ok(a)),
                Response::Error { kind, message } => {
                    answers.push(Err(ServedError { kind, message }))
                }
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
        Ok(answers)
    }

    /// Submits `queries` as one `BATCH`, pipelining all query lines in a
    /// single write, and collects the per-query responses plus the `DONE`
    /// trailer.
    ///
    /// # Errors
    ///
    /// Transport failures or an out-of-shape response stream.
    pub fn run_batch(&mut self, queries: &[BatchQuery]) -> Result<BatchReply, ClientError> {
        self.send_batch(queries)?;
        self.recv_batch(queries.len())
    }

    /// Writes `queries` as one batch request without waiting for the
    /// responses — pair with [`recv_batch`](Client::recv_batch) to
    /// pipeline whole batches.
    ///
    /// # Errors
    ///
    /// Socket errors from the write.
    pub fn send_batch(&mut self, queries: &[BatchQuery]) -> Result<(), ClientError> {
        if self.binary {
            let mut frame = Vec::new();
            encode_batch_frame(queries, &mut frame);
            self.writer.write_all(&frame)?;
            return Ok(());
        }
        let mut frame = format!("BATCH {}\n", queries.len());
        for q in queries {
            frame.push_str(&format_query(q));
            frame.push('\n');
        }
        self.writer.write_all(frame.as_bytes())?;
        Ok(())
    }

    /// Collects the `count` per-query responses and `DONE` trailer of
    /// one in-flight batch.
    ///
    /// # Errors
    ///
    /// Transport failures or an out-of-shape response stream.
    pub fn recv_batch(&mut self, count: usize) -> Result<BatchReply, ClientError> {
        let mut answers = Vec::with_capacity(count);
        for _ in 0..count {
            match self.recv()? {
                Response::Answer(a) => answers.push(Ok(a)),
                Response::Error { kind, message } => {
                    answers.push(Err(ServedError { kind, message }))
                }
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
        match self.recv()? {
            Response::Done { ok, failed } => Ok(BatchReply {
                answers,
                ok,
                failed,
            }),
            other => Err(ClientError::Unexpected(format!(
                "expected DONE, got {other:?}"
            ))),
        }
    }

    /// Fetches this connection's and the server's counters.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn stats(&mut self) -> Result<(StatsSnapshot, StatsSnapshot), ClientError> {
        self.stats_with_plans()
            .map(|(conn, server, _)| (conn, server))
    }

    /// Like [`stats`](Client::stats) but also returning the engine's plan
    /// tally — `None` when the served engine has no planner (or the server
    /// predates the counters).
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn stats_with_plans(
        &mut self,
    ) -> Result<(StatsSnapshot, StatsSnapshot, Option<PlanTally>), ClientError> {
        self.stats_full()
            .map(|(conn, server, plans, _)| (conn, server, plans))
    }

    /// The full `STATS` response: connection and server counters, the
    /// plan tally, and the reactor extras (`None` from servers that
    /// predate them).
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    #[allow(clippy::type_complexity)]
    pub fn stats_full(
        &mut self,
    ) -> Result<
        (
            StatsSnapshot,
            StatsSnapshot,
            Option<PlanTally>,
            Option<ServerExtras>,
        ),
        ClientError,
    > {
        self.send_request(&Request::Stats)?;
        match self.recv()? {
            Response::Stats {
                conn,
                server,
                plans,
                extras,
            } => Ok((conn, server, plans, extras)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Asks the server to drain and stop, consuming this connection.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn shutdown_server(mut self) -> Result<(), ClientError> {
        self.send_request(&Request::Shutdown)?;
        match self.recv()? {
            Response::ShuttingDown => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Closes the connection politely (`QUIT` → `OK BYE`).
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn quit(mut self) -> Result<(), ClientError> {
        self.send_request(&Request::Quit)?;
        match self.recv()? {
            Response::Bye => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Sends raw bytes down the socket — the fuzz tests' hook for
    /// malformed and truncated frames. Not part of the polite API.
    ///
    /// # Errors
    ///
    /// Socket errors from the write.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)
    }

    /// Reads one raw response line — the fuzz tests' counterpart to
    /// [`send_raw`](Client::send_raw).
    ///
    /// # Errors
    ///
    /// Socket errors, or `UnexpectedEof` when the server closed.
    pub fn recv_response(&mut self) -> Result<Response, ClientError> {
        self.recv()
    }
}
