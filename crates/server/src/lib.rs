//! # knmatch-server
//!
//! A std-only TCP front-end for batch k-n-match queries (DESIGN.md
//! §11, §13): a newline-delimited text [`protocol`] with a compact
//! binary frame alternative, a thread-per-connection [`Server`] and a
//! pipelined [`EventServer`] (unix only; readiness via `poll(2)` or
//! Linux edge-triggered `epoll`) both written
//! against the [`BatchEngine`](knmatch_core::BatchEngine) trait (so the
//! in-memory, sharded and disk backends share one serving path), a
//! blocking [`Client`] with a pipelined mode, and the [`EngineConfig`]
//! flag grammar shared with the CLI.
//!
//! ```no_run
//! use knmatch_core::BatchQuery;
//! use knmatch_server::{Client, EngineConfig, Server, ServerConfig};
//!
//! let engine = EngineConfig::default().open("data.csv").unwrap();
//! let server = Server::bind(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
//! let addr = server.local_addr();
//! let handle = server.handle();
//! std::thread::spawn(move || {
//!     let mut client = Client::connect(addr).unwrap();
//!     let reply = client
//!         .run_batch(&[BatchQuery::KnMatch { query: vec![0.5; 4], k: 2, n: 2 }])
//!         .unwrap();
//!     println!("{:?}", reply.answers[0]);
//!     handle.shutdown();
//! });
//! server.serve().unwrap(); // returns after the drain completes
//! ```

#![warn(missing_docs)]
// `deny` rather than `forbid`: the reactor's `poll(2)`/`writev(2)` and
// Linux `epoll(7)` bindings are the only narrowly-scoped
// `#[allow(unsafe_code)]` modules in the crate.
#![deny(unsafe_code)]

pub mod client;
pub mod config;
pub(crate) mod conn;
pub mod fault;
pub mod planner_engine;
pub mod protocol;
#[cfg(unix)]
pub mod reactor;
pub mod server;

pub use client::{
    run_with_options, BatchReply, Client, ClientError, EpochInfo, RequestOptions, RetryPolicy,
    RetryingClient, ServedError, StatsReport,
};
pub use config::{
    server_config_from_args, AnyEngine, AnyOutcome, Backend, EngineConfig, EngineConfigBuilder,
    DEFAULT_POOL_PAGES,
};
pub use fault::{FaultInjector, FaultTransport, NetFaultConfig};
pub use planner_engine::{PlannedEngine, PLAN_FRACTION_SAMPLE};
pub use protocol::{
    BinRequest, ErrorKind, ProtoError, ReactorKind, Request, Response, ServerExtras, StatsSnapshot,
    VersionCounters, FRAME_HEADER_LEN, FRAME_MAGIC, MAX_BATCH, MAX_FRAME, MAX_LINE,
};
#[cfg(unix)]
pub use reactor::{EventServer, MAX_PIPELINE};
pub use server::{ReactorChoice, Server, ServerConfig, ShutdownHandle};
