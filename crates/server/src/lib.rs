//! # knmatch-server
//!
//! A std-only TCP front-end for batch k-n-match queries (DESIGN.md §11):
//! a newline-delimited text [`protocol`], a thread-per-connection
//! [`Server`] written against the
//! [`BatchEngine`](knmatch_core::BatchEngine) trait (so the in-memory,
//! sharded and disk backends share one serving path), a blocking
//! [`Client`], and the [`EngineConfig`] flag grammar shared with the CLI.
//!
//! ```no_run
//! use knmatch_core::BatchQuery;
//! use knmatch_server::{Client, EngineConfig, Server, ServerConfig};
//!
//! let engine = EngineConfig::default().open("data.csv").unwrap();
//! let server = Server::bind(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
//! let addr = server.local_addr();
//! let handle = server.handle();
//! std::thread::spawn(move || {
//!     let mut client = Client::connect(addr).unwrap();
//!     let reply = client
//!         .run_batch(&[BatchQuery::KnMatch { query: vec![0.5; 4], k: 2, n: 2 }])
//!         .unwrap();
//!     println!("{:?}", reply.answers[0]);
//!     handle.shutdown();
//! });
//! server.serve().unwrap(); // returns after the drain completes
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod config;
pub mod planner_engine;
pub mod protocol;
pub mod server;

pub use client::{BatchReply, Client, ClientError, ServedError};
pub use config::{AnyEngine, AnyOutcome, Backend, EngineConfig, DEFAULT_POOL_PAGES};
pub use planner_engine::{PlannedEngine, PLAN_FRACTION_SAMPLE};
pub use protocol::{ErrorKind, ProtoError, Request, Response, StatsSnapshot, MAX_BATCH, MAX_LINE};
pub use server::{Server, ServerConfig, ShutdownHandle};
