//! Per-connection plumbing for the event-loop server: an incremental
//! frame decoder over a growable read buffer, the ordered response
//! slot queue that preserves request order under pipelining, and the
//! server-wide buffer pool behind the zero-copy write path.
//!
//! [`FrameBuf`] accepts bytes in whatever chunks `read(2)` produces and
//! yields complete frames: text lines, binary frames (sniffed per frame
//! on [`FRAME_MAGIC`]), or oversized markers for input past
//! [`MAX_LINE`] / [`MAX_FRAME`] — oversized input is drained, answered,
//! and never desynchronises the stream, mirroring the blocking server's
//! `LineReader`.
//!
//! [`SlotQueue`] is the pipelining invariant in data-structure form:
//! every request occupies one slot in arrival order; control requests
//! complete their slot immediately, query and batch requests complete it
//! when the executor pool finishes; bytes leave the connection strictly
//! from the head of the queue. A later request can *execute* before an
//! earlier one finishes but can never *respond* first.
//!
//! [`BufferPool`] recycles the two buffer species the reactor burns
//! through: response frames ([`FrameRc`], reference-counted so one
//! encoded frame can be queued on many connections — the drain farewell
//! — and so a partially-written head stays alive while queued) and the
//! plain read buffers behind [`FrameBuf`]. Responses are encoded once
//! into a pooled frame and written straight out of it via `writev`;
//! closed connections hand every buffer back, so steady-state
//! connection churn allocates nothing.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::protocol::{FRAME_HEADER_LEN, FRAME_MAGIC, MAX_FRAME, MAX_LINE};

/// A pooled response buffer. The bytes are written in place right after
/// the frame leaves the pool (while the `Arc` is provably unshared) and
/// are immutable from then on — every later holder only reads.
#[derive(Debug, Default)]
pub(crate) struct FrameBox {
    pub(crate) bytes: Vec<u8>,
}

/// A reference-counted handle to one encoded response frame.
pub(crate) type FrameRc = Arc<FrameBox>;

/// Frames kept in the pool at most; beyond this, recycled frames are
/// dropped to the allocator (bounds pool memory after a burst).
const MAX_POOLED_FRAMES: usize = 16 * 1024;
/// A recycled buffer keeping more capacity than this is dropped rather
/// than pooled, so one huge answer cannot pin its footprint forever.
const MAX_POOLED_CAPACITY: usize = 1 << 20;

/// The server-wide buffer pool (executors and the reactor share it).
///
/// The `*_issued` / `*_returned` ledger counts every hand-out and every
/// final-holder hand-back (including buffers the pool then drops for
/// capacity), so a drained server can assert the no-leak invariant:
/// issued equals returned.
#[derive(Debug, Default)]
pub(crate) struct BufferPool {
    frames: Mutex<Vec<FrameRc>>,
    vecs: Mutex<Vec<Vec<u8>>>,
    frames_issued: AtomicU64,
    frames_returned: AtomicU64,
    vecs_issued: AtomicU64,
    vecs_returned: AtomicU64,
}

impl BufferPool {
    pub(crate) fn new() -> BufferPool {
        BufferPool::default()
    }

    /// Takes a frame (unshared, empty) and fills it with `fill` before
    /// any clone can exist.
    pub(crate) fn frame(&self, fill: impl FnOnce(&mut Vec<u8>)) -> FrameRc {
        self.frames_issued.fetch_add(1, Ordering::Relaxed);
        let mut frame = self
            .frames
            .lock()
            .unwrap()
            .pop()
            .unwrap_or_else(|| Arc::new(FrameBox::default()));
        let slot = Arc::get_mut(&mut frame).expect("pooled frame is unshared");
        fill(&mut slot.bytes);
        frame
    }

    /// Returns a frame to the pool if this was the last reference;
    /// shared frames (another connection still queues them) are left to
    /// their remaining holders, whose final recycle settles the ledger.
    pub(crate) fn recycle_frame(&self, mut frame: FrameRc) {
        let Some(slot) = Arc::get_mut(&mut frame) else {
            return;
        };
        self.frames_returned.fetch_add(1, Ordering::Relaxed);
        if slot.bytes.capacity() > MAX_POOLED_CAPACITY {
            return;
        }
        slot.bytes.clear();
        let mut frames = self.frames.lock().unwrap();
        if frames.len() < MAX_POOLED_FRAMES {
            frames.push(frame);
        }
    }

    /// Takes a plain (empty) byte buffer — the read-buffer species.
    pub(crate) fn vec(&self) -> Vec<u8> {
        self.vecs_issued.fetch_add(1, Ordering::Relaxed);
        self.vecs.lock().unwrap().pop().unwrap_or_default()
    }

    /// Returns a read buffer to the pool.
    pub(crate) fn recycle_vec(&self, mut buf: Vec<u8>) {
        self.vecs_returned.fetch_add(1, Ordering::Relaxed);
        if buf.capacity() > MAX_POOLED_CAPACITY {
            return;
        }
        buf.clear();
        let mut vecs = self.vecs.lock().unwrap();
        if vecs.len() < MAX_POOLED_FRAMES {
            vecs.push(buf);
        }
    }

    /// The leak ledger: `(frames_issued, frames_returned, vecs_issued,
    /// vecs_returned)`. Balanced pairs after a drain mean every buffer
    /// came home.
    pub(crate) fn ledger(&self) -> (u64, u64, u64, u64) {
        (
            self.frames_issued.load(Ordering::Relaxed),
            self.frames_returned.load(Ordering::Relaxed),
            self.vecs_issued.load(Ordering::Relaxed),
            self.vecs_returned.load(Ordering::Relaxed),
        )
    }

    /// Frames currently parked in the pool (tests).
    #[cfg(test)]
    pub(crate) fn pooled_frames(&self) -> usize {
        self.frames.lock().unwrap().len()
    }
}

/// Consumes `written` bytes from the front of a connection's outgoing
/// frame queue after a (possibly partial) `writev`: fully-written head
/// frames return to the pool, and `out_pos` lands mid-frame when the
/// kernel stopped inside one — the resume invariant for the next
/// vectored write (DESIGN.md §14).
pub(crate) fn advance_written(
    out: &mut VecDeque<FrameRc>,
    out_pos: &mut usize,
    mut written: usize,
    pool: &BufferPool,
) {
    while written > 0 {
        let head = out.front().expect("writev wrote beyond the queue");
        let remaining = head.bytes.len() - *out_pos;
        if written >= remaining {
            written -= remaining;
            *out_pos = 0;
            pool.recycle_frame(out.pop_front().expect("head exists"));
        } else {
            *out_pos += written;
            written = 0;
        }
    }
}

/// Which encoding a request arrived in — its response uses the same one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Wire {
    /// Newline-delimited text.
    Text,
    /// Length-prefixed binary frame.
    Binary,
}

/// One complete unit of input recovered from the byte stream.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum InFrame {
    /// A text line within [`MAX_LINE`] (newline stripped).
    Text(String),
    /// A text line past [`MAX_LINE`]; its bytes were drained.
    TextOversized,
    /// A binary frame within [`MAX_FRAME`].
    Binary {
        /// The frame kind byte.
        kind: u8,
        /// The payload (header stripped).
        payload: Vec<u8>,
    },
    /// A binary frame whose header claimed more than [`MAX_FRAME`]; its
    /// payload bytes were drained.
    BinaryOversized,
}

/// What the decoder is in the middle of.
#[derive(Debug)]
enum ScanState {
    /// At a frame boundary.
    Normal,
    /// Draining an oversized binary payload (`remaining` bytes to go).
    SkipBinary(u64),
    /// Draining an oversized text line (until the next newline).
    SkipText,
}

/// Incremental frame decoder over an append-only read buffer.
#[derive(Debug)]
pub(crate) struct FrameBuf {
    buf: Vec<u8>,
    pos: usize,
    state: ScanState,
}

impl FrameBuf {
    #[cfg(test)]
    pub(crate) fn new() -> FrameBuf {
        FrameBuf::with_buf(Vec::new())
    }

    /// Builds the decoder over a recycled read buffer.
    pub(crate) fn with_buf(mut buf: Vec<u8>) -> FrameBuf {
        buf.clear();
        FrameBuf {
            buf,
            pos: 0,
            state: ScanState::Normal,
        }
    }

    /// Hands the read buffer back (connection closing) for pooling.
    pub(crate) fn reclaim(self) -> Vec<u8> {
        self.buf
    }

    /// Appends freshly read bytes, reclaiming consumed prefix space when
    /// it dominates the buffer.
    pub(crate) fn extend(&mut self, bytes: &[u8]) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 4096 && self.pos >= self.buf.len() / 2 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes currently buffered.
    #[cfg(test)]
    pub(crate) fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Yields the next complete frame, or `None` until more bytes arrive.
    pub(crate) fn next_frame(&mut self) -> Option<InFrame> {
        loop {
            match self.state {
                ScanState::SkipBinary(remaining) => {
                    let avail = (self.buf.len() - self.pos) as u64;
                    let take = remaining.min(avail);
                    self.pos += take as usize;
                    if take == remaining {
                        self.state = ScanState::Normal;
                        return Some(InFrame::BinaryOversized);
                    }
                    self.state = ScanState::SkipBinary(remaining - take);
                    return None;
                }
                ScanState::SkipText => {
                    match self.buf[self.pos..].iter().position(|&b| b == b'\n') {
                        Some(i) => {
                            self.pos += i + 1;
                            self.state = ScanState::Normal;
                            return Some(InFrame::TextOversized);
                        }
                        None => {
                            self.pos = self.buf.len();
                            return None;
                        }
                    }
                }
                ScanState::Normal => {
                    let avail = &self.buf[self.pos..];
                    let first = *avail.first()?;
                    if first == FRAME_MAGIC {
                        if avail.len() < FRAME_HEADER_LEN {
                            return None;
                        }
                        let kind = avail[1];
                        let len = u32::from_le_bytes(avail[2..FRAME_HEADER_LEN].try_into().unwrap())
                            as u64;
                        if len > MAX_FRAME as u64 {
                            self.pos += FRAME_HEADER_LEN;
                            self.state = ScanState::SkipBinary(len);
                            continue;
                        }
                        let total = FRAME_HEADER_LEN + len as usize;
                        if avail.len() < total {
                            return None;
                        }
                        let payload = avail[FRAME_HEADER_LEN..total].to_vec();
                        self.pos += total;
                        return Some(InFrame::Binary { kind, payload });
                    }
                    match avail.iter().position(|&b| b == b'\n') {
                        Some(i) => {
                            self.pos += i + 1;
                            if i > MAX_LINE {
                                return Some(InFrame::TextOversized);
                            }
                            let line = String::from_utf8_lossy(&avail[..i]).into_owned();
                            return Some(InFrame::Text(line));
                        }
                        None => {
                            if avail.len() > MAX_LINE {
                                // The line is already over the cap; drop
                                // what's buffered and drain to the newline.
                                self.pos = self.buf.len();
                                self.state = ScanState::SkipText;
                            }
                            return None;
                        }
                    }
                }
            }
        }
    }
}

/// One response slot: `None` while the executor pool still owns the
/// request, `Some(frame)` once its serialized response is ready.
#[derive(Debug)]
struct Slot {
    seq: u64,
    data: Option<FrameRc>,
}

/// The per-connection ordered response queue (see module docs).
#[derive(Debug)]
pub(crate) struct SlotQueue {
    slots: VecDeque<Slot>,
    next_seq: u64,
}

impl SlotQueue {
    pub(crate) fn new() -> SlotQueue {
        SlotQueue {
            slots: VecDeque::new(),
            next_seq: 0,
        }
    }

    /// Opens a slot for a request now in flight; the returned sequence
    /// number routes the executor's completion back here.
    pub(crate) fn push_waiting(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots.push_back(Slot { seq, data: None });
        seq
    }

    /// Opens and immediately completes a slot (control responses).
    pub(crate) fn push_ready(&mut self, frame: FrameRc) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots.push_back(Slot {
            seq,
            data: Some(frame),
        });
    }

    /// Completes the in-flight slot `seq`. When the slot no longer
    /// exists (connection already gone) the frame is handed back so the
    /// caller can recycle it.
    pub(crate) fn complete(&mut self, seq: u64, frame: FrameRc) -> Result<(), FrameRc> {
        match self.slots.iter_mut().find(|s| s.seq == seq) {
            Some(slot) => {
                slot.data = Some(frame);
                Ok(())
            }
            None => Err(frame),
        }
    }

    /// Takes the head slot's frame if — and only if — the head is ready.
    /// Later ready slots stay queued behind an in-flight head; that is
    /// the ordering guarantee.
    pub(crate) fn pop_ready(&mut self) -> Option<FrameRc> {
        if self.slots.front()?.data.is_some() {
            return self.slots.pop_front()?.data;
        }
        None
    }

    /// Drops every slot, recycling the ready frames (connection close).
    pub(crate) fn recycle_into(&mut self, pool: &BufferPool) {
        for slot in self.slots.drain(..) {
            if let Some(frame) = slot.data {
                pool.recycle_frame(frame);
            }
        }
    }

    /// Requests currently occupying slots (in flight or unwritten).
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether any slot still awaits its executor completion (as opposed
    /// to ready-but-unwritten).
    pub(crate) fn has_inflight(&self) -> bool {
        self.slots.iter().any(|s| s.data.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{encode_request_frame, Request};

    fn frame_bytes(req: &Request) -> Vec<u8> {
        let mut out = Vec::new();
        encode_request_frame(req, &mut out).unwrap();
        out
    }

    #[test]
    fn text_lines_split_across_arbitrary_chunks() {
        let mut fb = FrameBuf::new();
        let input = b"PING\nSTATS\r\nQUIT\n";
        for &b in input.iter() {
            fb.extend(&[b]);
        }
        assert_eq!(fb.next_frame(), Some(InFrame::Text("PING".into())));
        assert_eq!(fb.next_frame(), Some(InFrame::Text("STATS\r".into())));
        assert_eq!(fb.next_frame(), Some(InFrame::Text("QUIT".into())));
        assert_eq!(fb.next_frame(), None);
    }

    #[test]
    fn binary_frames_reassemble_from_single_bytes() {
        let bytes = frame_bytes(&Request::Deadline(123));
        let mut fb = FrameBuf::new();
        for (i, &b) in bytes.iter().enumerate() {
            fb.extend(&[b]);
            let got = fb.next_frame();
            if i + 1 < bytes.len() {
                assert_eq!(got, None, "premature frame at byte {i}");
            } else {
                match got {
                    Some(InFrame::Binary { kind, payload }) => {
                        assert_eq!(kind, bytes[1]);
                        assert_eq!(payload, bytes[FRAME_HEADER_LEN..].to_vec());
                    }
                    other => panic!("expected binary frame, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn text_and_binary_interleave_on_one_stream() {
        let bin = frame_bytes(&Request::Ping);
        let mut stream = Vec::new();
        stream.extend_from_slice(b"PING\n");
        stream.extend_from_slice(&bin);
        stream.extend_from_slice(b"STATS\n");
        stream.extend_from_slice(&bin);
        let mut fb = FrameBuf::new();
        fb.extend(&stream);
        assert_eq!(fb.next_frame(), Some(InFrame::Text("PING".into())));
        assert!(matches!(fb.next_frame(), Some(InFrame::Binary { .. })));
        assert_eq!(fb.next_frame(), Some(InFrame::Text("STATS".into())));
        assert!(matches!(fb.next_frame(), Some(InFrame::Binary { .. })));
        assert_eq!(fb.next_frame(), None);
    }

    #[test]
    fn oversized_text_is_drained_not_fatal() {
        let mut fb = FrameBuf::new();
        let long = vec![b'x'; MAX_LINE + 10];
        fb.extend(&long);
        assert_eq!(fb.next_frame(), None);
        fb.extend(b"tail\nPING\n");
        assert_eq!(fb.next_frame(), Some(InFrame::TextOversized));
        assert_eq!(fb.next_frame(), Some(InFrame::Text("PING".into())));
        // Buffer does not retain the oversized line's bytes.
        assert!(fb.buffered() < MAX_LINE);
    }

    #[test]
    fn oversized_binary_is_drained_not_fatal() {
        let mut fb = FrameBuf::new();
        let len = (MAX_FRAME as u32) + 5;
        let mut header = vec![FRAME_MAGIC, 0x01];
        header.extend_from_slice(&len.to_le_bytes());
        fb.extend(&header);
        assert_eq!(fb.next_frame(), None);
        // Drain the claimed payload in two chunks, then resume parsing.
        fb.extend(&vec![0u8; MAX_FRAME / 2]);
        assert_eq!(fb.next_frame(), None);
        fb.extend(&vec![0u8; MAX_FRAME / 2 + 5]);
        assert_eq!(fb.next_frame(), Some(InFrame::BinaryOversized));
        fb.extend(b"PING\n");
        assert_eq!(fb.next_frame(), Some(InFrame::Text("PING".into())));
    }

    fn boxed(bytes: &[u8]) -> FrameRc {
        Arc::new(FrameBox {
            bytes: bytes.to_vec(),
        })
    }

    fn popped(q: &mut SlotQueue) -> Option<Vec<u8>> {
        q.pop_ready().map(|f| f.bytes.clone())
    }

    #[test]
    fn slot_queue_releases_strictly_in_order() {
        let mut q = SlotQueue::new();
        let a = q.push_waiting();
        q.push_ready(boxed(b"ctrl"));
        let b = q.push_waiting();
        // Later request finishes first: nothing can be written yet.
        assert!(q.complete(b, boxed(b"second")).is_ok());
        assert_eq!(popped(&mut q), None);
        assert!(q.complete(a, boxed(b"first")).is_ok());
        assert_eq!(popped(&mut q), Some(b"first".to_vec()));
        assert_eq!(popped(&mut q), Some(b"ctrl".to_vec()));
        assert_eq!(popped(&mut q), Some(b"second".to_vec()));
        assert!(q.is_empty());
        // A vanished slot hands the frame back for recycling.
        assert!(q.complete(99, boxed(b"")).is_err());
    }

    /// The partial-writev resume invariant: a short `writev` return may
    /// stop anywhere — mid-frame, exactly on a frame boundary, or after
    /// spanning several frames — and the queue/offset pair must land
    /// exactly where the kernel stopped.
    #[test]
    fn advance_written_resumes_across_iovec_boundaries() {
        let pool = BufferPool::new();
        let mut out: VecDeque<FrameRc> = [&b"aaaaa"[..], &b"bbb"[..], &b"ccccccc"[..]]
            .iter()
            .map(|b| boxed(b))
            .collect();
        let mut pos = 0;

        // Stop mid-second-frame: 5 (all of a) + 1 (into b).
        advance_written(&mut out, &mut pos, 6, &pool);
        assert_eq!(out.len(), 2);
        assert_eq!(pos, 1);
        assert_eq!(pool.pooled_frames(), 1, "frame a returned to the pool");

        // Exactly finish the remainder of b.
        advance_written(&mut out, &mut pos, 2, &pool);
        assert_eq!(out.len(), 1);
        assert_eq!(pos, 0);

        // Span the final frame to completion.
        advance_written(&mut out, &mut pos, 7, &pool);
        assert!(out.is_empty());
        assert_eq!(pos, 0);
        assert_eq!(pool.pooled_frames(), 3, "every frame recycled");
    }

    /// Pool round trip: a recycled frame comes back cleared with its
    /// capacity kept, and a frame that is still shared (the drain
    /// farewell queued on several connections) is not stolen back.
    #[test]
    fn buffer_pool_recycles_unshared_frames_only() {
        let pool = BufferPool::new();
        let frame = pool.frame(|b| b.extend_from_slice(b"hello"));
        let shared = frame.clone();
        pool.recycle_frame(frame);
        assert_eq!(pool.pooled_frames(), 0, "shared frame stays out");
        assert_eq!(shared.bytes, b"hello");
        pool.recycle_frame(shared);
        assert_eq!(pool.pooled_frames(), 1);
        let reused = pool.frame(|b| b.extend_from_slice(b"x"));
        assert_eq!(reused.bytes, b"x", "recycled frame starts empty");
        assert!(reused.bytes.capacity() >= 5, "capacity survives the pool");
    }
}
