//! The event-driven TCP front-end: nonblocking sockets multiplexed by a
//! pluggable readiness backend (`poll(2)` everywhere, edge-triggered
//! `epoll(7)` on Linux), request pipelining with strict per-connection
//! response order, and a fixed executor pool running queries
//! (DESIGN.md §13–14).
//!
//! ## Shape
//!
//! One reactor thread owns every socket. It accepts, reads, frames
//! (text lines and binary frames interleave freely — see
//! [`FrameBuf`]), and dispatches: control requests (`PING`, `STATS`,
//! `DEADLINE`…) are answered inline; query and `BATCH` requests become
//! jobs on a [`Condvar`] queue drained by `executors` worker threads,
//! each calling [`BatchEngine::run_with`] and serializing the responses
//! off the reactor thread. Completions return through a mutex-guarded
//! vector plus a loopback *wake* socket (std has no pipes, but a
//! loopback pair is the same one-byte doorbell), so a sleeping wait
//! learns of finished work immediately.
//!
//! ## Backends
//!
//! [`Poller`] hides the readiness mechanism behind one event-shaped
//! API. The `poll(2)` backend keeps its fd array **incrementally** —
//! connections register once and only interest changes touch the set —
//! and is the portable correctness oracle. The Linux `epoll` backend
//! registers each fd once, edge-triggered (`EPOLLIN | EPOLLOUT |
//! EPOLLRDHUP | EPOLLET`), so interest never changes after registration
//! and each iteration costs O(ready), not O(connections). Every event
//! carries a slab token (`index << 32 | generation`); a recycled slot
//! fails the generation check, so stale events never touch a new
//! connection. Answers are bit-identical across backends by
//! construction: the same encode path fills the same frames, and the
//! [`SlotQueue`] releases them in the same order.
//!
//! ## Write path
//!
//! Responses are encoded **once**, by the executor (or inline for
//! control responses), into pooled reference-counted frames
//! ([`FrameRc`]). The reactor never copies response bytes again: ready
//! frames move from the [`SlotQueue`] into the connection's outgoing
//! frame queue and are flushed with `writev`, up to [`sys::MAX_IOV`]
//! frames per call, resuming mid-frame after partial writes
//! (`advance_written`). Closed connections hand their frames and read
//! buffers back to the server-wide [`BufferPool`], so steady-state
//! connection churn allocates nothing on this path.
//!
//! ## Ordering guarantee
//!
//! Every request occupies one [`SlotQueue`] slot in arrival order, and
//! bytes leave strictly from the head — a pipelined client gets its
//! responses in exactly the order it sent requests, even when the
//! executor pool finishes them out of order. `DEADLINE`/`FAILFAST`/
//! `PLANNER` are applied at parse time, so each pipelined batch runs
//! under the options that preceded it in the stream.
//!
//! ## Drain
//!
//! [`ShutdownHandle::shutdown`] flips the flag and pokes the listener
//! with a loopback connect; the listener becomes readable and the wait
//! returns immediately — no timeout rounds. The reactor then stops
//! accepting and parsing, appends one `ERR shutdown` slot behind each
//! connection's in-flight requests (one shared farewell frame per
//! encoding — the refcounted pool's cheapest trick), flushes, and
//! closes. Drain latency on idle connections is a handful of wakeups,
//! not `poll_interval` multiples (the graceful-drain test budgets
//! 10ms). While draining, every live connection is serviced each
//! iteration — O(ready) would skip write-blocked peers whose
//! flush-grace expiry must still be evaluated.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use knmatch_core::{BatchEngine, BatchOptions, BatchOutcome, BatchQuery, KnMatchError};

use crate::conn::{advance_written, BufferPool, FrameBuf, FrameRc, InFrame, SlotQueue, Wire};
use crate::fault::{FaultInjector, FaultTransport, WriteFault};
use crate::protocol::{
    decode_request_frame, encode_response_frame, error_response, format_response,
    immutable_engine_error, parse_query, parse_request, with_retry_after, BinRequest, ErrorKind,
    ReactorKind, Request, Response, ServerExtras, StatsSnapshot, MAX_BATCH, MAX_FRAME, MAX_LINE,
    REQ_BATCH, REQ_QUERY,
};
use crate::server::{ReactorChoice, ServerConfig, Shared, ShutdownHandle};

/// Most requests one connection may have in flight (slots occupied,
/// responses unwritten) before the reactor stops reading from it —
/// pipelining backpressure, not an error.
pub const MAX_PIPELINE: usize = 1024;

/// After this much drain time, a connection whose responses are all
/// ready but unflushable (peer stopped reading) is closed anyway.
/// Connections with queries still executing are always waited for.
const DRAIN_FLUSH_GRACE: Duration = Duration::from_secs(2);

/// The wait used when nothing has a deadline: one wakeup an hour is
/// close enough to "sleep forever" while keeping the millisecond
/// conversion comfortably in `poll`'s `i32` range. Every state change
/// that matters arrives as an event — completions ring the waker,
/// shutdown pokes the listener, peers make sockets readable — so an
/// idle reactor genuinely sleeps instead of ticking `poll_interval`.
const WAIT_FOREVER: Duration = Duration::from_secs(3600);

/// The thinnest possible `poll(2)` / `writev(2)` binding. The workspace
/// links no external crates, but std already links the platform C
/// library on every unix target, so declaring the symbols we need is
/// fine — this module and [`epoll`] are the only `unsafe` in the crate,
/// each kept to single syscalls behind safe slice-in/slice-out wrappers.
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    /// Readable (or: a connection is ready to accept).
    pub const POLLIN: i16 = 0x001;
    /// Writable without blocking.
    pub const POLLOUT: i16 = 0x004;
    /// Error condition (always reported; never requested).
    pub const POLLERR: i16 = 0x008;
    /// Peer hung up (always reported; never requested).
    pub const POLLHUP: i16 = 0x010;
    /// Invalid fd (always reported; never requested).
    pub const POLLNVAL: i16 = 0x020;

    /// Most frames one `writev` call gathers. Comfortably under every
    /// platform's `IOV_MAX` (≥ 1024), and enough that a deep pipeline
    /// still flushes in a handful of syscalls.
    pub const MAX_IOV: usize = 64;

    /// `struct pollfd` — identical layout on every unix libc.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        /// The fd to watch.
        pub fd: RawFd,
        /// Requested events.
        pub events: i16,
        /// Kernel-reported events.
        pub revents: i16,
    }

    /// `struct iovec` — `writev`'s gather descriptor. The C field is a
    /// `void *`, but a const pointer has the same layout and `writev`
    /// only reads.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    struct IoVec {
        base: *const u8,
        len: usize,
    }

    /// `nfds_t`: `unsigned long` on linux libcs, `unsigned int` on the
    /// BSD family.
    #[cfg(any(target_os = "macos", target_os = "freebsd", target_os = "netbsd"))]
    type NfdsT = u32;
    #[cfg(not(any(target_os = "macos", target_os = "freebsd", target_os = "netbsd")))]
    type NfdsT = std::ffi::c_ulong;

    extern "C" {
        #[link_name = "poll"]
        fn c_poll(fds: *mut PollFd, nfds: NfdsT, timeout: i32) -> i32;
        #[link_name = "writev"]
        fn c_writev(fd: RawFd, iov: *const IoVec, iovcnt: i32) -> isize;
    }

    /// Waits until an fd in `fds` has events or `timeout` passes.
    /// Returns the number of fds with `revents` set (0 on timeout or
    /// `EINTR`, which callers treat as an idle tick).
    ///
    /// # Errors
    ///
    /// The syscall's errno, except `EINTR`.
    pub fn poll(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        // SAFETY: `fds` is a valid exclusively-borrowed slice of
        // `#[repr(C)]` structs matching `struct pollfd`; the kernel
        // writes only within `fds.len()` entries' `revents` fields.
        let rc = unsafe { c_poll(fds.as_mut_ptr(), fds.len() as NfdsT, ms) };
        if rc < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(rc as usize)
    }

    /// Gathers up to [`MAX_IOV`] buffers into one `writev(2)` call.
    /// Returns the bytes written, which may stop anywhere — including
    /// mid-buffer; the caller resumes from that exact offset.
    ///
    /// # Errors
    ///
    /// The syscall's errno (`WouldBlock` and `Interrupted` included —
    /// the caller's flush loop handles both).
    pub fn writev(fd: RawFd, bufs: &[&[u8]]) -> io::Result<usize> {
        let mut iovs = [IoVec {
            base: std::ptr::null(),
            len: 0,
        }; MAX_IOV];
        let n = bufs.len().min(MAX_IOV);
        for (iov, buf) in iovs.iter_mut().zip(&bufs[..n]) {
            iov.base = buf.as_ptr();
            iov.len = buf.len();
        }
        // SAFETY: every iovec points into one of the caller's live
        // `bufs` slices, which outlive the call; the kernel only reads
        // from them.
        let rc = unsafe { c_writev(fd, iovs.as_ptr(), n as i32) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(rc as usize)
    }
}

/// The equally thin `epoll(7)` binding, Linux only (`poll` remains the
/// portable oracle). Registration is edge-triggered and permanent:
/// `epoll_ctl` runs once per fd lifetime, never per iteration.
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod epoll {
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    /// Readable.
    pub const EPOLLIN: u32 = 0x001;
    /// Writable.
    pub const EPOLLOUT: u32 = 0x004;
    /// Error condition (always reported).
    pub const EPOLLERR: u32 = 0x008;
    /// Peer hung up (always reported).
    pub const EPOLLHUP: u32 = 0x010;
    /// Peer shut down its write half — with edge triggering this must
    /// be requested explicitly or a half-close can go unnoticed.
    pub const EPOLLRDHUP: u32 = 0x2000;
    /// Edge-triggered: one event per readiness *transition*.
    pub const EPOLLET: u32 = 1 << 31;

    /// `epoll_ctl` ops.
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;

    const EPOLL_CLOEXEC: i32 = 0x80000;

    /// `struct epoll_event`. The kernel ABI packs it on x86-64 only;
    /// fields are copied out, never borrowed, so the unaligned layout
    /// stays an implementation detail.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Debug, Clone, Copy)]
    pub struct EpollEvent {
        /// Readiness bits.
        pub events: u32,
        /// The caller's token, returned verbatim.
        pub data: u64,
    }

    extern "C" {
        #[link_name = "epoll_create1"]
        fn c_epoll_create1(flags: i32) -> i32;
        #[link_name = "epoll_ctl"]
        fn c_epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, event: *mut EpollEvent) -> i32;
        #[link_name = "epoll_wait"]
        fn c_epoll_wait(epfd: RawFd, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        #[link_name = "close"]
        fn c_close(fd: i32) -> i32;
    }

    /// An owned epoll instance, closed on drop.
    #[derive(Debug)]
    pub struct EpollFd(RawFd);

    impl EpollFd {
        /// Creates the instance (`EPOLL_CLOEXEC`).
        ///
        /// # Errors
        ///
        /// The syscall's errno — `Auto` backend selection falls back to
        /// `poll` on any failure.
        pub fn new() -> io::Result<EpollFd> {
            // SAFETY: plain syscall, no pointers.
            let fd = unsafe { c_epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(EpollFd(fd))
        }

        /// Adds or deletes `fd` from the interest set.
        ///
        /// # Errors
        ///
        /// The syscall's errno.
        pub fn ctl(&self, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
            let mut ev = EpollEvent { events, data };
            // SAFETY: `ev` is a live `#[repr(C)]` value for the call's
            // duration; `DEL` ignores the pointer.
            let rc = unsafe { c_epoll_ctl(self.0, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Waits for events, filling `buf` from the front. Returns the
        /// count (0 on timeout or `EINTR`).
        ///
        /// # Errors
        ///
        /// The syscall's errno, except `EINTR`.
        pub fn wait(&self, buf: &mut [EpollEvent], timeout: Duration) -> io::Result<usize> {
            let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            // SAFETY: `buf` is a valid exclusively-borrowed slice; the
            // kernel writes at most `buf.len()` entries.
            let rc = unsafe { c_epoll_wait(self.0, buf.as_mut_ptr(), buf.len() as i32, ms) };
            if rc < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(e);
            }
            Ok(rc as usize)
        }
    }

    impl Drop for EpollFd {
        fn drop(&mut self) {
            // SAFETY: the fd is owned by this value and still open.
            unsafe { c_close(self.0) };
        }
    }
}

/// Token of the executor-doorbell socket.
const TOKEN_WAKER: u64 = u64::MAX;
/// Token of the listening socket.
const TOKEN_LISTENER: u64 = u64::MAX - 1;

/// Slab token of a connection: slot index in the high 32 bits, the
/// generation's low half in the low 32. A recycled slot carries a new
/// generation, so events from the previous occupant fail the check and
/// never touch the new connection.
fn conn_token(idx: usize, gen: u64) -> u64 {
    ((idx as u64) << 32) | (gen & 0xFFFF_FFFF)
}

/// One readiness event, copied out of the backend before dispatch so
/// slab mutation while handling events can't alias the backend's set.
struct Event {
    token: u64,
    readable: bool,
}

/// The incremental `poll(2)` fd set: registration and interest updates
/// touch single entries; nothing is rebuilt per iteration.
struct PollSet {
    fds: Vec<sys::PollFd>,
    tokens: Vec<u64>,
    index: HashMap<u64, usize>,
}

impl PollSet {
    fn new() -> PollSet {
        PollSet {
            fds: Vec::new(),
            tokens: Vec::new(),
            index: HashMap::new(),
        }
    }

    fn add(&mut self, fd: RawFd, token: u64, events: i16) {
        self.index.insert(token, self.fds.len());
        self.fds.push(sys::PollFd {
            fd,
            events,
            revents: 0,
        });
        self.tokens.push(token);
    }

    fn set(&mut self, token: u64, events: i16) {
        if let Some(&pos) = self.index.get(&token) {
            self.fds[pos].events = events;
        }
    }

    fn remove(&mut self, token: u64) {
        let Some(pos) = self.index.remove(&token) else {
            return;
        };
        self.fds.swap_remove(pos);
        self.tokens.swap_remove(pos);
        if pos < self.tokens.len() {
            self.index.insert(self.tokens[pos], pos);
        }
    }
}

fn poll_events(read: bool, write: bool) -> i16 {
    let mut events = 0i16;
    if read {
        events |= sys::POLLIN;
    }
    if write {
        events |= sys::POLLOUT;
    }
    events
}

/// The epoll backend: one instance plus a reusable event buffer.
#[cfg(target_os = "linux")]
struct EpollSet {
    ep: epoll::EpollFd,
    buf: Vec<epoll::EpollEvent>,
}

/// The pluggable readiness backend. An enum, not a trait object: both
/// variants are known at compile time and the per-event cost stays a
/// jump, not a vtable load.
enum Poller {
    Poll(PollSet),
    #[cfg(target_os = "linux")]
    Epoll(EpollSet),
}

impl Poller {
    /// Resolves a [`ReactorChoice`] to a live backend. `Auto` prefers
    /// epoll and falls back to poll if the instance can't be created
    /// (or the platform isn't Linux).
    ///
    /// # Errors
    ///
    /// `Epoll` requested off-Linux (`Unsupported`) or `epoll_create1`
    /// failing.
    fn new(choice: ReactorChoice) -> io::Result<Poller> {
        match choice {
            ReactorChoice::Poll => Ok(Poller::Poll(PollSet::new())),
            ReactorChoice::Epoll => Poller::epoll(),
            ReactorChoice::Auto => {
                Ok(Poller::epoll().unwrap_or_else(|_| Poller::Poll(PollSet::new())))
            }
        }
    }

    #[cfg(target_os = "linux")]
    fn epoll() -> io::Result<Poller> {
        Ok(Poller::Epoll(EpollSet {
            ep: epoll::EpollFd::new()?,
            buf: vec![epoll::EpollEvent { events: 0, data: 0 }; 1024],
        }))
    }

    #[cfg(not(target_os = "linux"))]
    fn epoll() -> io::Result<Poller> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll requires linux; use the poll or auto reactor",
        ))
    }

    fn kind(&self) -> ReactorKind {
        match self {
            Poller::Poll(_) => ReactorKind::Poll,
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => ReactorKind::Epoll,
        }
    }

    /// Registers a read-only fd (listener, doorbell).
    ///
    /// # Errors
    ///
    /// `epoll_ctl` failing (the poll backend cannot fail).
    fn add_input(&mut self, fd: RawFd, token: u64) -> io::Result<()> {
        match self {
            Poller::Poll(p) => {
                p.add(fd, token, sys::POLLIN);
                Ok(())
            }
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.ep.ctl(
                epoll::EPOLL_CTL_ADD,
                fd,
                epoll::EPOLLIN | epoll::EPOLLET,
                token,
            ),
        }
    }

    /// Registers a connection. Poll starts read-only (write interest
    /// follows the flush state via [`Poller::set_interest`]); epoll
    /// registers the full edge-triggered set once and never again.
    ///
    /// # Errors
    ///
    /// `epoll_ctl` failing.
    fn add_conn(&mut self, fd: RawFd, token: u64) -> io::Result<()> {
        match self {
            Poller::Poll(p) => {
                p.add(fd, token, poll_events(true, false));
                Ok(())
            }
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.ep.ctl(
                epoll::EPOLL_CTL_ADD,
                fd,
                epoll::EPOLLIN | epoll::EPOLLOUT | epoll::EPOLLRDHUP | epoll::EPOLLET,
                token,
            ),
        }
    }

    /// Updates level-triggered interest (poll). A no-op under epoll:
    /// edge-triggered registration already covers both directions, and
    /// the reactor's state machine ignores events it didn't ask for.
    fn set_interest(&mut self, token: u64, read: bool, write: bool) {
        match self {
            Poller::Poll(p) => p.set(token, poll_events(read, write)),
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => {}
        }
    }

    /// Deregisters a closing fd.
    fn remove(&mut self, fd: RawFd, token: u64) {
        match self {
            Poller::Poll(p) => {
                let _ = fd;
                p.remove(token);
            }
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => {
                // Best-effort: closing the fd removes it anyway.
                let _ = e.ep.ctl(epoll::EPOLL_CTL_DEL, fd, 0, 0);
            }
        }
    }

    /// Waits for readiness and copies the events out. Error/hangup
    /// conditions fold into `readable` — the read path observes the
    /// EOF or error and closes the connection.
    ///
    /// # Errors
    ///
    /// Fatal wait errors (`EINTR` is an empty round, not an error).
    fn wait(&mut self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        out.clear();
        match self {
            Poller::Poll(p) => {
                // Stale revents would double-report after an EINTR round.
                for pf in p.fds.iter_mut() {
                    pf.revents = 0;
                }
                sys::poll(&mut p.fds, timeout)?;
                for (pf, &token) in p.fds.iter().zip(&p.tokens) {
                    if pf.revents == 0 {
                        continue;
                    }
                    let readable = pf.revents
                        & (sys::POLLIN | sys::POLLERR | sys::POLLHUP | sys::POLLNVAL)
                        != 0;
                    out.push(Event { token, readable });
                }
            }
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => {
                let n = e.ep.wait(&mut e.buf, timeout)?;
                for ev in &e.buf[..n] {
                    let (events, token) = (ev.events, ev.data);
                    let readable = events
                        & (epoll::EPOLLIN | epoll::EPOLLERR | epoll::EPOLLHUP | epoll::EPOLLRDHUP)
                        != 0;
                    out.push(Event { token, readable });
                }
            }
        }
        Ok(())
    }
}

/// One executor work unit: a request's query slots, snapshotted options,
/// and the routing needed to land the serialized responses back in the
/// right connection's slot.
struct Job {
    conn: usize,
    gen: u64,
    seq: u64,
    wire: Wire,
    trailer: bool,
    opts: BatchOptions,
    /// Parseable (`Ok`) slots — this job's weight against the global
    /// in-flight budget, released when its completion lands.
    cost: u64,
    slots: Vec<Result<BatchQuery, Response>>,
    /// Run the mutable engine's maintenance (run compaction) on the
    /// executor instead of any queries — `slots` is empty and the
    /// completion writes no bytes. Queued against the writing
    /// connection, so the merge backpressures the writer while readers
    /// keep executing on the other workers.
    maintenance: bool,
}

/// An executed job: the pooled frame holding its serialized responses
/// plus the counter deltas the reactor applies on receipt.
struct Completion {
    conn: usize,
    gen: u64,
    seq: u64,
    bytes: FrameRc,
    queries: u64,
    errors: u64,
    timeouts: u64,
    /// The job's in-flight budget weight to release.
    cost: u64,
    /// Queries answered `deadline exceeded` without running because the
    /// propagated absolute deadline had already passed at pickup.
    cancels: u64,
}

/// The executor pool's job queue (`Mutex<VecDeque>` + `Condvar`; closed
/// flag ends the workers).
struct JobQueue {
    state: Mutex<(VecDeque<Job>, bool)>,
    cv: Condvar,
}

impl JobQueue {
    fn new() -> JobQueue {
        JobQueue {
            state: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        let mut s = self.state.lock().unwrap();
        s.0.push_back(job);
        drop(s);
        self.cv.notify_one();
    }

    /// Blocks for the next job; `None` once closed and empty.
    fn pop(&self) -> Option<Job> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(job) = s.0.pop_front() {
                return Some(job);
            }
            if s.1 {
                return None;
            }
            s = self.cv.wait(s).unwrap();
        }
    }

    fn close(&self) {
        self.state.lock().unwrap().1 = true;
        self.cv.notify_all();
    }
}

/// The executors' doorbell into a sleeping wait: one byte down a
/// loopback socket pair, deduplicated so a burst of completions costs
/// one syscall.
struct Waker {
    tx: TcpStream,
    pending: AtomicBool,
}

impl Waker {
    fn wake(&self) {
        if !self.pending.swap(true, Ordering::SeqCst) {
            let _ = (&self.tx).write(&[1u8]);
        }
    }
}

/// A connected loopback pair standing in for `pipe(2)`: `rx` is the
/// nonblocking read end the reactor polls, `tx` the write end executors
/// signal. The accept is checked against the connecting socket's local
/// address so a stray connection cannot hijack the doorbell.
fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0))?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let want = tx.local_addr()?;
    let rx = loop {
        let (rx, peer) = listener.accept()?;
        if peer == want {
            break rx;
        }
    };
    rx.set_nonblocking(true)?;
    tx.set_nodelay(true).ok();
    Ok((rx, tx))
}

/// Serializes `resp` in the request's encoding.
fn emit(resp: &Response, wire: Wire, out: &mut Vec<u8>) {
    match wire {
        Wire::Text => {
            out.extend_from_slice(format_response(resp).as_bytes());
            out.push(b'\n');
        }
        Wire::Binary => encode_response_frame(resp, out),
    }
}

/// Executor thread body: run jobs until the queue closes.
fn executor_loop<E: BatchEngine + Sync>(
    engine: &E,
    queue: &JobQueue,
    completions: &Mutex<Vec<Completion>>,
    waker: &Waker,
    pool: &BufferPool,
) {
    while let Some(job) = queue.pop() {
        let comp = run_job(engine, job, pool);
        completions.lock().unwrap().push(comp);
        waker.wake();
    }
}

/// Runs one job's parseable slots as a single engine batch and
/// serializes one response per slot (slot order) into one pooled frame,
/// plus the `DONE` trailer for batches — the executor-side mirror of
/// the blocking server's `run_and_respond`. This is the only encode of
/// these bytes; the reactor writes them straight from the frame.
fn run_job<E: BatchEngine + Sync>(engine: &E, job: Job, pool: &BufferPool) -> Completion {
    if job.maintenance {
        // Off-reactor run compaction for mutable engines. Failures are
        // deliberately swallowed: maintenance is best-effort and will be
        // re-requested by the next write that finds it due.
        if let Some(w) = engine.writer() {
            let _ = w.maintain();
        }
    }
    // A batch whose propagated absolute deadline passed while it queued
    // is doomed: every query would fail the engine's deadline precheck
    // anyway, so skip the engine and synthesize the same responses.
    // (Queries the engine would have rejected for *validation* reasons
    // report `deadline exceeded` instead on this path — an acceptable
    // divergence, since which error an expired batch sees is inherently
    // timing-dependent.)
    let expired = job.opts.deadline_at.is_some_and(|at| Instant::now() >= at);
    let queries: Vec<BatchQuery> = if expired {
        Vec::new()
    } else {
        job.slots
            .iter()
            .filter_map(|s| s.as_ref().ok())
            .cloned()
            .collect()
    };
    let mut outcomes = engine.run_with(&queries, &job.opts).into_iter();
    let (mut ok, mut failed, mut timeouts, mut cancels) = (0u64, 0u64, 0u64, 0u64);
    let bytes = pool.frame(|out| {
        for slot in &job.slots {
            let response = match slot {
                Err(pre) => pre.clone(),
                Ok(_) if expired => {
                    cancels += 1;
                    error_response(&KnMatchError::DeadlineExceeded)
                }
                Ok(_) => match outcomes.next().expect("one outcome per parsed query") {
                    Ok(outcome) => Response::Answer(outcome.into_answer()),
                    Err(e) => error_response(&e),
                },
            };
            match &response {
                Response::Answer(_) => ok += 1,
                Response::Error { kind, .. } => {
                    failed += 1;
                    if *kind == ErrorKind::Timeout {
                        timeouts += 1;
                    }
                }
                _ => failed += 1,
            }
            emit(&response, job.wire, out);
        }
        if job.trailer {
            emit(&Response::Done { ok, failed }, job.wire, out);
        }
    });
    Completion {
        conn: job.conn,
        gen: job.gen,
        seq: job.seq,
        bytes,
        queries: job.slots.len() as u64,
        errors: failed,
        timeouts,
        cost: job.cost,
        cancels,
    }
}

/// A text `BATCH <count>` whose query lines are still streaming in.
struct TextBatch {
    remaining: usize,
    slots: Vec<Result<BatchQuery, Response>>,
    /// The batch was admitted while the server was over its in-flight
    /// budget: every arriving line is answered `ERR overloaded` without
    /// being parsed (the cheap-reject path), keeping the stream in sync.
    shed: bool,
}

/// Reactor-side state of one connection.
struct ConnState {
    stream: TcpStream,
    frames: FrameBuf,
    queue: SlotQueue,
    /// Ready frames staged for `writev`, head partially written up to
    /// `out_pos`. Frames move here from `queue` without copying.
    out: VecDeque<FrameRc>,
    out_pos: usize,
    opts: BatchOptions,
    stats: StatsSnapshot,
    batch: Option<TextBatch>,
    last_wire: Wire,
    closing: bool,
    /// Reading stopped on pipeline backpressure; bytes may be buffered
    /// (socket or decoder) with no future edge to announce them. The
    /// service loop resumes the read as soon as the queue has room.
    read_paused: bool,
    /// A readable event arrived for this service round.
    ev_read: bool,
    /// Already on this iteration's service list.
    touched: bool,
    /// Already on the fault-retry list: a synthetic fault consumed a
    /// readiness edge that the kernel will never re-report.
    fault_pending: bool,
    /// Last interest told to the poll backend (read, write).
    interest: (bool, bool),
    /// Last read or write progress on the socket — the idle-eviction
    /// clock.
    last_activity: Instant,
    gen: u64,
}

/// An event-loop server over one batch engine — the reactor sibling of
/// [`Server`](crate::Server), speaking the same protocol (plus binary
/// frames) with the same shutdown and counter semantics, multiplexed by
/// `poll(2)` or Linux `epoll` per [`ServerConfig::reactor`].
pub struct EventServer<E> {
    engine: E,
    listener: TcpListener,
    cfg: ServerConfig,
    shared: Arc<Shared>,
}

impl<E: BatchEngine + Sync> EventServer<E> {
    /// Binds `addr` and wraps `engine`; serving starts with
    /// [`serve`](EventServer::serve).
    ///
    /// # Errors
    ///
    /// Socket errors from bind/local-addr resolution.
    pub fn bind<A: ToSocketAddrs>(
        engine: E,
        addr: A,
        cfg: ServerConfig,
    ) -> io::Result<EventServer<E>> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(EventServer {
            engine,
            listener,
            cfg,
            shared: Arc::new(Shared::new(addr)),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle that stops this server from another thread.
    pub fn handle(&self) -> ShutdownHandle {
        ShutdownHandle(self.shared.clone())
    }

    /// Server-lifetime counters so far.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.totals.snapshot()
    }

    /// The event-loop counters behind `STATS`'s reactor/robustness
    /// extras (peak connections, shed/evicted/cancelled totals, …).
    pub fn extras(&self) -> ServerExtras {
        self.shared.totals.extras()
    }

    /// The served engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Runs the reactor until a `SHUTDOWN` request or a
    /// [`ShutdownHandle`] stops it, then drains (see module docs) and
    /// returns.
    ///
    /// # Errors
    ///
    /// Backend creation (`--reactor epoll` off-Linux is
    /// [`io::ErrorKind::Unsupported`]) and fatal listener/wait errors;
    /// per-connection failures close that connection.
    pub fn serve(&self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let poller = Poller::new(self.cfg.reactor)?;
        self.shared
            .totals
            .reactor_backend
            .store(poller.kind().code() as u64, Ordering::Relaxed);
        let (wake_rx, wake_tx) = wake_pair()?;
        let waker = Waker {
            tx: wake_tx,
            pending: AtomicBool::new(false),
        };
        let queue = JobQueue::new();
        let completions: Mutex<Vec<Completion>> = Mutex::new(Vec::new());
        let pool = BufferPool::new();
        let executors = if self.cfg.executors == 0 {
            thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.cfg.executors
        };
        let fault = self.cfg.fault.map(FaultInjector::new);
        let max_inflight = if self.cfg.max_inflight == 0 {
            self.cfg.max_connections.saturating_mul(MAX_PIPELINE)
        } else {
            self.cfg.max_inflight
        };
        let result = thread::scope(|scope| {
            for _ in 0..executors {
                scope.spawn(|| executor_loop(&self.engine, &queue, &completions, &waker, &pool));
            }
            let result = Reactor {
                engine: &self.engine,
                cfg: &self.cfg,
                shared: &self.shared,
                listener: &self.listener,
                queue: &queue,
                pool: &pool,
                poller,
                conns: Vec::new(),
                free: Vec::new(),
                live: 0,
                next_gen: 0,
                draining: false,
                drain_since: None,
                fault: fault.as_ref(),
                fault_retry: Vec::new(),
                inflight: 0,
                max_inflight,
            }
            .run(&wake_rx, &waker, &completions);
            queue.close();
            result
        });
        // Executors are joined: recycle completions nobody collected
        // (jobs of connections that died mid-drain outlive the reactor
        // loop), then hold the pool to its no-leak invariant — every
        // frame and read buffer ever issued came back. A clean drain
        // that fails this check has lost buffers somewhere.
        for comp in std::mem::take(&mut *completions.lock().unwrap()) {
            pool.recycle_frame(comp.bytes);
        }
        if result.is_ok() {
            let (fi, fr, vi, vr) = pool.ledger();
            assert!(
                fi == fr && vi == vr,
                "buffer pool leak after drain: {fi} frames issued / {fr} returned, \
                 {vi} read buffers issued / {vr} returned"
            );
        }
        result
    }
}

struct Reactor<'a, E> {
    engine: &'a E,
    cfg: &'a ServerConfig,
    shared: &'a Shared,
    listener: &'a TcpListener,
    queue: &'a JobQueue,
    pool: &'a BufferPool,
    poller: Poller,
    conns: Vec<Option<ConnState>>,
    free: Vec<usize>,
    live: usize,
    next_gen: u64,
    draining: bool,
    drain_since: Option<Instant>,
    /// Seeded chaos hooks (`ServerConfig::fault`); `None` costs one
    /// branch per read/flush.
    fault: Option<&'a FaultInjector>,
    /// Connections owed a service round because a synthetic fault
    /// consumed a readiness edge the kernel will never re-report
    /// (deduplicated via [`ConnState::fault_pending`]). While non-empty
    /// the wait timeout is zero.
    fault_retry: Vec<usize>,
    /// Parseable queries submitted to the executors and not yet
    /// completed, across all connections.
    inflight: usize,
    /// Admission ceiling on `inflight`; queries past it are shed with
    /// `ERR overloaded` before their payload is parsed.
    max_inflight: usize,
}

impl<'a, E: BatchEngine + Sync> Reactor<'a, E> {
    fn run(
        mut self,
        wake_rx: &TcpStream,
        waker: &Waker,
        completions: &Mutex<Vec<Completion>>,
    ) -> io::Result<()> {
        self.poller.add_input(wake_rx.as_raw_fd(), TOKEN_WAKER)?;
        self.poller
            .add_input(self.listener.as_raw_fd(), TOKEN_LISTENER)?;
        let mut events: Vec<Event> = Vec::new();
        let mut touched: Vec<usize> = Vec::new();
        let mut scratch = vec![0u8; 64 * 1024];
        loop {
            if !self.draining && self.shared.is_shutdown() {
                self.begin_drain();
            }
            if self.draining && self.live == 0 {
                return Ok(());
            }

            let timeout = self.wait_timeout();
            self.poller.wait(&mut events, timeout)?;
            self.shared
                .totals
                .poll_iterations
                .fetch_add(1, Ordering::Relaxed);
            self.shared
                .totals
                .events_dispatched
                .fetch_add(events.len() as u64, Ordering::Relaxed);

            // Route events to their slots; work happens after the whole
            // set is translated (dispatch may close or open slots).
            touched.clear();
            // Fault retries first: a synthetic stall consumed a readiness
            // edge the kernel will never re-report, so these connections
            // are serviced unconditionally (`ev_read` forced — a retried
            // read that finds nothing is a no-op).
            for idx in std::mem::take(&mut self.fault_retry) {
                let Some(c) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                    continue;
                };
                c.fault_pending = false;
                c.ev_read = true;
                if !c.touched {
                    c.touched = true;
                    touched.push(idx);
                }
            }
            let mut saw_wake = false;
            let mut saw_accept = false;
            for ev in &events {
                match ev.token {
                    TOKEN_WAKER => saw_wake = true,
                    TOKEN_LISTENER => saw_accept = true,
                    token => {
                        let idx = (token >> 32) as usize;
                        let Some(c) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                            continue;
                        };
                        if c.gen & 0xFFFF_FFFF != token & 0xFFFF_FFFF {
                            // A previous occupant's stale event.
                            continue;
                        }
                        if ev.readable {
                            c.ev_read = true;
                        }
                        if !c.touched {
                            c.touched = true;
                            touched.push(idx);
                        }
                    }
                }
            }

            // Doorbell first: drain the byte(s), re-arm, then take the
            // completions — executors push before ringing, so everything
            // signalled is visible now.
            if saw_wake {
                loop {
                    match (&mut (&*wake_rx)).read(&mut scratch) {
                        Ok(0) => break,
                        Ok(_) => continue,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => break,
                    }
                }
            }
            waker.pending.store(false, Ordering::SeqCst);
            let finished = std::mem::take(&mut *completions.lock().unwrap());
            for comp in finished {
                let idx = comp.conn;
                if self.apply(comp) {
                    let c = self.conns[idx].as_mut().expect("apply hit a live conn");
                    if !c.touched {
                        c.touched = true;
                        touched.push(idx);
                    }
                }
            }

            if saw_accept {
                self.accept_ready();
            }

            if self.draining {
                // O(ready) is suspended during drain: write-blocked
                // peers produce no events, but their flush-grace expiry
                // must still be evaluated every round.
                for idx in 0..self.conns.len() {
                    let Some(c) = self.conns[idx].as_mut() else {
                        continue;
                    };
                    if !c.touched {
                        c.touched = true;
                        touched.push(idx);
                    }
                }
            }

            let flush_expired = self
                .drain_since
                .is_some_and(|t| t.elapsed() > DRAIN_FLUSH_GRACE);
            for &idx in &touched {
                self.service_conn(idx, &mut scratch, flush_expired);
            }

            if !self.draining {
                if let Some(idle) = self.cfg.idle_timeout {
                    self.evict_idle(idle);
                }
            }
        }
    }

    /// How long the next wait may sleep. Adaptive: pending fault
    /// retries demand an immediate round, drain keeps its short tick
    /// (write-blocked peers produce no events but their flush grace
    /// must be re-evaluated), an armed idle timeout wakes exactly at
    /// the earliest eviction deadline, and an idle reactor with none of
    /// those sleeps until an event arrives instead of ticking
    /// `poll_interval`.
    fn wait_timeout(&self) -> Duration {
        if !self.fault_retry.is_empty() {
            return Duration::ZERO;
        }
        if self.draining {
            return Duration::from_millis(5);
        }
        match self.next_idle_deadline() {
            Some(at) => at
                .saturating_duration_since(Instant::now())
                .max(Duration::from_millis(1)),
            None => WAIT_FOREVER,
        }
    }

    /// The earliest instant any connection becomes evictable, when the
    /// idle timeout is armed.
    fn next_idle_deadline(&self) -> Option<Instant> {
        let idle = self.cfg.idle_timeout?;
        self.conns
            .iter()
            .flatten()
            .filter_map(|c| c.last_activity.checked_add(idle))
            .min()
    }

    /// Closes connections whose sockets made no progress for `idle` —
    /// the slow-peer eviction path. A peer that is only waiting on our
    /// own executors is never evicted: its socket goes quiet through no
    /// fault of its own, and the pending completion will move bytes.
    fn evict_idle(&mut self, idle: Duration) {
        let now = Instant::now();
        for idx in 0..self.conns.len() {
            let Some(c) = self.conns[idx].as_ref() else {
                continue;
            };
            if c.queue.has_inflight() {
                continue;
            }
            if now.duration_since(c.last_activity) >= idle {
                self.shared
                    .totals
                    .conns_evicted
                    .fetch_add(1, Ordering::Relaxed);
                self.close_conn(idx);
            }
        }
    }

    /// Shutdown observed: stop accepting and parsing, queue `ERR
    /// shutdown` behind every connection's in-flight slots. The
    /// farewell is encoded once per wire encoding and shared across
    /// connections by refcount.
    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_since = Some(Instant::now());
        let pool = self.pool;
        let shared = self.shared;
        let shutdown = Response::Error {
            kind: ErrorKind::Shutdown,
            message: "server draining".into(),
        };
        let mut farewell: [Option<FrameRc>; 2] = [None, None];
        for slot in self.conns.iter_mut() {
            let Some(c) = slot else { continue };
            if c.closing {
                continue;
            }
            c.batch = None;
            let wire = c.last_wire;
            let which = match wire {
                Wire::Text => 0,
                Wire::Binary => 1,
            };
            let frame = farewell[which]
                .get_or_insert_with(|| pool.frame(|b| emit(&shutdown, wire, b)))
                .clone();
            c.stats.errors += 1;
            shared.totals.errors.fetch_add(1, Ordering::Relaxed);
            c.queue.push_ready(frame);
            c.closing = true;
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // A vanished client or transient error must not stop the
                // server; the next tick retries.
                Err(_) => break,
            };
            if self.draining || self.shared.is_shutdown() {
                // Shutdown poke or a straggler (the flag may be set a
                // tick before `begin_drain` runs): dropping it closes
                // the socket; the server no longer serves, and the poke
                // never pollutes the connection counters.
                continue;
            }
            if self.shared.active.load(Ordering::SeqCst) >= self.cfg.max_connections {
                self.reject_busy(stream);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            stream.set_nodelay(true).ok();
            let now_active = self.shared.active.fetch_add(1, Ordering::SeqCst) as u64 + 1;
            self.shared
                .totals
                .connections
                .fetch_add(1, Ordering::Relaxed);
            self.shared
                .totals
                .conns_peak
                .fetch_max(now_active, Ordering::Relaxed);
            let gen = self.next_gen;
            self.next_gen += 1;
            let fd = stream.as_raw_fd();
            let conn = ConnState {
                stream,
                frames: FrameBuf::with_buf(self.pool.vec()),
                queue: SlotQueue::new(),
                out: VecDeque::new(),
                out_pos: 0,
                opts: BatchOptions::default(),
                stats: StatsSnapshot {
                    connections: 1,
                    ..StatsSnapshot::default()
                },
                batch: None,
                last_wire: Wire::Text,
                closing: false,
                read_paused: false,
                ev_read: false,
                touched: false,
                fault_pending: false,
                interest: (true, false),
                last_activity: Instant::now(),
                gen,
            };
            self.live += 1;
            let idx = match self.free.pop() {
                Some(i) => {
                    self.conns[i] = Some(conn);
                    i
                }
                None => {
                    self.conns.push(Some(conn));
                    self.conns.len() - 1
                }
            };
            // Registered once; readiness already pending (a client that
            // connected and wrote) surfaces on the next wait for both
            // backends.
            if self.poller.add_conn(fd, conn_token(idx, gen)).is_err() {
                self.close_conn(idx);
            }
        }
    }

    /// Best-effort `ERR busy` on an over-limit accept, then close. The
    /// socket was never registered, so a plain blocking-ish write is
    /// fine: a fresh socket's send buffer is empty, so this one write
    /// lands (or the peer is gone; either way the connection closes).
    fn reject_busy(&self, mut stream: TcpStream) {
        let mut bytes = Vec::new();
        emit(
            &Response::Error {
                kind: ErrorKind::Busy,
                message: with_retry_after(
                    "connection limit reached",
                    self.cfg.retry_after.as_millis() as u64,
                ),
            },
            Wire::Text,
            &mut bytes,
        );
        if stream.write(&bytes).is_ok() {
            self.shared
                .totals
                .bytes_out
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        }
        self.shared.totals.errors.fetch_add(1, Ordering::Relaxed);
        self.shared
            .totals
            .retries_observed
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Tears a connection down: deregisters the fd and returns every
    /// buffer — read buffer, staged frames, queued frames — to the pool
    /// so steady-state connection churn allocates nothing.
    fn close_conn(&mut self, idx: usize) {
        if let Some(mut c) = self.conns[idx].take() {
            self.poller
                .remove(c.stream.as_raw_fd(), conn_token(idx, c.gen));
            while let Some(frame) = c.out.pop_front() {
                self.pool.recycle_frame(frame);
            }
            c.queue.recycle_into(self.pool);
            self.pool.recycle_vec(c.frames.reclaim());
            self.free.push(idx);
            self.live -= 1;
            self.shared.active.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Lands an executor completion in its connection's slot (discarded
    /// when the connection died first — `gen` guards slab reuse).
    /// Returns whether it landed, so the caller can service the conn.
    fn apply(&mut self, comp: Completion) -> bool {
        // The budget weight releases unconditionally — the executor work
        // happened whether or not the connection survived it.
        self.inflight = self.inflight.saturating_sub(comp.cost as usize);
        if comp.cancels > 0 {
            self.shared
                .totals
                .deadline_cancels
                .fetch_add(comp.cancels, Ordering::Relaxed);
        }
        let pool = self.pool;
        let Some(c) = self.conns.get_mut(comp.conn).and_then(Option::as_mut) else {
            pool.recycle_frame(comp.bytes);
            return false;
        };
        if c.gen != comp.gen {
            pool.recycle_frame(comp.bytes);
            return false;
        }
        c.stats.queries += comp.queries;
        c.stats.errors += comp.errors;
        c.stats.timeouts += comp.timeouts;
        let t = &self.shared.totals;
        t.queries.fetch_add(comp.queries, Ordering::Relaxed);
        t.errors.fetch_add(comp.errors, Ordering::Relaxed);
        t.timeouts.fetch_add(comp.timeouts, Ordering::Relaxed);
        match c.queue.complete(comp.seq, comp.bytes) {
            Ok(()) => true,
            Err(frame) => {
                pool.recycle_frame(frame);
                false
            }
        }
    }

    /// Runs one touched connection through its read → flush cycle until
    /// it makes no more progress: read any announced input, flush ready
    /// frames, and resume a backpressure-paused read once the flush
    /// frees pipeline room (edge-triggered backends get no second
    /// readable event for bytes that already arrived). Ends by syncing
    /// interest for the level-triggered backend.
    fn service_conn(&mut self, idx: usize, scratch: &mut [u8], flush_expired: bool) {
        loop {
            let Some(c) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            c.touched = false;
            let ev_read = std::mem::take(&mut c.ev_read);
            if !c.closing {
                if c.read_paused {
                    if c.queue.len() < MAX_PIPELINE {
                        c.read_paused = false;
                        // Buffered frames first — they arrived before
                        // whatever is still in the socket.
                        self.dispatch_frames(idx);
                        let Some(c) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                            return;
                        };
                        if !c.closing && !c.read_paused {
                            self.read_conn(idx, scratch);
                        }
                    }
                } else if ev_read {
                    self.read_conn(idx, scratch);
                }
            }
            if !self.pump_conn(idx, flush_expired) {
                return;
            }
            let Some(c) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            if !c.closing && c.read_paused && c.queue.len() < MAX_PIPELINE {
                // The flush freed pipeline room; go read the rest.
                continue;
            }
            break;
        }
        self.refresh_interest(idx);
    }

    /// Syncs the poll backend's level-triggered interest with the
    /// connection's state (no-op under epoll). Read interest drops
    /// while paused or closing; write interest follows staged frames.
    fn refresh_interest(&mut self, idx: usize) {
        let Some(c) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        let want = (!c.closing && !c.read_paused, !c.out.is_empty());
        if want == c.interest {
            return;
        }
        c.interest = want;
        let token = conn_token(idx, c.gen);
        self.poller.set_interest(token, want.0, want.1);
    }

    /// Reads until `WouldBlock`, EOF, or backpressure, feeding the frame
    /// decoder and dispatching complete frames.
    fn read_conn(&mut self, idx: usize, scratch: &mut [u8]) {
        loop {
            let Some(c) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            if c.closing {
                return;
            }
            if c.queue.len() >= MAX_PIPELINE {
                c.read_paused = true;
                return;
            }
            // Faults route through the transport wrapper: short reads
            // deliver one byte (the loop keeps draining, so no edge is
            // lost — the decoder just sees torn input), stalls surface
            // as a synthetic `WouldBlock` that must schedule a fault
            // retry (data may remain with no future edge), resets close.
            let (result, stalled) = {
                let mut transport = FaultTransport::new(&mut c.stream, self.fault);
                let result = transport.read(scratch);
                (result, transport.stalled)
            };
            match result {
                Ok(0) => {
                    // EOF: like the blocking server, a half-closed peer
                    // ends the conversation (unwritten responses drop).
                    self.close_conn(idx);
                    return;
                }
                Ok(n) => {
                    c.stats.bytes_in += n as u64;
                    c.last_activity = Instant::now();
                    self.shared
                        .totals
                        .bytes_in
                        .fetch_add(n as u64, Ordering::Relaxed);
                    c.frames.extend(&scratch[..n]);
                    self.dispatch_frames(idx);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if stalled && !c.fault_pending {
                        c.fault_pending = true;
                        self.fault_retry.push(idx);
                    }
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(idx);
                    return;
                }
            }
        }
    }

    /// Drains every complete frame buffered on `idx`, pausing the read
    /// side when the pipeline limit is reached.
    fn dispatch_frames(&mut self, idx: usize) {
        loop {
            let Some(c) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            if c.closing {
                return;
            }
            if c.queue.len() >= MAX_PIPELINE {
                c.read_paused = true;
                return;
            }
            let Some(frame) = c.frames.next_frame() else {
                return;
            };
            self.dispatch_one(idx, frame);
        }
    }

    fn dispatch_one(&mut self, idx: usize, frame: InFrame) {
        // A shed text BATCH consumes its lines unparsed: every arriving
        // line (whatever its shape) is answered `ERR overloaded`, so the
        // stream stays in sync at zero parse cost.
        if self.conn_mut(idx).batch.as_ref().is_some_and(|b| b.shed) {
            if matches!(frame, InFrame::Binary { .. } | InFrame::BinaryOversized) {
                self.shared
                    .totals
                    .frames_binary
                    .fetch_add(1, Ordering::Relaxed);
            }
            self.note_shed(1);
            let resp = self.overloaded_response();
            self.batch_slot(idx, Err(resp));
            return;
        }
        match frame {
            InFrame::Binary { kind, payload } => {
                self.shared
                    .totals
                    .frames_binary
                    .fetch_add(1, Ordering::Relaxed);
                let c = self.conn_mut(idx);
                if c.batch.is_some() {
                    // A binary frame cannot be a text BATCH's query line.
                    self.batch_slot(
                        idx,
                        Err(Response::Error {
                            kind: ErrorKind::Parse,
                            message: "binary frame inside a text BATCH".into(),
                        }),
                    );
                    return;
                }
                c.last_wire = Wire::Binary;
                // Admission control on the kind byte, before the payload
                // is decoded: queries past the budget are shed; a binary
                // batch reads only its count prefix and sheds whole.
                if self.overloaded() {
                    match kind {
                        REQ_QUERY => {
                            self.note_shed(1);
                            let resp = self.overloaded_response();
                            self.ready_response(idx, Wire::Binary, &resp);
                            return;
                        }
                        REQ_BATCH if payload.len() >= 4 => {
                            let count =
                                u32::from_le_bytes(payload[..4].try_into().unwrap()) as usize;
                            if count <= MAX_BATCH {
                                self.note_shed(count as u64);
                                let resp = self.overloaded_response();
                                self.submit_job(idx, vec![Err(resp); count], true, Wire::Binary);
                                return;
                            }
                            // Bogus count: fall through for the normal
                            // decode error.
                        }
                        _ => {}
                    }
                }
                match decode_request_frame(kind, &payload) {
                    Err(e) => self.ready_error(idx, Wire::Binary, ErrorKind::Parse, e.0),
                    Ok(BinRequest::One(req)) => self.handle_request(idx, req, Wire::Binary),
                    Ok(BinRequest::Batch(queries)) => {
                        let slots = queries.into_iter().map(Ok).collect();
                        self.submit_job(idx, slots, true, Wire::Binary);
                    }
                }
            }
            InFrame::BinaryOversized => {
                self.shared
                    .totals
                    .frames_binary
                    .fetch_add(1, Ordering::Relaxed);
                let oversized = Response::Error {
                    kind: ErrorKind::Oversized,
                    message: format!("binary frame exceeds {MAX_FRAME} bytes"),
                };
                if self.conn_mut(idx).batch.is_some() {
                    self.batch_slot(idx, Err(oversized));
                } else {
                    self.conn_mut(idx).last_wire = Wire::Binary;
                    self.ready_response(idx, Wire::Binary, &oversized);
                }
            }
            InFrame::Text(line) => {
                if self.conn_mut(idx).batch.is_some() {
                    let slot = match parse_query(&line) {
                        Ok(q) => Ok(q),
                        Err(e) => Err(Response::Error {
                            kind: ErrorKind::Parse,
                            message: e.0,
                        }),
                    };
                    self.batch_slot(idx, slot);
                    return;
                }
                self.conn_mut(idx).last_wire = Wire::Text;
                // Admission control on the verb, before the coordinates
                // are parsed (control verbs always pass).
                if self.overloaded()
                    && matches!(line.split(' ').next(), Some("KNM" | "FREQ" | "EPS"))
                {
                    self.note_shed(1);
                    let resp = self.overloaded_response();
                    self.ready_response(idx, Wire::Text, &resp);
                    return;
                }
                match parse_request(&line) {
                    Err(e) => self.ready_error(idx, Wire::Text, ErrorKind::Parse, e.0),
                    Ok(req) => self.handle_request(idx, req, Wire::Text),
                }
            }
            InFrame::TextOversized => {
                let oversized = Response::Error {
                    kind: ErrorKind::Oversized,
                    message: format!("request line exceeds {MAX_LINE} bytes"),
                };
                if self.conn_mut(idx).batch.is_some() {
                    self.batch_slot(idx, Err(oversized));
                } else {
                    self.conn_mut(idx).last_wire = Wire::Text;
                    self.ready_response(idx, Wire::Text, &oversized);
                }
            }
        }
    }

    fn handle_request(&mut self, idx: usize, req: Request, wire: Wire) {
        match req {
            Request::Query(q) => self.submit_job(idx, vec![Ok(q)], false, wire),
            Request::Batch(count) => {
                if count > MAX_BATCH {
                    self.ready_error(
                        idx,
                        wire,
                        ErrorKind::Proto,
                        format!("BATCH count {count} exceeds {MAX_BATCH}"),
                    );
                } else if count == 0 {
                    self.submit_job(idx, Vec::new(), true, wire);
                } else {
                    // Admission is decided at the header: a batch opened
                    // past the budget sheds every line it announces.
                    let shed = self.overloaded();
                    self.conn_mut(idx).batch = Some(TextBatch {
                        remaining: count,
                        slots: Vec::with_capacity(count.min(1024)),
                        shed,
                    });
                }
            }
            Request::Deadline(ms) => {
                let c = self.conn_mut(idx);
                c.opts.deadline = (ms > 0).then(|| Duration::from_millis(ms));
                self.ready_response(idx, wire, &Response::Deadline(ms));
            }
            Request::FailFast(on) => {
                self.conn_mut(idx).opts.fail_fast = on;
                self.ready_response(idx, wire, &Response::FailFast(on));
            }
            Request::Planner(mode) => {
                self.conn_mut(idx).opts.planner = Some(mode);
                self.ready_response(idx, wire, &Response::Planner(mode));
            }
            Request::Stats => {
                let response = Response::Stats {
                    conn: self.conn_mut(idx).stats,
                    server: self.shared.totals.snapshot(),
                    plans: self.engine.plan_counts(),
                    extras: Some(self.shared.totals.extras()),
                    version: self.engine.writer().map(|w| w.version_stats().into()),
                };
                self.ready_response(idx, wire, &response);
            }
            Request::Ping => self.ready_response(idx, wire, &Response::Pong),
            Request::Quit => {
                self.ready_response(idx, wire, &Response::Bye);
                self.conn_mut(idx).closing = true;
            }
            Request::Shutdown => {
                self.ready_response(idx, wire, &Response::ShuttingDown);
                self.conn_mut(idx).closing = true;
                // Sets the flag; the reactor observes it at the top of
                // the next tick and drains every other connection.
                self.shared.request_shutdown();
            }
            // The write verbs run inline on the reactor thread: writes
            // arriving on any number of connections are serialized by
            // construction (one reactor), publish is a short lock + Arc
            // swap, and in-flight snapshots keep answering at their
            // pinned epoch. Only run *compaction* is pushed to the
            // executor pool (see `submit_maintenance`).
            Request::Insert { key, point } => {
                let engine = self.engine;
                match engine.writer() {
                    None => self.ready_response(idx, wire, &immutable_engine_error()),
                    Some(w) => {
                        let response = match w.insert(key, &point) {
                            Ok(epoch) => Response::Inserted(epoch),
                            Err(e) => error_response(&e),
                        };
                        self.ready_response(idx, wire, &response);
                        if w.needs_maintenance() {
                            self.submit_maintenance(idx, wire);
                        }
                    }
                }
            }
            Request::Delete(key) => {
                let engine = self.engine;
                match engine.writer() {
                    None => self.ready_response(idx, wire, &immutable_engine_error()),
                    Some(w) => {
                        let response = match w.remove(key) {
                            Ok(epoch) => Response::Deleted(epoch),
                            Err(e) => error_response(&e),
                        };
                        self.ready_response(idx, wire, &response);
                        if w.needs_maintenance() {
                            self.submit_maintenance(idx, wire);
                        }
                    }
                }
            }
            Request::Epoch => {
                let response = match self.engine.writer() {
                    None => immutable_engine_error(),
                    Some(w) => {
                        let s = w.version_stats();
                        Response::Epoch {
                            epoch: s.epoch,
                            live: s.live as u64,
                            delta: s.delta_len as u64,
                            runs: s.runs as u64,
                        }
                    }
                };
                self.ready_response(idx, wire, &response);
            }
            Request::Seal => {
                let response = match self.engine.writer() {
                    None => immutable_engine_error(),
                    Some(w) => match w.seal() {
                        Ok(epoch) => Response::Sealed(epoch),
                        Err(e) => error_response(&e),
                    },
                };
                self.ready_response(idx, wire, &response);
            }
        }
    }

    /// Adds one slot to the open text batch, submitting the batch when
    /// its last line arrived.
    fn batch_slot(&mut self, idx: usize, slot: Result<BatchQuery, Response>) {
        let c = self.conn_mut(idx);
        let batch = c.batch.as_mut().expect("batch in progress");
        batch.slots.push(slot);
        batch.remaining -= 1;
        if batch.remaining == 0 {
            let batch = c.batch.take().expect("batch in progress");
            let wire = c.last_wire;
            self.submit_job(idx, batch.slots, true, wire);
        }
    }

    fn submit_job(
        &mut self,
        idx: usize,
        slots: Vec<Result<BatchQuery, Response>>,
        trailer: bool,
        wire: Wire,
    ) {
        let c = self.conns[idx].as_mut().expect("live connection");
        let seq = c.queue.push_waiting();
        let mut opts = c.opts.clone();
        // Stamp arrival as the absolute deadline: executor queue wait
        // counts against the budget, so a doomed batch cancels at
        // pickup instead of burning an executor (`checked_add` — an
        // absurd duration means "no deadline", mirroring `arm`).
        opts.deadline_at = opts.deadline.and_then(|d| Instant::now().checked_add(d));
        let cost = slots.iter().filter(|s| s.is_ok()).count() as u64;
        self.inflight += cost as usize;
        self.note_depth(idx);
        let c = self.conns[idx].as_ref().expect("live connection");
        self.queue.push(Job {
            conn: idx,
            gen: c.gen,
            seq,
            wire,
            trailer,
            opts,
            cost,
            slots,
            maintenance: false,
        });
    }

    /// Schedules one maintenance step of the mutable engine on the
    /// executor pool, sequenced on the writing connection's queue: the
    /// reactor thread never merges runs, and readers on other
    /// connections keep flowing while the merge builds. The completion
    /// carries zero response bytes.
    fn submit_maintenance(&mut self, idx: usize, wire: Wire) {
        let c = self.conns[idx].as_mut().expect("live connection");
        let seq = c.queue.push_waiting();
        self.queue.push(Job {
            conn: idx,
            gen: c.gen,
            seq,
            wire,
            trailer: false,
            opts: BatchOptions::default(),
            cost: 0,
            slots: Vec::new(),
            maintenance: true,
        });
    }

    /// Opens and completes a slot with a control response encoded into
    /// a pooled frame, tallying error counters inline (the executor
    /// path tallies its own).
    fn ready_response(&mut self, idx: usize, wire: Wire, resp: &Response) {
        let frame = self.pool.frame(|bytes| emit(resp, wire, bytes));
        if let Response::Error { kind, .. } = resp {
            let c = self.conns[idx].as_mut().expect("live connection");
            c.stats.errors += 1;
            self.shared.totals.errors.fetch_add(1, Ordering::Relaxed);
            if *kind == ErrorKind::Timeout {
                c.stats.timeouts += 1;
                self.shared.totals.timeouts.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.conns[idx]
            .as_mut()
            .expect("live connection")
            .queue
            .push_ready(frame);
        self.note_depth(idx);
    }

    fn ready_error(&mut self, idx: usize, wire: Wire, kind: ErrorKind, message: String) {
        self.ready_response(idx, wire, &Response::Error { kind, message });
    }

    fn note_depth(&mut self, idx: usize) {
        let depth = self.conns[idx]
            .as_ref()
            .expect("live connection")
            .queue
            .len() as u64;
        self.shared
            .totals
            .pipeline_depth_max
            .fetch_max(depth, Ordering::Relaxed);
    }

    fn conn_mut(&mut self, idx: usize) -> &mut ConnState {
        self.conns[idx].as_mut().expect("live connection")
    }

    /// Whether the global in-flight budget is exhausted.
    fn overloaded(&self) -> bool {
        self.inflight >= self.max_inflight
    }

    /// The load-shedding reply: `ERR overloaded` carrying the backoff
    /// hint, so well-behaved clients retry after [`ServerConfig::retry_after`].
    fn overloaded_response(&self) -> Response {
        Response::Error {
            kind: ErrorKind::Overloaded,
            message: with_retry_after("server overloaded", self.cfg.retry_after.as_millis() as u64),
        }
    }

    /// Counts `n` shed queries; each shed reply carries a retry hint.
    fn note_shed(&self, n: u64) {
        let t = &self.shared.totals;
        t.queries_shed.fetch_add(n, Ordering::Relaxed);
        t.retries_observed.fetch_add(n, Ordering::Relaxed);
    }

    /// Flushes one connection: moves ready head frames from the slot
    /// queue into the outgoing queue (no copy — the frames themselves
    /// move) and gathers them into `writev` calls until the socket
    /// blocks or everything is written. Partial writes resume exactly
    /// where the kernel stopped, mid-frame included. Returns `false`
    /// when the connection was closed.
    fn pump_conn(&mut self, idx: usize, flush_expired: bool) -> bool {
        let shared = self.shared;
        let pool = self.pool;
        let fault = self.fault;
        let Some(c) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return false;
        };
        // One write-side fault decision per flush attempt, rolled only
        // when there might be something to flush. A stall skips the
        // flush entirely (delayed flush); a short write truncates it to
        // a few head-frame bytes (torn reply). Both leave bytes pending
        // with no future readiness edge under edge triggering, so both
        // end on the fault-retry list.
        let decision = match fault {
            Some(inj) if !(c.out.is_empty() && c.queue.is_empty()) => inj.write_fault(),
            _ => WriteFault::None,
        };
        let mut fault_stop = matches!(decision, WriteFault::Stall);
        let budget = match decision {
            WriteFault::Short { max_bytes } => Some(max_bytes),
            _ => None,
        };
        let mut gone = false;
        while !fault_stop {
            while c.out.len() < sys::MAX_IOV {
                let Some(frame) = c.queue.pop_ready() else {
                    break;
                };
                if frame.bytes.is_empty() {
                    pool.recycle_frame(frame);
                    continue;
                }
                let len = frame.bytes.len() as u64;
                c.stats.bytes_out += len;
                shared.totals.bytes_out.fetch_add(len, Ordering::Relaxed);
                c.out.push_back(frame);
            }
            if c.out.is_empty() {
                if c.closing && c.queue.is_empty() {
                    gone = true;
                }
                break;
            }
            let mut bufs: [&[u8]; sys::MAX_IOV] = [&[]; sys::MAX_IOV];
            let mut n_bufs = 0;
            if let Some(cap) = budget {
                // Torn write: at most `cap` bytes of the head frame.
                let head = c.out.front().expect("out is non-empty");
                let end = (c.out_pos + cap).min(head.bytes.len());
                bufs[0] = &head.bytes[c.out_pos..end];
                n_bufs = 1;
            } else {
                for (i, frame) in c.out.iter().take(sys::MAX_IOV).enumerate() {
                    let start = if i == 0 { c.out_pos } else { 0 };
                    bufs[n_bufs] = &frame.bytes[start..];
                    n_bufs += 1;
                }
            }
            shared.totals.writev_calls.fetch_add(1, Ordering::Relaxed);
            match sys::writev(c.stream.as_raw_fd(), &bufs[..n_bufs]) {
                Ok(0) => {
                    gone = true;
                    break;
                }
                Ok(n) => {
                    c.last_activity = Instant::now();
                    advance_written(&mut c.out, &mut c.out_pos, n, pool);
                    if budget.is_some() {
                        fault_stop = true;
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // During drain, give up on peers that stopped
                    // reading once every response is ready and the
                    // grace period passed.
                    if flush_expired && !c.queue.has_inflight() {
                        gone = true;
                    }
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    gone = true;
                    break;
                }
            }
        }
        if gone {
            self.close_conn(idx);
            return false;
        }
        if fault_stop && !c.fault_pending {
            c.fault_pending = true;
            self.fault_retry.push(idx);
        }
        true
    }
}
