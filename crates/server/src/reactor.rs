//! The event-driven TCP front-end: nonblocking sockets multiplexed by
//! `poll(2)`, request pipelining with strict per-connection response
//! order, and a fixed executor pool running queries (DESIGN.md §13).
//!
//! ## Shape
//!
//! One reactor thread owns every socket. It accepts, reads, frames
//! (text lines and binary frames interleave freely — see
//! [`FrameBuf`]), and dispatches: control requests (`PING`, `STATS`,
//! `DEADLINE`…) are answered inline; query and `BATCH` requests become
//! jobs on a [`Condvar`] queue drained by `executors` worker threads,
//! each calling [`BatchEngine::run_with`] and serializing the responses
//! off the reactor thread. Completions return through a mutex-guarded
//! vector plus a loopback *wake* socket (std has no pipes, but a
//! loopback pair is the same one-byte doorbell), so a sleeping `poll`
//! learns of finished work immediately.
//!
//! ## Ordering guarantee
//!
//! Every request occupies one [`SlotQueue`] slot in arrival order, and
//! bytes leave strictly from the head — a pipelined client gets its
//! responses in exactly the order it sent requests, even when the
//! executor pool finishes them out of order. `DEADLINE`/`FAILFAST`/
//! `PLANNER` are applied at parse time, so each pipelined batch runs
//! under the options that preceded it in the stream.
//!
//! ## Drain
//!
//! [`ShutdownHandle::shutdown`] flips the flag and pokes the listener
//! with a loopback connect; the listener becomes readable and `poll`
//! returns immediately — no timeout rounds. The reactor then stops
//! accepting and parsing, appends one `ERR shutdown` slot behind each
//! connection's in-flight requests, flushes, and closes. Drain latency
//! on idle connections is a handful of wakeups, not `poll_interval`
//! multiples (the graceful-drain test budgets 10ms).

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use knmatch_core::{BatchEngine, BatchOptions, BatchOutcome, BatchQuery};

use crate::conn::{FrameBuf, InFrame, SlotQueue, Wire};
use crate::protocol::{
    decode_request_frame, encode_response_frame, error_response, format_response, parse_query,
    parse_request, BinRequest, ErrorKind, Request, Response, StatsSnapshot, MAX_BATCH, MAX_FRAME,
    MAX_LINE,
};
use crate::server::{ServerConfig, Shared, ShutdownHandle};

/// Most requests one connection may have in flight (slots occupied,
/// responses unwritten) before the reactor stops reading from it —
/// pipelining backpressure, not an error.
pub const MAX_PIPELINE: usize = 1024;

/// After this much drain time, a connection whose responses are all
/// ready but unflushable (peer stopped reading) is closed anyway.
/// Connections with queries still executing are always waited for.
const DRAIN_FLUSH_GRACE: Duration = Duration::from_secs(2);

/// The thinnest possible `poll(2)` binding. The workspace links no
/// external crates, but std already links the platform C library on
/// every unix target, so declaring the one symbol we need is fine —
/// this module is the only `unsafe` in the crate, kept to a single
/// syscall with a safe slice-in/slice-out wrapper.
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    /// Readable (or: a connection is ready to accept).
    pub const POLLIN: i16 = 0x001;
    /// Writable without blocking.
    pub const POLLOUT: i16 = 0x004;
    /// Error condition (always reported; never requested).
    pub const POLLERR: i16 = 0x008;
    /// Peer hung up (always reported; never requested).
    pub const POLLHUP: i16 = 0x010;
    /// Invalid fd (always reported; never requested).
    pub const POLLNVAL: i16 = 0x020;

    /// `struct pollfd` — identical layout on every unix libc.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        /// The fd to watch.
        pub fd: RawFd,
        /// Requested events.
        pub events: i16,
        /// Kernel-reported events.
        pub revents: i16,
    }

    /// `nfds_t`: `unsigned long` on linux libcs, `unsigned int` on the
    /// BSD family.
    #[cfg(any(target_os = "macos", target_os = "freebsd", target_os = "netbsd"))]
    type NfdsT = u32;
    #[cfg(not(any(target_os = "macos", target_os = "freebsd", target_os = "netbsd")))]
    type NfdsT = std::ffi::c_ulong;

    extern "C" {
        #[link_name = "poll"]
        fn c_poll(fds: *mut PollFd, nfds: NfdsT, timeout: i32) -> i32;
    }

    /// Waits until an fd in `fds` has events or `timeout` passes.
    /// Returns the number of fds with `revents` set (0 on timeout or
    /// `EINTR`, which callers treat as an idle tick).
    ///
    /// # Errors
    ///
    /// The syscall's errno, except `EINTR`.
    pub fn poll(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        // SAFETY: `fds` is a valid exclusively-borrowed slice of
        // `#[repr(C)]` structs matching `struct pollfd`; the kernel
        // writes only within `fds.len()` entries' `revents` fields.
        let rc = unsafe { c_poll(fds.as_mut_ptr(), fds.len() as NfdsT, ms) };
        if rc < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(rc as usize)
    }
}

/// One executor work unit: a request's query slots, snapshotted options,
/// and the routing needed to land the serialized responses back in the
/// right connection's slot.
struct Job {
    conn: usize,
    gen: u64,
    seq: u64,
    wire: Wire,
    trailer: bool,
    opts: BatchOptions,
    slots: Vec<Result<BatchQuery, Response>>,
}

/// An executed job: serialized response bytes plus the counter deltas
/// the reactor applies on receipt.
struct Completion {
    conn: usize,
    gen: u64,
    seq: u64,
    bytes: Vec<u8>,
    queries: u64,
    errors: u64,
    timeouts: u64,
}

/// The executor pool's job queue (`Mutex<VecDeque>` + `Condvar`; closed
/// flag ends the workers).
struct JobQueue {
    state: Mutex<(VecDeque<Job>, bool)>,
    cv: Condvar,
}

impl JobQueue {
    fn new() -> JobQueue {
        JobQueue {
            state: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        let mut s = self.state.lock().unwrap();
        s.0.push_back(job);
        drop(s);
        self.cv.notify_one();
    }

    /// Blocks for the next job; `None` once closed and empty.
    fn pop(&self) -> Option<Job> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(job) = s.0.pop_front() {
                return Some(job);
            }
            if s.1 {
                return None;
            }
            s = self.cv.wait(s).unwrap();
        }
    }

    fn close(&self) {
        self.state.lock().unwrap().1 = true;
        self.cv.notify_all();
    }
}

/// The executors' doorbell into a sleeping `poll`: one byte down a
/// loopback socket pair, deduplicated so a burst of completions costs
/// one syscall.
struct Waker {
    tx: TcpStream,
    pending: AtomicBool,
}

impl Waker {
    fn wake(&self) {
        if !self.pending.swap(true, Ordering::SeqCst) {
            let _ = (&self.tx).write(&[1u8]);
        }
    }
}

/// A connected loopback pair standing in for `pipe(2)`: `rx` is the
/// nonblocking read end the reactor polls, `tx` the write end executors
/// signal. The accept is checked against the connecting socket's local
/// address so a stray connection cannot hijack the doorbell.
fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0))?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let want = tx.local_addr()?;
    let rx = loop {
        let (rx, peer) = listener.accept()?;
        if peer == want {
            break rx;
        }
    };
    rx.set_nonblocking(true)?;
    tx.set_nodelay(true).ok();
    Ok((rx, tx))
}

/// Serializes `resp` in the request's encoding.
fn emit(resp: &Response, wire: Wire, out: &mut Vec<u8>) {
    match wire {
        Wire::Text => {
            out.extend_from_slice(format_response(resp).as_bytes());
            out.push(b'\n');
        }
        Wire::Binary => encode_response_frame(resp, out),
    }
}

/// Executor thread body: run jobs until the queue closes.
fn executor_loop<E: BatchEngine + Sync>(
    engine: &E,
    queue: &JobQueue,
    completions: &Mutex<Vec<Completion>>,
    waker: &Waker,
) {
    while let Some(job) = queue.pop() {
        let comp = run_job(engine, job);
        completions.lock().unwrap().push(comp);
        waker.wake();
    }
}

/// Runs one job's parseable slots as a single engine batch and
/// serializes one response per slot (slot order), plus the `DONE`
/// trailer for batches — the executor-side mirror of the blocking
/// server's `run_and_respond`.
fn run_job<E: BatchEngine + Sync>(engine: &E, job: Job) -> Completion {
    let queries: Vec<BatchQuery> = job
        .slots
        .iter()
        .filter_map(|s| s.as_ref().ok())
        .cloned()
        .collect();
    let mut outcomes = engine.run_with(&queries, &job.opts).into_iter();
    let mut bytes = Vec::new();
    let (mut ok, mut failed, mut timeouts) = (0u64, 0u64, 0u64);
    for slot in &job.slots {
        let response = match slot {
            Err(pre) => pre.clone(),
            Ok(_) => match outcomes.next().expect("one outcome per parsed query") {
                Ok(outcome) => Response::Answer(outcome.into_answer()),
                Err(e) => error_response(&e),
            },
        };
        match &response {
            Response::Answer(_) => ok += 1,
            Response::Error { kind, .. } => {
                failed += 1;
                if *kind == ErrorKind::Timeout {
                    timeouts += 1;
                }
            }
            _ => failed += 1,
        }
        emit(&response, job.wire, &mut bytes);
    }
    if job.trailer {
        emit(&Response::Done { ok, failed }, job.wire, &mut bytes);
    }
    Completion {
        conn: job.conn,
        gen: job.gen,
        seq: job.seq,
        bytes,
        queries: job.slots.len() as u64,
        errors: failed,
        timeouts,
    }
}

/// A text `BATCH <count>` whose query lines are still streaming in.
struct TextBatch {
    remaining: usize,
    slots: Vec<Result<BatchQuery, Response>>,
}

/// Reactor-side state of one connection.
struct ConnState {
    stream: TcpStream,
    frames: FrameBuf,
    queue: SlotQueue,
    wbuf: Vec<u8>,
    wpos: usize,
    opts: BatchOptions,
    stats: StatsSnapshot,
    batch: Option<TextBatch>,
    last_wire: Wire,
    closing: bool,
    gen: u64,
}

/// A `poll(2)`-driven server over one batch engine — the event-loop
/// sibling of [`Server`](crate::Server), speaking the same protocol
/// (plus binary frames) with the same shutdown and counter semantics.
pub struct EventServer<E> {
    engine: E,
    listener: TcpListener,
    cfg: ServerConfig,
    shared: Arc<Shared>,
}

impl<E: BatchEngine + Sync> EventServer<E> {
    /// Binds `addr` and wraps `engine`; serving starts with
    /// [`serve`](EventServer::serve).
    ///
    /// # Errors
    ///
    /// Socket errors from bind/local-addr resolution.
    pub fn bind<A: ToSocketAddrs>(
        engine: E,
        addr: A,
        cfg: ServerConfig,
    ) -> io::Result<EventServer<E>> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(EventServer {
            engine,
            listener,
            cfg,
            shared: Arc::new(Shared::new(addr)),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle that stops this server from another thread.
    pub fn handle(&self) -> ShutdownHandle {
        ShutdownHandle(self.shared.clone())
    }

    /// Server-lifetime counters so far.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.totals.snapshot()
    }

    /// The served engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Runs the reactor until a `SHUTDOWN` request or a
    /// [`ShutdownHandle`] stops it, then drains (see module docs) and
    /// returns.
    ///
    /// # Errors
    ///
    /// Fatal listener/poll errors only; per-connection failures close
    /// that connection.
    pub fn serve(&self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let (wake_rx, wake_tx) = wake_pair()?;
        let waker = Waker {
            tx: wake_tx,
            pending: AtomicBool::new(false),
        };
        let queue = JobQueue::new();
        let completions: Mutex<Vec<Completion>> = Mutex::new(Vec::new());
        let executors = if self.cfg.executors == 0 {
            thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.cfg.executors
        };
        thread::scope(|scope| {
            for _ in 0..executors {
                scope.spawn(|| executor_loop(&self.engine, &queue, &completions, &waker));
            }
            let result = Reactor {
                engine: &self.engine,
                cfg: &self.cfg,
                shared: &self.shared,
                listener: &self.listener,
                queue: &queue,
                conns: Vec::new(),
                free: Vec::new(),
                live: 0,
                next_gen: 0,
                draining: false,
                drain_since: None,
            }
            .run(&wake_rx, &waker, &completions);
            queue.close();
            result
        })
    }
}

struct Reactor<'a, E> {
    engine: &'a E,
    cfg: &'a ServerConfig,
    shared: &'a Shared,
    listener: &'a TcpListener,
    queue: &'a JobQueue,
    conns: Vec<Option<ConnState>>,
    free: Vec<usize>,
    live: usize,
    next_gen: u64,
    draining: bool,
    drain_since: Option<Instant>,
}

impl<'a, E: BatchEngine + Sync> Reactor<'a, E> {
    fn run(
        mut self,
        wake_rx: &TcpStream,
        waker: &Waker,
        completions: &Mutex<Vec<Completion>>,
    ) -> io::Result<()> {
        let mut pollfds: Vec<sys::PollFd> = Vec::new();
        let mut targets: Vec<usize> = Vec::new();
        let mut scratch = vec![0u8; 64 * 1024];
        loop {
            if !self.draining && self.shared.is_shutdown() {
                self.begin_drain();
            }
            if self.draining && self.live == 0 {
                return Ok(());
            }

            pollfds.clear();
            targets.clear();
            pollfds.push(sys::PollFd {
                fd: wake_rx.as_raw_fd(),
                events: sys::POLLIN,
                revents: 0,
            });
            // The listener is always polled: over-limit connections must
            // be accepted to receive their `ERR busy` (blocking-server
            // semantics), and during drain the shutdown poke and
            // stragglers are accepted and dropped.
            pollfds.push(sys::PollFd {
                fd: self.listener.as_raw_fd(),
                events: sys::POLLIN,
                revents: 0,
            });
            for (idx, slot) in self.conns.iter().enumerate() {
                let Some(c) = slot else { continue };
                let mut events = 0i16;
                if !c.closing && c.queue.len() < MAX_PIPELINE {
                    events |= sys::POLLIN;
                }
                if c.wpos < c.wbuf.len() {
                    events |= sys::POLLOUT;
                }
                pollfds.push(sys::PollFd {
                    fd: c.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
                targets.push(idx);
            }

            let timeout = if self.draining {
                Duration::from_millis(5)
            } else {
                self.cfg.poll_interval
            };
            sys::poll(&mut pollfds, timeout)?;

            // Doorbell first: drain the byte(s), re-arm, then take the
            // completions — executors push before ringing, so everything
            // signalled is visible now.
            if pollfds[0].revents != 0 {
                loop {
                    match (&mut (&*wake_rx)).read(&mut scratch) {
                        Ok(0) => break,
                        Ok(_) => continue,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => break,
                    }
                }
            }
            waker.pending.store(false, Ordering::SeqCst);
            let finished = std::mem::take(&mut *completions.lock().unwrap());
            for comp in finished {
                self.apply(comp);
            }

            if pollfds[1].revents != 0 {
                self.accept_ready();
            }

            for (pf, &idx) in pollfds[2..].iter().zip(&targets) {
                if pf.revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0 {
                    self.read_conn(idx, &mut scratch);
                }
            }

            self.pump_all();
        }
    }

    /// Shutdown observed: stop accepting and parsing, queue `ERR
    /// shutdown` behind every connection's in-flight slots.
    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_since = Some(Instant::now());
        for slot in self.conns.iter_mut() {
            let Some(c) = slot else { continue };
            if c.closing {
                continue;
            }
            c.batch = None;
            let shutdown = Response::Error {
                kind: ErrorKind::Shutdown,
                message: "server draining".into(),
            };
            let mut bytes = Vec::new();
            emit(&shutdown, c.last_wire, &mut bytes);
            c.stats.errors += 1;
            self.shared.totals.errors.fetch_add(1, Ordering::Relaxed);
            c.queue.push_ready(bytes);
            c.closing = true;
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // A vanished client or transient error must not stop the
                // server; the next tick retries.
                Err(_) => break,
            };
            if self.draining || self.shared.is_shutdown() {
                // Shutdown poke or a straggler (the flag may be set a
                // tick before `begin_drain` runs): dropping it closes
                // the socket; the server no longer serves, and the poke
                // never pollutes the connection counters.
                continue;
            }
            if self.shared.active.load(Ordering::SeqCst) >= self.cfg.max_connections {
                self.reject_busy(stream);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            stream.set_nodelay(true).ok();
            let now_active = self.shared.active.fetch_add(1, Ordering::SeqCst) as u64 + 1;
            self.shared
                .totals
                .connections
                .fetch_add(1, Ordering::Relaxed);
            self.shared
                .totals
                .conns_peak
                .fetch_max(now_active, Ordering::Relaxed);
            let gen = self.next_gen;
            self.next_gen += 1;
            let conn = ConnState {
                stream,
                frames: FrameBuf::new(),
                queue: SlotQueue::new(),
                wbuf: Vec::new(),
                wpos: 0,
                opts: BatchOptions::default(),
                stats: StatsSnapshot {
                    connections: 1,
                    ..StatsSnapshot::default()
                },
                batch: None,
                last_wire: Wire::Text,
                closing: false,
                gen,
            };
            self.live += 1;
            match self.free.pop() {
                Some(i) => self.conns[i] = Some(conn),
                None => self.conns.push(Some(conn)),
            }
        }
    }

    /// Best-effort `ERR busy` on an over-limit accept, then close.
    fn reject_busy(&self, mut stream: TcpStream) {
        let mut bytes = Vec::new();
        emit(
            &Response::Error {
                kind: ErrorKind::Busy,
                message: "connection limit reached".into(),
            },
            Wire::Text,
            &mut bytes,
        );
        // A fresh socket's send buffer is empty, so this one write lands
        // (or the peer is gone; either way the connection closes).
        if stream.write(&bytes).is_ok() {
            self.shared
                .totals
                .bytes_out
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        }
        self.shared.totals.errors.fetch_add(1, Ordering::Relaxed);
    }

    fn close_conn(&mut self, idx: usize) {
        if self.conns[idx].take().is_some() {
            self.free.push(idx);
            self.live -= 1;
            self.shared.active.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Lands an executor completion in its connection's slot (discarded
    /// when the connection died first — `gen` guards slab reuse).
    fn apply(&mut self, comp: Completion) {
        let Some(c) = self.conns.get_mut(comp.conn).and_then(Option::as_mut) else {
            return;
        };
        if c.gen != comp.gen {
            return;
        }
        c.stats.queries += comp.queries;
        c.stats.errors += comp.errors;
        c.stats.timeouts += comp.timeouts;
        let t = &self.shared.totals;
        t.queries.fetch_add(comp.queries, Ordering::Relaxed);
        t.errors.fetch_add(comp.errors, Ordering::Relaxed);
        t.timeouts.fetch_add(comp.timeouts, Ordering::Relaxed);
        c.queue.complete(comp.seq, comp.bytes);
    }

    /// Reads until `WouldBlock`, EOF, or backpressure, feeding the frame
    /// decoder and dispatching complete frames.
    fn read_conn(&mut self, idx: usize, scratch: &mut [u8]) {
        loop {
            let Some(c) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            if c.closing {
                return;
            }
            match c.stream.read(scratch) {
                Ok(0) => {
                    // EOF: like the blocking server, a half-closed peer
                    // ends the conversation (unwritten responses drop).
                    self.close_conn(idx);
                    return;
                }
                Ok(n) => {
                    c.stats.bytes_in += n as u64;
                    self.shared
                        .totals
                        .bytes_in
                        .fetch_add(n as u64, Ordering::Relaxed);
                    c.frames.extend(&scratch[..n]);
                    self.dispatch_frames(idx);
                    let Some(c) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                        return;
                    };
                    if c.closing || c.queue.len() >= MAX_PIPELINE {
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(idx);
                    return;
                }
            }
        }
    }

    /// Drains every complete frame buffered on `idx`.
    fn dispatch_frames(&mut self, idx: usize) {
        loop {
            let Some(c) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            if c.closing || c.queue.len() >= MAX_PIPELINE {
                return;
            }
            let Some(frame) = c.frames.next_frame() else {
                return;
            };
            self.dispatch_one(idx, frame);
        }
    }

    fn dispatch_one(&mut self, idx: usize, frame: InFrame) {
        match frame {
            InFrame::Binary { kind, payload } => {
                self.shared
                    .totals
                    .frames_binary
                    .fetch_add(1, Ordering::Relaxed);
                let c = self.conn_mut(idx);
                if c.batch.is_some() {
                    // A binary frame cannot be a text BATCH's query line.
                    self.batch_slot(
                        idx,
                        Err(Response::Error {
                            kind: ErrorKind::Parse,
                            message: "binary frame inside a text BATCH".into(),
                        }),
                    );
                    return;
                }
                c.last_wire = Wire::Binary;
                match decode_request_frame(kind, &payload) {
                    Err(e) => self.ready_error(idx, Wire::Binary, ErrorKind::Parse, e.0),
                    Ok(BinRequest::One(req)) => self.handle_request(idx, req, Wire::Binary),
                    Ok(BinRequest::Batch(queries)) => {
                        let slots = queries.into_iter().map(Ok).collect();
                        self.submit_job(idx, slots, true, Wire::Binary);
                    }
                }
            }
            InFrame::BinaryOversized => {
                self.shared
                    .totals
                    .frames_binary
                    .fetch_add(1, Ordering::Relaxed);
                let oversized = Response::Error {
                    kind: ErrorKind::Oversized,
                    message: format!("binary frame exceeds {MAX_FRAME} bytes"),
                };
                if self.conn_mut(idx).batch.is_some() {
                    self.batch_slot(idx, Err(oversized));
                } else {
                    self.conn_mut(idx).last_wire = Wire::Binary;
                    self.ready_response(idx, Wire::Binary, &oversized);
                }
            }
            InFrame::Text(line) => {
                if self.conn_mut(idx).batch.is_some() {
                    let slot = match parse_query(&line) {
                        Ok(q) => Ok(q),
                        Err(e) => Err(Response::Error {
                            kind: ErrorKind::Parse,
                            message: e.0,
                        }),
                    };
                    self.batch_slot(idx, slot);
                    return;
                }
                self.conn_mut(idx).last_wire = Wire::Text;
                match parse_request(&line) {
                    Err(e) => self.ready_error(idx, Wire::Text, ErrorKind::Parse, e.0),
                    Ok(req) => self.handle_request(idx, req, Wire::Text),
                }
            }
            InFrame::TextOversized => {
                let oversized = Response::Error {
                    kind: ErrorKind::Oversized,
                    message: format!("request line exceeds {MAX_LINE} bytes"),
                };
                if self.conn_mut(idx).batch.is_some() {
                    self.batch_slot(idx, Err(oversized));
                } else {
                    self.conn_mut(idx).last_wire = Wire::Text;
                    self.ready_response(idx, Wire::Text, &oversized);
                }
            }
        }
    }

    fn handle_request(&mut self, idx: usize, req: Request, wire: Wire) {
        match req {
            Request::Query(q) => self.submit_job(idx, vec![Ok(q)], false, wire),
            Request::Batch(count) => {
                if count > MAX_BATCH {
                    self.ready_error(
                        idx,
                        wire,
                        ErrorKind::Proto,
                        format!("BATCH count {count} exceeds {MAX_BATCH}"),
                    );
                } else if count == 0 {
                    self.submit_job(idx, Vec::new(), true, wire);
                } else {
                    self.conn_mut(idx).batch = Some(TextBatch {
                        remaining: count,
                        slots: Vec::with_capacity(count.min(1024)),
                    });
                }
            }
            Request::Deadline(ms) => {
                let c = self.conn_mut(idx);
                c.opts.deadline = (ms > 0).then(|| Duration::from_millis(ms));
                self.ready_response(idx, wire, &Response::Deadline(ms));
            }
            Request::FailFast(on) => {
                self.conn_mut(idx).opts.fail_fast = on;
                self.ready_response(idx, wire, &Response::FailFast(on));
            }
            Request::Planner(mode) => {
                self.conn_mut(idx).opts.planner = Some(mode);
                self.ready_response(idx, wire, &Response::Planner(mode));
            }
            Request::Stats => {
                let response = Response::Stats {
                    conn: self.conn_mut(idx).stats,
                    server: self.shared.totals.snapshot(),
                    plans: self.engine.plan_counts(),
                    extras: Some(self.shared.totals.extras()),
                };
                self.ready_response(idx, wire, &response);
            }
            Request::Ping => self.ready_response(idx, wire, &Response::Pong),
            Request::Quit => {
                self.ready_response(idx, wire, &Response::Bye);
                self.conn_mut(idx).closing = true;
            }
            Request::Shutdown => {
                self.ready_response(idx, wire, &Response::ShuttingDown);
                self.conn_mut(idx).closing = true;
                // Sets the flag; the reactor observes it at the top of
                // the next tick and drains every other connection.
                self.shared.request_shutdown();
            }
        }
    }

    /// Adds one slot to the open text batch, submitting the batch when
    /// its last line arrived.
    fn batch_slot(&mut self, idx: usize, slot: Result<BatchQuery, Response>) {
        let c = self.conn_mut(idx);
        let batch = c.batch.as_mut().expect("batch in progress");
        batch.slots.push(slot);
        batch.remaining -= 1;
        if batch.remaining == 0 {
            let batch = c.batch.take().expect("batch in progress");
            let wire = c.last_wire;
            self.submit_job(idx, batch.slots, true, wire);
        }
    }

    fn submit_job(
        &mut self,
        idx: usize,
        slots: Vec<Result<BatchQuery, Response>>,
        trailer: bool,
        wire: Wire,
    ) {
        let c = self.conns[idx].as_mut().expect("live connection");
        let seq = c.queue.push_waiting();
        self.note_depth(idx);
        let c = self.conns[idx].as_ref().expect("live connection");
        self.queue.push(Job {
            conn: idx,
            gen: c.gen,
            seq,
            wire,
            trailer,
            opts: c.opts.clone(),
            slots,
        });
    }

    /// Opens and completes a slot with a control response, tallying
    /// error counters inline (the executor path tallies its own).
    fn ready_response(&mut self, idx: usize, wire: Wire, resp: &Response) {
        let mut bytes = Vec::new();
        emit(resp, wire, &mut bytes);
        if let Response::Error { kind, .. } = resp {
            let c = self.conns[idx].as_mut().expect("live connection");
            c.stats.errors += 1;
            self.shared.totals.errors.fetch_add(1, Ordering::Relaxed);
            if *kind == ErrorKind::Timeout {
                c.stats.timeouts += 1;
                self.shared.totals.timeouts.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.conns[idx]
            .as_mut()
            .expect("live connection")
            .queue
            .push_ready(bytes);
        self.note_depth(idx);
    }

    fn ready_error(&mut self, idx: usize, wire: Wire, kind: ErrorKind, message: String) {
        self.ready_response(idx, wire, &Response::Error { kind, message });
    }

    fn note_depth(&mut self, idx: usize) {
        let depth = self.conns[idx]
            .as_ref()
            .expect("live connection")
            .queue
            .len() as u64;
        self.shared
            .totals
            .pipeline_depth_max
            .fetch_max(depth, Ordering::Relaxed);
    }

    fn conn_mut(&mut self, idx: usize) -> &mut ConnState {
        self.conns[idx].as_mut().expect("live connection")
    }

    /// Moves ready head slots into write buffers, writes what the
    /// sockets accept, and closes finished or hopeless connections.
    fn pump_all(&mut self) {
        let flush_expired = self
            .drain_since
            .is_some_and(|t| t.elapsed() > DRAIN_FLUSH_GRACE);
        for idx in 0..self.conns.len() {
            let Some(c) = self.conns[idx].as_mut() else {
                continue;
            };
            let mut gone = false;
            loop {
                while c.wbuf.len() - c.wpos < 64 * 1024 {
                    match c.queue.pop_ready() {
                        Some(bytes) => {
                            c.stats.bytes_out += bytes.len() as u64;
                            self.shared
                                .totals
                                .bytes_out
                                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                            c.wbuf.extend_from_slice(&bytes);
                        }
                        None => break,
                    }
                }
                if c.wpos == c.wbuf.len() {
                    c.wbuf.clear();
                    c.wpos = 0;
                    if c.closing && c.queue.is_empty() {
                        gone = true;
                    }
                    break;
                }
                match c.stream.write(&c.wbuf[c.wpos..]) {
                    Ok(0) => {
                        gone = true;
                        break;
                    }
                    Ok(n) => c.wpos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        // During drain, give up on peers that stopped
                        // reading once every response is ready and the
                        // grace period passed.
                        if flush_expired && !c.queue.has_inflight() {
                            gone = true;
                        }
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        gone = true;
                        break;
                    }
                }
            }
            if gone {
                self.close_conn(idx);
            }
        }
    }
}
