//! Deterministic network fault injection for the served path.
//!
//! [`FaultInjector`] makes seeded per-I/O fault decisions and
//! [`FaultTransport`] applies the read-side ones to any [`Read`]er, so
//! the event loop's retry, resynchronisation, and overload machinery can
//! be chaos-tested without a flaky network:
//!
//! * **short reads** — a wakeup delivers a single byte, tearing frames
//!   and request lines across many reactor iterations;
//! * **stalled reads** (slow-loris peers) — a wakeup is skipped entirely,
//!   surfaced as a synthetic `WouldBlock` (the injected-`EAGAIN` case);
//! * **short writes** — a flush transmits only a small prefix, tearing
//!   reply frames mid-header;
//! * **stalled writes** (delayed flushes) — pending replies stay queued
//!   for another iteration;
//! * **connection resets** — a read fails with `ConnectionReset`,
//!   modelling a peer that vanished mid-conversation.
//!
//! Synthetic stalls and short reads consume a readiness edge without
//! draining the socket, which an edge-triggered poller would never
//! re-report — [`FaultTransport`] therefore records what it injected
//! (`stalled`/`shortened`) so the reactor can schedule its own retry
//! instead of waiting for an edge that will never come.
//!
//! Fault decisions come from a splitmix64 stream seeded by
//! [`NetFaultConfig::seed`] and a global operation counter, exactly like
//! the storage layer's fault store: a single-threaded run replays
//! bit-identically, and since all I/O for one server runs on the one
//! reactor thread, chaos runs are reproducible end to end.

use std::io::{self, Read};
use std::sync::atomic::{AtomicU64, Ordering};

/// What a [`FaultInjector`] injects, and how often.
///
/// All rates are probabilities in `0.0..=1.0`; the read-side rates
/// (`reset_rate + stall_read_rate + short_read_rate`) and the write-side
/// rates (`stall_write_rate + short_write_rate`) should each sum to at
/// most 1 — beyond that the earlier fault kinds in that order win.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetFaultConfig {
    /// Seed of the fault-decision stream.
    pub seed: u64,
    /// Probability that a read delivers a single byte (torn frame).
    pub short_read_rate: f64,
    /// Probability that a read is skipped with a synthetic `WouldBlock`
    /// (slow-loris peer / injected `EAGAIN`).
    pub stall_read_rate: f64,
    /// Probability that a flush transmits only a small prefix
    /// (1–8 bytes) of the queued replies.
    pub short_write_rate: f64,
    /// Probability that a flush is skipped entirely (delayed flush).
    pub stall_write_rate: f64,
    /// Probability that a read fails with `ConnectionReset`, dropping
    /// the connection mid-conversation.
    pub reset_rate: f64,
}

impl NetFaultConfig {
    /// The standard chaos mix at overall intensity `rate`: short
    /// reads/writes at `rate`, stalls at half of it, resets at a tenth —
    /// heavy enough to tear most frames at `rate = 0.3` while keeping
    /// reconnect storms bounded.
    pub fn mixed(seed: u64, rate: f64) -> Self {
        NetFaultConfig {
            seed,
            short_read_rate: rate,
            stall_read_rate: rate / 2.0,
            short_write_rate: rate,
            stall_write_rate: rate / 2.0,
            reset_rate: rate / 10.0,
        }
    }
}

/// A read-side fault decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// Read normally.
    None,
    /// Deliver a torn prefix (at most `max_bytes`, 1–64).
    Short {
        /// Byte budget for this read.
        max_bytes: usize,
    },
    /// Skip this read (synthetic `WouldBlock`).
    Stall,
    /// Fail with `ConnectionReset`.
    Reset,
}

/// A write-side fault decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Flush normally.
    None,
    /// Transmit at most `max_bytes` (1–8) of the queued replies.
    Short {
        /// Byte budget for this flush.
        max_bytes: usize,
    },
    /// Skip this flush entirely.
    Stall,
}

/// splitmix64: the standard 64-bit finalising mix.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded fault-decision source shared by every connection of one
/// server; see the module docs for the failure menu.
#[derive(Debug)]
pub struct FaultInjector {
    config: NetFaultConfig,
    /// Global operation sequence number driving the decision stream.
    seq: AtomicU64,
    injected: AtomicU64,
    short_reads: AtomicU64,
    stalled_reads: AtomicU64,
    short_writes: AtomicU64,
    stalled_writes: AtomicU64,
    resets: AtomicU64,
}

impl FaultInjector {
    /// Builds an injector rolling against `config`.
    pub fn new(config: NetFaultConfig) -> Self {
        FaultInjector {
            config,
            seq: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            short_reads: AtomicU64::new(0),
            stalled_reads: AtomicU64::new(0),
            short_writes: AtomicU64::new(0),
            stalled_writes: AtomicU64::new(0),
            resets: AtomicU64::new(0),
        }
    }

    /// Total faults injected so far (all kinds).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Injected connection resets.
    pub fn resets(&self) -> u64 {
        self.resets.load(Ordering::Relaxed)
    }

    /// Injected short reads.
    pub fn short_reads(&self) -> u64 {
        self.short_reads.load(Ordering::Relaxed)
    }

    /// Injected read stalls.
    pub fn stalled_reads(&self) -> u64 {
        self.stalled_reads.load(Ordering::Relaxed)
    }

    /// Injected short writes.
    pub fn short_writes(&self) -> u64 {
        self.short_writes.load(Ordering::Relaxed)
    }

    /// Injected write stalls.
    pub fn stalled_writes(&self) -> u64 {
        self.stalled_writes.load(Ordering::Relaxed)
    }

    /// Uniform draw in `[0, 1)` from the seeded decision stream.
    fn roll(&self) -> f64 {
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        // 53 random mantissa bits, the standard u64→f64 uniform.
        (mix64(self.config.seed ^ mix64(n)) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn note(&self, which: &AtomicU64) {
        which.fetch_add(1, Ordering::Relaxed);
        self.injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Rolls one read-side decision.
    pub fn read_fault(&self) -> ReadFault {
        let c = &self.config;
        let roll = self.roll();
        if roll < c.reset_rate {
            self.note(&self.resets);
            ReadFault::Reset
        } else if roll < c.reset_rate + c.stall_read_rate {
            self.note(&self.stalled_reads);
            ReadFault::Stall
        } else if roll < c.reset_rate + c.stall_read_rate + c.short_read_rate {
            self.note(&self.short_reads);
            // A second roll sizes the torn prefix: 1–64 bytes tears
            // frames and lines apart while still letting multi-kilobyte
            // requests through in a bounded number of read calls (a
            // 1-byte tear would make the reset rate compound per byte,
            // starving large batches at high fault rates).
            ReadFault::Short {
                max_bytes: 1 + (self.roll() * 64.0) as usize,
            }
        } else {
            ReadFault::None
        }
    }

    /// Rolls one write-side decision.
    pub fn write_fault(&self) -> WriteFault {
        let c = &self.config;
        let roll = self.roll();
        if roll < c.stall_write_rate {
            self.note(&self.stalled_writes);
            WriteFault::Stall
        } else if roll < c.stall_write_rate + c.short_write_rate {
            self.note(&self.short_writes);
            // A second roll sizes the torn prefix: 1–8 bytes, enough to
            // split both text lines and binary frame headers.
            WriteFault::Short {
                max_bytes: 1 + (self.roll() * 8.0) as usize,
            }
        } else {
            WriteFault::None
        }
    }
}

/// A [`Read`]er wrapper applying one connection read's worth of
/// injected faults, recording what it injected so edge-triggered
/// callers can schedule their own retry (see the module docs).
#[derive(Debug)]
pub struct FaultTransport<'a, S> {
    inner: &'a mut S,
    injector: Option<&'a FaultInjector>,
    /// Whether any read through this wrapper was a synthetic stall.
    pub stalled: bool,
    /// Whether any read through this wrapper was shortened.
    pub shortened: bool,
}

impl<'a, S: Read> FaultTransport<'a, S> {
    /// Wraps `inner`; `None` makes every read pass straight through.
    pub fn new(inner: &'a mut S, injector: Option<&'a FaultInjector>) -> Self {
        FaultTransport {
            inner,
            injector,
            stalled: false,
            shortened: false,
        }
    }
}

impl<S: Read> Read for FaultTransport<'_, S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let Some(inj) = self.injector else {
            return self.inner.read(buf);
        };
        match inj.read_fault() {
            ReadFault::None => self.inner.read(buf),
            ReadFault::Short { max_bytes } => {
                self.shortened = true;
                let cap = buf.len().min(max_bytes).max(1);
                self.inner.read(&mut buf[..cap])
            }
            ReadFault::Stall => {
                self.stalled = true;
                Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "injected fault: stalled read",
                ))
            }
            ReadFault::Reset => Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected fault: connection reset",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn zero_rates_inject_nothing() {
        let inj = FaultInjector::new(NetFaultConfig {
            seed: 1,
            ..NetFaultConfig::default()
        });
        for _ in 0..256 {
            assert_eq!(inj.read_fault(), ReadFault::None);
            assert_eq!(inj.write_fault(), WriteFault::None);
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let trace = |seed: u64| -> Vec<(ReadFault, WriteFault)> {
            let inj = FaultInjector::new(NetFaultConfig::mixed(seed, 0.3));
            (0..200)
                .map(|_| (inj.read_fault(), inj.write_fault()))
                .collect()
        };
        assert_eq!(trace(5), trace(5));
        assert_ne!(trace(5), trace(6));
    }

    #[test]
    fn mixed_rates_hit_every_fault_kind() {
        let inj = FaultInjector::new(NetFaultConfig::mixed(0x5EED, 0.3));
        for _ in 0..4000 {
            inj.read_fault();
            inj.write_fault();
        }
        assert!(inj.short_reads() > 0);
        assert!(inj.stalled_reads() > 0);
        assert!(inj.short_writes() > 0);
        assert!(inj.stalled_writes() > 0);
        assert!(inj.resets() > 0);
        // 0.3 + 0.15 + 0.03 read-side: roughly half of the reads fault.
        let read_faults = inj.short_reads() + inj.stalled_reads() + inj.resets();
        assert!((1200..2600).contains(&read_faults), "{read_faults}");
    }

    #[test]
    fn short_write_budget_stays_small() {
        let cfg = NetFaultConfig {
            seed: 9,
            short_write_rate: 1.0,
            ..NetFaultConfig::default()
        };
        let inj = FaultInjector::new(cfg);
        for _ in 0..100 {
            match inj.write_fault() {
                WriteFault::Short { max_bytes } => {
                    assert!((1..=8).contains(&max_bytes), "{max_bytes}")
                }
                other => panic!("expected Short, got {other:?}"),
            }
        }
    }

    #[test]
    fn transport_applies_and_records_read_faults() {
        // No injector: plain passthrough.
        let mut src = Cursor::new(vec![7u8; 16]);
        let mut t = FaultTransport::new(&mut src, None);
        let mut buf = [0u8; 16];
        assert_eq!(t.read(&mut buf).unwrap(), 16);
        assert!(!t.stalled && !t.shortened);

        // Short reads deliver a small torn prefix and set the flag.
        let inj = FaultInjector::new(NetFaultConfig {
            seed: 3,
            short_read_rate: 1.0,
            ..NetFaultConfig::default()
        });
        let mut src = Cursor::new(vec![7u8; 4096]);
        let mut t = FaultTransport::new(&mut src, Some(&inj));
        let mut big = [0u8; 4096];
        let n = t.read(&mut big).unwrap();
        assert!((1..=64).contains(&n), "torn prefix out of range: {n}");
        assert!(t.shortened);

        // Stalls surface as WouldBlock with the flag set.
        let inj = FaultInjector::new(NetFaultConfig {
            seed: 3,
            stall_read_rate: 1.0,
            ..NetFaultConfig::default()
        });
        let mut src = Cursor::new(vec![7u8; 4]);
        let mut t = FaultTransport::new(&mut src, Some(&inj));
        let err = t.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert!(t.stalled);

        // Resets surface as ConnectionReset.
        let inj = FaultInjector::new(NetFaultConfig {
            seed: 3,
            reset_rate: 1.0,
            ..NetFaultConfig::default()
        });
        let mut src = Cursor::new(vec![7u8; 4]);
        let mut t = FaultTransport::new(&mut src, Some(&inj));
        let err = t.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(inj.resets(), 1);
    }
}
