//! The TCP front-end: a thread-per-connection accept loop serving the
//! text protocol over any [`BatchEngine`].
//!
//! Design (DESIGN.md §11):
//!
//! - **Thread per connection** inside one `std::thread::scope`, so the
//!   server borrows the engine instead of owning an `Arc` web, and
//!   [`Server::serve`] returns only after every connection handler has
//!   finished — graceful drain falls out of scope rules.
//! - **Cooperative shutdown**: a [`ShutdownHandle`] flips an atomic flag
//!   and pokes the listener with a loopback connect to unblock `accept`.
//!   Connection handlers poll the flag between requests (reads carry a
//!   short timeout), finish the request in flight, send `ERR shutdown`,
//!   and close.
//! - **Bounded everything**: request lines are capped at
//!   [`MAX_LINE`](crate::protocol::MAX_LINE) (longer lines are drained
//!   and answered with `ERR oversized`), batches at
//!   [`MAX_BATCH`](crate::protocol::MAX_BATCH), and concurrent
//!   connections at [`ServerConfig::max_connections`] (excess accepts get
//!   `ERR busy` and an immediate close). Malformed input is answered, not
//!   crashed on: the accept loop holds no lock and handlers isolate all
//!   failures to their own connection.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::thread;
use std::time::Duration;

use knmatch_core::{BatchEngine, BatchOptions, BatchOutcome, BatchQuery};

use crate::protocol::{
    error_response, format_response, immutable_engine_error, parse_query, parse_request, ErrorKind,
    ReactorKind, Request, Response, ServerExtras, StatsSnapshot, MAX_BATCH, MAX_LINE,
};

/// Which readiness backend the event-loop server should run. The
/// blocking server ignores it. Defined on every platform so `ServerConfig`
/// keeps one shape; only Linux can actually satisfy `Epoll`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReactorChoice {
    /// `epoll` where the platform offers it, `poll(2)` everywhere else.
    #[default]
    Auto,
    /// The portable `poll(2)` backend — the correctness oracle.
    Poll,
    /// The Linux edge-triggered `epoll(7)` backend; binding fails with
    /// [`io::ErrorKind::Unsupported`] elsewhere.
    Epoll,
}

impl std::fmt::Display for ReactorChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReactorChoice::Auto => "auto",
            ReactorChoice::Poll => "poll",
            ReactorChoice::Epoll => "epoll",
        })
    }
}

impl std::str::FromStr for ReactorChoice {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "auto" => Ok(ReactorChoice::Auto),
            "poll" => Ok(ReactorChoice::Poll),
            "epoll" => Ok(ReactorChoice::Epoll),
            other => Err(format!(
                "unknown reactor {other:?} (expected poll|epoll|auto)"
            )),
        }
    }
}

/// Tuning knobs of [`Server::bind`] and
/// [`EventServer::bind`](crate::EventServer::bind).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent connections served; the next accept is answered with
    /// `ERR busy` and closed.
    pub max_connections: usize,
    /// How often an idle connection handler wakes up to check the
    /// shutdown flag (the socket read timeout). Blocking server only —
    /// it bounds that server's drain latency. The event loop never
    /// ticks: it sleeps until the next readiness event or the earliest
    /// pending deadline (idle eviction, drain grace), whichever comes
    /// first.
    pub poll_interval: Duration,
    /// Executor threads the event-loop server runs queries on (0 = one
    /// per available core). The blocking server ignores this — its
    /// parallelism is the engine's worker count.
    pub executors: usize,
    /// Readiness backend for the event-loop server.
    pub reactor: ReactorChoice,
    /// Per-connection idle timeout for the event-loop server: a
    /// connection making no read or write progress for this long is
    /// evicted (counted in `conns_evicted`). `None` (default) never
    /// evicts — idle keepalive connections are legal.
    pub idle_timeout: Option<Duration>,
    /// Global in-flight query budget across all connections of the
    /// event-loop server; queries past it are answered `ERR overloaded`
    /// before their payload is parsed. `0` (default) sizes the budget
    /// automatically as `max_connections` times the per-connection
    /// pipeline cap — the bound the per-connection backpressure already
    /// implied, now enforced globally.
    pub max_inflight: usize,
    /// The `retry-after-ms` hint attached to `ERR busy` and
    /// `ERR overloaded` replies — how long a well-behaved client should
    /// back off before retrying.
    pub retry_after: Duration,
    /// Seeded network fault injection on the event-loop server's
    /// connection I/O (chaos testing). `None` (default) disables every
    /// hook; the steady-state cost of the disabled hooks is one branch
    /// per read/flush.
    pub fault: Option<crate::fault::NetFaultConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            poll_interval: Duration::from_millis(50),
            executors: 0,
            reactor: ReactorChoice::Auto,
            idle_timeout: None,
            max_inflight: 0,
            retry_after: Duration::from_millis(100),
            fault: None,
        }
    }
}

/// Monotone server-lifetime counters, updated live by every connection.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) queries: AtomicU64,
    pub(crate) errors: AtomicU64,
    pub(crate) timeouts: AtomicU64,
    pub(crate) bytes_in: AtomicU64,
    pub(crate) bytes_out: AtomicU64,
    pub(crate) connections: AtomicU64,
    pub(crate) conns_peak: AtomicU64,
    pub(crate) pipeline_depth_max: AtomicU64,
    pub(crate) frames_binary: AtomicU64,
    /// [`ReactorKind`] wire code; written once when a front-end starts.
    pub(crate) reactor_backend: AtomicU64,
    pub(crate) poll_iterations: AtomicU64,
    pub(crate) events_dispatched: AtomicU64,
    pub(crate) writev_calls: AtomicU64,
    pub(crate) conns_evicted: AtomicU64,
    pub(crate) queries_shed: AtomicU64,
    pub(crate) retries_observed: AtomicU64,
    pub(crate) deadline_cancels: AtomicU64,
}

impl Counters {
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn extras(&self) -> ServerExtras {
        ServerExtras {
            conns_peak: self.conns_peak.load(Ordering::Relaxed),
            pipeline_depth_max: self.pipeline_depth_max.load(Ordering::Relaxed),
            frames_binary: self.frames_binary.load(Ordering::Relaxed),
            reactor_backend: [ReactorKind::None, ReactorKind::Poll, ReactorKind::Epoll]
                .into_iter()
                .find(|k| k.code() as u64 == self.reactor_backend.load(Ordering::Relaxed))
                .unwrap_or_default(),
            poll_iterations: self.poll_iterations.load(Ordering::Relaxed),
            events_dispatched: self.events_dispatched.load(Ordering::Relaxed),
            writev_calls: self.writev_calls.load(Ordering::Relaxed),
            conns_evicted: self.conns_evicted.load(Ordering::Relaxed),
            queries_shed: self.queries_shed.load(Ordering::Relaxed),
            retries_observed: self.retries_observed.load(Ordering::Relaxed),
            deadline_cancels: self.deadline_cancels.load(Ordering::Relaxed),
        }
    }
}

/// State shared between the accept loop, connection handlers, and
/// [`ShutdownHandle`]s. The event-loop server reuses it so both
/// front-ends expose identical shutdown and counter semantics.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) shutdown: AtomicBool,
    pub(crate) active: AtomicUsize,
    pub(crate) totals: Counters,
    pub(crate) addr: SocketAddr,
}

impl Shared {
    pub(crate) fn new(addr: SocketAddr) -> Shared {
        Shared {
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            totals: Counters::default(),
            addr,
        }
    }

    /// Flips the shutdown flag and unblocks the accept path with a
    /// loopback connect (ignored if the listener is already gone). For
    /// the event loop the connect makes the listener readable, so `poll`
    /// returns immediately — drain latency is wakeup-bound, not
    /// timeout-bound.
    pub(crate) fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A clonable handle that stops a running [`Server::serve`] loop — the
/// process's SIGTERM path calls this from any thread.
#[derive(Debug, Clone)]
pub struct ShutdownHandle(pub(crate) std::sync::Arc<Shared>);

impl ShutdownHandle {
    /// Initiates drain: stop accepting, let in-flight requests finish,
    /// close connections, return from [`Server::serve`].
    pub fn shutdown(&self) {
        self.0.request_shutdown();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.0.is_shutdown()
    }
}

/// A bound TCP server over one batch engine.
pub struct Server<E> {
    engine: E,
    listener: TcpListener,
    cfg: ServerConfig,
    shared: std::sync::Arc<Shared>,
}

impl<E: BatchEngine + Sync> Server<E> {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// wraps `engine`. Serving starts with [`serve`](Server::serve).
    ///
    /// # Errors
    ///
    /// Socket errors from bind/local-addr resolution.
    pub fn bind<A: ToSocketAddrs>(engine: E, addr: A, cfg: ServerConfig) -> io::Result<Server<E>> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            engine,
            listener,
            cfg,
            shared: std::sync::Arc::new(Shared::new(addr)),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle that stops this server from another thread.
    pub fn handle(&self) -> ShutdownHandle {
        ShutdownHandle(self.shared.clone())
    }

    /// Server-lifetime counters so far.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.totals.snapshot()
    }

    /// The served engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Runs the accept loop until a `SHUTDOWN` request or a
    /// [`ShutdownHandle`] stops it, then drains: in-flight requests
    /// finish, every connection closes, and only then does `serve`
    /// return.
    ///
    /// # Errors
    ///
    /// Fatal listener errors only; per-connection failures are contained
    /// in their handler thread.
    pub fn serve(&self) -> io::Result<()> {
        let shared = &self.shared;
        thread::scope(|scope| {
            for stream in self.listener.incoming() {
                if shared.is_shutdown() {
                    break;
                }
                let stream = match stream {
                    Ok(s) => s,
                    // A single failed accept (client vanished between
                    // SYN and accept) must not stop the server.
                    Err(_) => continue,
                };
                if shared.active.load(Ordering::SeqCst) >= self.cfg.max_connections {
                    reject_busy(stream, shared, &self.cfg);
                    continue;
                }
                let now_active = shared.active.fetch_add(1, Ordering::SeqCst) as u64 + 1;
                shared.totals.connections.fetch_add(1, Ordering::Relaxed);
                shared
                    .totals
                    .conns_peak
                    .fetch_max(now_active, Ordering::Relaxed);
                let engine = &self.engine;
                let cfg = &self.cfg;
                scope.spawn(move || {
                    // Connection errors (reset, broken pipe) end this
                    // handler, never the server.
                    let _ = handle_connection(stream, engine, shared, cfg);
                    shared.active.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Ok(())
        })
    }
}

/// Answers an over-limit accept with `ERR busy` (carrying the
/// `retry-after-ms` backoff hint) and closes it.
fn reject_busy(stream: TcpStream, shared: &Shared, cfg: &ServerConfig) {
    let line = format_response(&Response::Error {
        kind: ErrorKind::Busy,
        message: crate::protocol::with_retry_after(
            "connection limit reached",
            cfg.retry_after.as_millis() as u64,
        ),
    });
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    if writeln!(stream, "{line}").is_ok() {
        shared
            .totals
            .bytes_out
            .fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
    }
    shared.totals.errors.fetch_add(1, Ordering::Relaxed);
    shared
        .totals
        .retries_observed
        .fetch_add(1, Ordering::Relaxed);
}

/// What one capped line read produced.
enum LineEvent {
    /// A complete line within [`MAX_LINE`] (newline stripped).
    Line(String),
    /// A complete line longer than [`MAX_LINE`]; its bytes were drained.
    Oversized,
    /// The read timeout expired without completing a line.
    TimedOut,
    /// The peer closed the connection.
    Eof,
}

/// A bounded, timeout-tolerant line reader: lines over [`MAX_LINE`] are
/// consumed (so the stream stays framed) but reported as
/// [`LineEvent::Oversized`], and a read timeout surfaces as
/// [`LineEvent::TimedOut`] with any partial line kept for the next call.
struct LineReader<R> {
    inner: BufReader<R>,
    partial: Vec<u8>,
    overflowed: bool,
    bytes: u64,
}

impl<R: Read> LineReader<R> {
    fn new(inner: R) -> Self {
        LineReader {
            inner: BufReader::new(inner),
            partial: Vec::new(),
            overflowed: false,
            bytes: 0,
        }
    }

    fn read_line(&mut self) -> io::Result<LineEvent> {
        loop {
            let available = match self.inner.fill_buf() {
                Ok(b) => b,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(LineEvent::TimedOut)
                }
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                // A partial line at EOF is dropped: without its newline it
                // was never a complete request.
                return Ok(LineEvent::Eof);
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    let overflow = self.overflowed || self.partial.len() + pos > MAX_LINE;
                    if !overflow {
                        self.partial.extend_from_slice(&available[..pos]);
                    }
                    self.inner.consume(pos + 1);
                    self.bytes += pos as u64 + 1;
                    self.overflowed = false;
                    let line = String::from_utf8_lossy(&self.partial).into_owned();
                    self.partial.clear();
                    return Ok(if overflow {
                        LineEvent::Oversized
                    } else {
                        LineEvent::Line(line)
                    });
                }
                None => {
                    let n = available.len();
                    if !self.overflowed && self.partial.len() + n > MAX_LINE {
                        self.overflowed = true;
                        self.partial.clear();
                    }
                    if !self.overflowed {
                        self.partial.extend_from_slice(available);
                    }
                    self.inner.consume(n);
                    self.bytes += n as u64;
                }
            }
        }
    }
}

/// Per-connection handler state: the response writer plus live counter
/// mirrors (connection-local and server totals updated together).
struct Conn<'a, W: Write> {
    writer: BufWriter<W>,
    stats: StatsSnapshot,
    totals: &'a Counters,
}

impl<'a, W: Write> Conn<'a, W> {
    fn send(&mut self, response: &Response) -> io::Result<()> {
        if let Response::Error { kind, .. } = response {
            self.stats.errors += 1;
            self.totals.errors.fetch_add(1, Ordering::Relaxed);
            if *kind == ErrorKind::Timeout {
                self.stats.timeouts += 1;
                self.totals.timeouts.fetch_add(1, Ordering::Relaxed);
            }
        }
        let line = format_response(response);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.stats.bytes_out += line.len() as u64 + 1;
        self.totals
            .bytes_out
            .fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
        Ok(())
    }

    fn note_query(&mut self) {
        self.stats.queries += 1;
        self.totals.queries.fetch_add(1, Ordering::Relaxed);
    }

    fn note_read(&mut self, reader_total: u64) {
        let new = reader_total - self.stats.bytes_in;
        self.stats.bytes_in = reader_total;
        self.totals.bytes_in.fetch_add(new, Ordering::Relaxed);
    }
}

/// Serves one connection until `QUIT`, EOF, shutdown, or a socket error.
fn handle_connection<E: BatchEngine + Sync>(
    stream: TcpStream,
    engine: &E,
    shared: &Shared,
    cfg: &ServerConfig,
) -> io::Result<()> {
    stream.set_read_timeout(Some(cfg.poll_interval))?;
    stream.set_nodelay(true).ok();
    let writer = stream.try_clone()?;
    let mut reader = LineReader::new(stream);
    let mut conn = Conn {
        writer: BufWriter::new(writer),
        stats: StatsSnapshot {
            connections: 1,
            ..StatsSnapshot::default()
        },
        totals: &shared.totals,
    };
    // Connection-scoped batch options, adjusted by DEADLINE / FAILFAST.
    let mut opts = BatchOptions::default();

    loop {
        if shared.is_shutdown() {
            let _ = conn.send(&Response::Error {
                kind: ErrorKind::Shutdown,
                message: "server draining".into(),
            });
            break;
        }
        let line = match reader.read_line()? {
            LineEvent::TimedOut => continue,
            LineEvent::Eof => break,
            LineEvent::Oversized => {
                conn.note_read(reader.bytes);
                conn.send(&Response::Error {
                    kind: ErrorKind::Oversized,
                    message: format!("request line exceeds {MAX_LINE} bytes"),
                })?;
                conn.writer.flush()?;
                continue;
            }
            LineEvent::Line(line) => line,
        };
        conn.note_read(reader.bytes);
        match parse_request(&line) {
            Err(e) => conn.send(&Response::Error {
                kind: ErrorKind::Parse,
                message: e.0,
            })?,
            Ok(Request::Query(q)) => {
                run_and_respond(engine, &[Ok(q)], &opts, false, &mut conn)?;
            }
            Ok(Request::Batch(count)) => {
                if count > MAX_BATCH {
                    conn.send(&Response::Error {
                        kind: ErrorKind::Proto,
                        message: format!("BATCH count {count} exceeds {MAX_BATCH}"),
                    })?;
                } else if !read_batch(&mut reader, engine, count, &opts, shared, &mut conn)? {
                    break;
                }
            }
            Ok(Request::Deadline(ms)) => {
                opts.deadline = (ms > 0).then(|| Duration::from_millis(ms));
                conn.send(&Response::Deadline(ms))?;
            }
            Ok(Request::FailFast(on)) => {
                opts.fail_fast = on;
                conn.send(&Response::FailFast(on))?;
            }
            Ok(Request::Planner(mode)) => {
                // Connection-scoped like DEADLINE/FAILFAST; only
                // planner-capable engines read it (others ignore the
                // option), but acknowledging either way keeps clients
                // backend-agnostic.
                opts.planner = Some(mode);
                conn.send(&Response::Planner(mode))?;
            }
            Ok(Request::Stats) => {
                let response = Response::Stats {
                    conn: conn.stats,
                    server: shared.totals.snapshot(),
                    plans: engine.plan_counts(),
                    // The blocking front-end neither pipelines nor speaks
                    // binary; those extras stay 0 by construction.
                    extras: Some(shared.totals.extras()),
                    version: engine.writer().map(|w| w.version_stats().into()),
                };
                conn.send(&response)?;
            }
            Ok(Request::Ping) => conn.send(&Response::Pong)?,
            Ok(Request::Quit) => {
                conn.send(&Response::Bye)?;
                break;
            }
            Ok(Request::Shutdown) => {
                conn.send(&Response::ShuttingDown)?;
                shared.request_shutdown();
                break;
            }
            Ok(Request::Insert { key, point }) => match engine.writer() {
                None => conn.send(&immutable_engine_error())?,
                Some(w) => {
                    let response = match w.insert(key, &point) {
                        Ok(epoch) => Response::Inserted(epoch),
                        Err(e) => error_response(&e),
                    };
                    conn.send(&response)?;
                    // Opportunistic maintenance on the writing thread:
                    // readers only ever see published views, so a merge
                    // here costs this connection latency, nobody else.
                    if w.needs_maintenance() {
                        let _ = w.maintain();
                    }
                }
            },
            Ok(Request::Delete(key)) => match engine.writer() {
                None => conn.send(&immutable_engine_error())?,
                Some(w) => {
                    let response = match w.remove(key) {
                        Ok(epoch) => Response::Deleted(epoch),
                        Err(e) => error_response(&e),
                    };
                    conn.send(&response)?;
                    if w.needs_maintenance() {
                        let _ = w.maintain();
                    }
                }
            },
            Ok(Request::Epoch) => match engine.writer() {
                None => conn.send(&immutable_engine_error())?,
                Some(w) => {
                    let s = w.version_stats();
                    conn.send(&Response::Epoch {
                        epoch: s.epoch,
                        live: s.live as u64,
                        delta: s.delta_len as u64,
                        runs: s.runs as u64,
                    })?;
                }
            },
            Ok(Request::Seal) => match engine.writer() {
                None => conn.send(&immutable_engine_error())?,
                Some(w) => {
                    let response = match w.seal() {
                        Ok(epoch) => Response::Sealed(epoch),
                        Err(e) => error_response(&e),
                    };
                    conn.send(&response)?;
                }
            },
        }
        conn.writer.flush()?;
    }
    conn.writer.flush()
}

/// Reads the `count` query lines of a `BATCH`, answers them, and writes
/// the `DONE` trailer. Returns `false` when the connection must close
/// (EOF mid-batch, or shutdown arrived while reading).
fn read_batch<R: Read, E: BatchEngine + Sync, W: Write>(
    reader: &mut LineReader<R>,
    engine: &E,
    count: usize,
    opts: &BatchOptions,
    shared: &Shared,
    conn: &mut Conn<'_, W>,
) -> io::Result<bool> {
    // Each slot is either a parsed query or the error response its line
    // already earned; slot order is response order.
    let mut slots: Vec<Result<BatchQuery, Response>> = Vec::with_capacity(count);
    while slots.len() < count {
        match reader.read_line()? {
            LineEvent::TimedOut => {
                // Mid-batch shutdown: abandon the half-read batch rather
                // than waiting forever for its remaining lines.
                if shared.is_shutdown() {
                    conn.note_read(reader.bytes);
                    return Ok(false);
                }
            }
            LineEvent::Eof => {
                conn.note_read(reader.bytes);
                return Ok(false);
            }
            LineEvent::Oversized => slots.push(Err(Response::Error {
                kind: ErrorKind::Oversized,
                message: format!("query line exceeds {MAX_LINE} bytes"),
            })),
            LineEvent::Line(line) => slots.push(match parse_query(&line) {
                Ok(q) => Ok(q),
                Err(e) => Err(Response::Error {
                    kind: ErrorKind::Parse,
                    message: e.0,
                }),
            }),
        }
    }
    conn.note_read(reader.bytes);
    run_and_respond(engine, &slots, opts, true, conn)?;
    Ok(true)
}

/// Runs the parseable slots as one engine batch and writes one response
/// per slot, in slot order, followed by a `DONE` trailer for `BATCH`
/// submissions (`trailer`).
fn run_and_respond<E: BatchEngine + Sync, W: Write>(
    engine: &E,
    slots: &[Result<BatchQuery, Response>],
    opts: &BatchOptions,
    trailer: bool,
    conn: &mut Conn<'_, W>,
) -> io::Result<()> {
    let queries: Vec<BatchQuery> = slots
        .iter()
        .filter_map(|s| s.as_ref().ok())
        .cloned()
        .collect();
    let mut outcomes = engine.run_with(&queries, opts).into_iter();
    let (mut ok, mut failed) = (0u64, 0u64);
    for slot in slots {
        conn.note_query();
        let response = match slot {
            Err(pre) => pre.clone(),
            Ok(_) => match outcomes.next().expect("one outcome per parsed query") {
                Ok(outcome) => Response::Answer(outcome.into_answer()),
                Err(e) => error_response(&e),
            },
        };
        if matches!(response, Response::Answer(_)) {
            ok += 1;
        } else {
            failed += 1;
        }
        conn.send(&response)?;
    }
    if trailer {
        conn.send(&Response::Done { ok, failed })?;
    }
    conn.writer.flush()
}
