//! The cost-based per-query planner backend (DESIGN.md §12).
//!
//! [`PlannedEngine`] holds every exact in-memory backend at once — the AD
//! algorithm over sorted columns, the VA-file filter-and-refine engine,
//! the kernel-unrolled scan, and the IGrid (equi-depth) filter — and
//! routes **each query of a batch** to one of them. With
//! [`PlannerMode::Auto`] the route comes from the in-memory cost model
//! ([`plan_in_memory`]), which reproduces the paper's Figure 12 crossover
//! live per request: AD wins at small `n`, the filter backends in the
//! middle, and the plain scan as `n1` approaches `d`. The forced modes
//! (`ad`, `vafile`, `scan`, `igrid`) pin one backend for experiments.
//!
//! Every backend answers the exact query kinds bit-identically to the
//! sequential oracle, so planning changes cost, never answers — the
//! property the randomized cross-check suite pins down.
//!
//! Routing decisions are tallied into a [`PlanTally`] surfaced through
//! [`BatchEngine::plan_counts`] and the server's `STATS` verb.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use knmatch_core::ad::{validate_eps, validate_params};
use knmatch_core::{
    isolate_panic, note_outcome, run_batch, sample_threshold, AdStats, BatchAnswer, BatchEngine,
    BatchOptions, BatchQuery, Dataset, FilterScratch, PlanTally, PlannerMode, QueryEngine,
    Result as CoreResult, ScanEngine, Scratch, SortedColumns,
};
use knmatch_igrid::IGridEngine;
use knmatch_storage::{plan_in_memory, BackendChoice, MemCostModel, MemPlanChoice, MemPlanInputs};
use knmatch_vafile::VaEngine;

/// Points sampled by the planner's candidate-fraction probe (a strided
/// dry-run of the VA filter; cheap relative to any backend's full pass).
pub const PLAN_FRACTION_SAMPLE: usize = 256;

/// Per-worker working memory for a planned batch: the AD scratch and the
/// filter scratch side by side, both armed with the batch's deadline and
/// cancellation control.
#[derive(Debug, Default)]
struct PlanScratch {
    ad: Scratch,
    filter: FilterScratch,
}

/// A [`BatchEngine`] that picks AD, VA-file, or scan per query at request
/// time (see the module docs). Build it once per dataset; it shares one
/// [`Dataset`] across all four backends and adds only the quantised cell
/// arrays and sorted columns on top.
#[derive(Debug)]
pub struct PlannedEngine {
    data: Arc<Dataset>,
    cols: Arc<SortedColumns>,
    ad: QueryEngine,
    va: VaEngine,
    scan: ScanEngine,
    igrid: IGridEngine,
    workers: usize,
    default_mode: PlannerMode,
    model: MemCostModel,
    tally_ad: AtomicU64,
    tally_vafile: AtomicU64,
    tally_scan: AtomicU64,
    tally_igrid: AtomicU64,
}

impl PlannedEngine {
    /// A planner over `ds` with one batch worker per available CPU and the
    /// `auto` mode as the per-connection default.
    pub fn new(ds: &Dataset) -> Self {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::with_workers(ds, workers, PlannerMode::Auto)
    }

    /// A planner with an explicit worker count (clamped to ≥ 1) and
    /// default mode. The inner backends run single-threaded on the batch
    /// workers' threads — parallelism lives in the batch loop, exactly as
    /// in the plain in-memory engine.
    pub fn with_workers(ds: &Dataset, workers: usize, default_mode: PlannerMode) -> Self {
        let data = Arc::new(ds.clone());
        let cols = Arc::new(SortedColumns::build(ds));
        PlannedEngine {
            ad: QueryEngine::with_workers(Arc::clone(&cols), 1),
            va: VaEngine::with_workers(Arc::clone(&data), 1),
            scan: ScanEngine::with_workers(Arc::clone(&data), 1),
            igrid: IGridEngine::new(Arc::clone(&data)),
            data,
            cols,
            workers: workers.max(1),
            default_mode,
            model: MemCostModel::default(),
            tally_ad: AtomicU64::new(0),
            tally_vafile: AtomicU64::new(0),
            tally_scan: AtomicU64::new(0),
            tally_igrid: AtomicU64::new(0),
        }
    }

    /// The served dataset.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.data
    }

    /// The sorted-column organisation the AD backend (and the planner's
    /// selectivity probe) runs over.
    pub fn columns(&self) -> &Arc<SortedColumns> {
        &self.cols
    }

    /// The mode used when a batch carries no explicit override.
    pub fn default_mode(&self) -> PlannerMode {
        self.default_mode
    }

    /// The cost model consulted by [`PlannerMode::Auto`].
    pub fn cost_model(&self) -> &MemCostModel {
        &self.model
    }

    /// Prices one query against the cost model without running it:
    /// validates the parameters, derives the pruning threshold `ε̂` from
    /// the evenly-spaced sample ([`sample_threshold`]), counts the sorted-
    /// column entries within `±ε̂` of the query per dimension (the AD
    /// algorithm's frontier work), probes the VA filter's candidate
    /// fraction on a stride of points, and feeds all of it to
    /// [`plan_in_memory`].
    ///
    /// Deterministic: every estimate is a pure function of the data and
    /// the query, so the same query always gets the same plan — which is
    /// what lets tests assert the tally matches re-planned predictions.
    ///
    /// # Errors
    ///
    /// The same validation every backend performs (dimension mismatch,
    /// `k`/`n` out of range, invalid `eps`) — identical errors, identical
    /// precedence, so an invalid query fails the same way whether it is
    /// planned or dispatched directly.
    pub fn plan_for(&self, query: &BatchQuery) -> CoreResult<MemPlanChoice> {
        let (d, c) = (self.data.dims(), self.data.len());
        let (q, eps_hat, min_hits) = match query {
            BatchQuery::KnMatch { query, k, n } => {
                validate_params(query, d, c, *k, *n, *n)?;
                (query, sample_threshold(&self.data, query, *k, *n), *n)
            }
            BatchQuery::Frequent { query, k, n0, n1 } => {
                validate_params(query, d, c, *k, *n0, *n1)?;
                // τ at the loosest level covers every per-n answer set;
                // the hit floor is the tightest level.
                (query, sample_threshold(&self.data, query, *k, *n1), *n0)
            }
            BatchQuery::EpsMatch { query, eps, n } => {
                validate_params(query, d, c, 1, *n, *n)?;
                validate_eps(*eps)?;
                (query, *eps, *n)
            }
        };
        // AD touches, per dimension, the sorted entries within ε̂ of the
        // query before the n-th smallest difference crosses the answer
        // threshold; two binary searches per column price that exactly.
        let mut ad_attrs = 0u64;
        for (j, &qv) in q.iter().enumerate() {
            let vals = self.cols.column(j).values();
            let lo = vals.partition_point(|&v| v < qv - eps_hat);
            let hi = vals.partition_point(|&v| v <= qv + eps_hat);
            // Saturating: a negative or NaN ε̂ (an invalid eps the backend
            // will reject) yields an empty, not underflowing, band.
            ad_attrs += hi.saturating_sub(lo) as u64;
        }
        // When AD already beats the scan and the VA filter's *floor* (the
        // cell pass alone, before any refine), no candidate fraction can
        // change the outcome — skip the probe. This keeps planning cheap
        // exactly where AD queries are cheapest (small n), and stays
        // deterministic: the probe is only skipped when its value cannot
        // affect the choice.
        let floor = MemPlanInputs {
            cardinality: c,
            dims: d,
            ad_attrs,
            candidate_fraction: 0.0,
        };
        let at_floor = plan_in_memory(&floor, &self.model);
        if at_floor.backend == BackendChoice::Ad {
            return Ok(at_floor);
        }
        let candidate_fraction =
            self.va
                .band()
                .estimate_candidate_fraction(q, eps_hat, min_hits, PLAN_FRACTION_SAMPLE);
        let inputs = MemPlanInputs {
            cardinality: c,
            dims: d,
            ad_attrs,
            candidate_fraction,
        };
        Ok(plan_in_memory(&inputs, &self.model))
    }

    fn bump(&self, choice: BackendChoice) {
        match choice {
            BackendChoice::Ad => &self.tally_ad,
            BackendChoice::VaFile => &self.tally_vafile,
            BackendChoice::Scan => &self.tally_scan,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// The backends' shared validation, applied before a routing decision
    /// is tallied: invalid queries fail their slot without ever counting
    /// as a plan, in every mode.
    fn validate(&self, query: &BatchQuery) -> CoreResult<()> {
        let (d, c) = (self.data.dims(), self.data.len());
        match query {
            BatchQuery::KnMatch { query, k, n } => validate_params(query, d, c, *k, *n, *n),
            BatchQuery::Frequent { query, k, n0, n1 } => validate_params(query, d, c, *k, *n0, *n1),
            BatchQuery::EpsMatch { query, eps, n } => {
                validate_params(query, d, c, 1, *n, *n)?;
                validate_eps(*eps)
            }
        }
    }

    /// Executes one query under `mode` on the calling thread, tallying the
    /// routing decision. Forced modes tally too (the counters answer "what
    /// ran", not "what `auto` would have picked").
    fn execute(
        &self,
        query: &BatchQuery,
        mode: PlannerMode,
        scratch: &mut PlanScratch,
    ) -> CoreResult<(BatchAnswer, AdStats)> {
        self.validate(query)?;
        let choice = match mode {
            PlannerMode::Auto => self.plan_for(query)?.backend,
            PlannerMode::Ad => BackendChoice::Ad,
            PlannerMode::VaFile => BackendChoice::VaFile,
            PlannerMode::Scan => BackendChoice::Scan,
            PlannerMode::IGrid => {
                self.tally_igrid.fetch_add(1, Ordering::Relaxed);
                return self.igrid.execute(query, &mut scratch.filter);
            }
        };
        self.bump(choice);
        match choice {
            BackendChoice::Ad => self.ad.execute(query, &mut scratch.ad),
            BackendChoice::VaFile => self.va.execute(query, &mut scratch.filter),
            BackendChoice::Scan => self.scan.execute(query, &mut scratch.filter),
        }
    }
}

impl BatchEngine for PlannedEngine {
    type Outcome = (BatchAnswer, AdStats);

    fn workers(&self) -> usize {
        self.workers
    }

    fn run_with(
        &self,
        queries: &[BatchQuery],
        opts: &BatchOptions,
    ) -> Vec<CoreResult<(BatchAnswer, AdStats)>> {
        let control = opts.arm();
        let mode = opts.planner.unwrap_or(self.default_mode);
        run_batch(
            self.workers,
            queries.len(),
            || PlanScratch {
                ad: control.scratch(),
                filter: FilterScratch::with_control(control.clone()),
            },
            |scratch, i| {
                let out = isolate_panic(|| self.execute(&queries[i], mode, scratch));
                note_outcome(&control, &out);
                out
            },
        )
    }

    fn plan_counts(&self) -> Option<PlanTally> {
        Some(PlanTally {
            ad: self.tally_ad.load(Ordering::Relaxed),
            vafile: self.tally_vafile.load(Ordering::Relaxed),
            scan: self.tally_scan.load(Ordering::Relaxed),
            igrid: self.tally_igrid.load(Ordering::Relaxed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knmatch_core::naive::{frequent_k_n_match_scan, k_n_match_scan};

    fn pseudo_dataset(c: usize, d: usize, seed: u64) -> Dataset {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let rows: Vec<Vec<f64>> = (0..c).map(|_| (0..d).map(|_| next()).collect()).collect();
        Dataset::from_rows(&rows).unwrap()
    }

    fn mixed_batch(d: usize) -> Vec<BatchQuery> {
        let q: Vec<f64> = (0..d).map(|j| 0.1 + 0.8 * j as f64 / d as f64).collect();
        vec![
            BatchQuery::KnMatch {
                query: q.clone(),
                k: 5,
                n: 1,
            },
            BatchQuery::KnMatch {
                query: q.clone(),
                k: 3,
                n: d,
            },
            BatchQuery::Frequent {
                query: q.clone(),
                k: 4,
                n0: 1,
                n1: d,
            },
            BatchQuery::EpsMatch {
                query: q,
                eps: 0.08,
                n: (d / 2).max(1),
            },
        ]
    }

    fn oracle(ds: &Dataset, query: &BatchQuery) -> BatchAnswer {
        match query {
            BatchQuery::KnMatch { query, k, n } => {
                BatchAnswer::KnMatch(k_n_match_scan(ds, query, *k, *n).unwrap())
            }
            BatchQuery::Frequent { query, k, n0, n1 } => {
                BatchAnswer::Frequent(frequent_k_n_match_scan(ds, query, *k, *n0, *n1).unwrap())
            }
            BatchQuery::EpsMatch { query, eps, n } => {
                let full = k_n_match_scan(ds, query, ds.len(), *n).unwrap();
                BatchAnswer::EpsMatch(knmatch_core::KnMatchResult {
                    n: *n,
                    entries: full
                        .entries
                        .into_iter()
                        .filter(|e| e.diff <= *eps)
                        .collect(),
                })
            }
        }
    }

    #[test]
    fn every_mode_matches_the_oracle_bitwise() {
        let ds = pseudo_dataset(400, 6, 77);
        let batch = mixed_batch(6);
        let engine = PlannedEngine::with_workers(&ds, 3, PlannerMode::Auto);
        for mode in [
            PlannerMode::Auto,
            PlannerMode::Ad,
            PlannerMode::VaFile,
            PlannerMode::Scan,
            PlannerMode::IGrid,
        ] {
            let opts = BatchOptions {
                planner: Some(mode),
                ..BatchOptions::default()
            };
            for (q, r) in batch.iter().zip(engine.run_with(&batch, &opts)) {
                let (answer, _) = r.unwrap();
                assert_eq!(answer, oracle(&ds, q), "mode={mode}");
            }
        }
    }

    #[test]
    fn tally_matches_replanned_predictions() {
        let ds = pseudo_dataset(600, 8, 13);
        let batch = mixed_batch(8);
        let engine = PlannedEngine::with_workers(&ds, 2, PlannerMode::Auto);
        let mut want = PlanTally::default();
        for q in &batch {
            match engine.plan_for(q).unwrap().backend {
                BackendChoice::Ad => want.ad += 1,
                BackendChoice::VaFile => want.vafile += 1,
                BackendChoice::Scan => want.scan += 1,
            }
        }
        for r in engine.run(&batch) {
            r.unwrap();
        }
        assert_eq!(engine.plan_counts(), Some(want));
        assert_eq!(want.total(), batch.len() as u64);
    }

    #[test]
    fn forced_modes_tally_their_backend() {
        let ds = pseudo_dataset(100, 4, 5);
        let engine = PlannedEngine::with_workers(&ds, 1, PlannerMode::Auto);
        let batch = mixed_batch(4);
        let force = |mode| BatchOptions {
            planner: Some(mode),
            ..BatchOptions::default()
        };
        for r in engine.run_with(&batch, &force(PlannerMode::Scan)) {
            r.unwrap();
        }
        for r in engine.run_with(&batch, &force(PlannerMode::IGrid)) {
            r.unwrap();
        }
        let tally = engine.plan_counts().unwrap();
        assert_eq!(tally.scan, batch.len() as u64);
        assert_eq!(tally.igrid, batch.len() as u64);
        assert_eq!(tally.ad + tally.vafile, 0);
    }

    #[test]
    fn invalid_queries_fail_their_slot_in_every_mode() {
        let ds = pseudo_dataset(50, 3, 3);
        let engine = PlannedEngine::with_workers(&ds, 1, PlannerMode::Auto);
        let bad = vec![BatchQuery::KnMatch {
            query: vec![0.0; 2],
            k: 1,
            n: 1,
        }];
        for mode in [PlannerMode::Auto, PlannerMode::Ad, PlannerMode::VaFile] {
            let opts = BatchOptions {
                planner: Some(mode),
                ..BatchOptions::default()
            };
            assert!(engine.run_with(&bad, &opts)[0].is_err(), "mode={mode}");
        }
    }

    #[test]
    fn default_mode_applies_without_override() {
        let ds = pseudo_dataset(80, 4, 21);
        let engine = PlannedEngine::with_workers(&ds, 1, PlannerMode::Scan);
        let batch = mixed_batch(4);
        for r in engine.run(&batch) {
            r.unwrap();
        }
        assert_eq!(engine.plan_counts().unwrap().scan, batch.len() as u64);
    }
}
