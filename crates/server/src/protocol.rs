//! The newline-delimited text protocol spoken between `knmatch serve` and
//! its clients (DESIGN.md §11).
//!
//! One request per line, one response line per request (a `BATCH` request
//! is followed by its query lines and answered by one response line per
//! query plus a `DONE` trailer). Everything is UTF-8 text; floats are
//! rendered with Rust's shortest round-trip `Display`, so a value parsed
//! back with `str::parse::<f64>` is bit-identical to the one the server
//! computed — the cross-check tests compare served answers to direct
//! engine calls with `==`, not with a tolerance.
//!
//! ## Requests
//!
//! ```text
//! KNM <k> <n> <v,v,...>          k-n-match
//! FREQ <k> <n0> <n1> <v,v,...>   frequent k-n-match over n ∈ [n0, n1]
//! EPS <eps> <n> <v,v,...>        ε-n-match
//! BATCH <count>                  next <count> lines are query lines
//! DEADLINE <ms>                  per-query budget for later queries (0 clears)
//! FAILFAST <0|1>                 fail-fast for later BATCH runs
//! PLANNER <mode>                 backend choice for later queries
//!                                (auto|ad|vafile|scan|igrid; planner-capable
//!                                engines only — others ignore it)
//! STATS                          connection + server counters
//! PING                           liveness probe
//! QUIT                           close this connection
//! SHUTDOWN                       drain and stop the whole server
//! INSERT <key> <v,v,...>         upsert one point (mutable engines only)
//! DELETE <key>                   remove one point (mutable engines only)
//! EPOCH                          current version counters
//! SEAL                           seal the write delta into a run
//! ```
//!
//! ## Responses
//!
//! ```text
//! OK KNM <n> <pid:diff,...|->
//! OK EPS <n> <pid:diff,...|->
//! OK FREQ <n0> <n1> <pid:count,...|-> <n=pid:diff,...;...|->
//! OK DEADLINE <ms> | OK FAILFAST <0|1> | OK PLANNER <mode>
//! OK PONG | OK BYE | OK SHUTDOWN
//! OK INSERT <epoch> | OK DELETE <epoch> | OK SEAL <epoch>
//! OK EPOCH <epoch> <live> <delta> <runs>
//! OK STATS <conn six counters> <server six counters> [optional groups]
//! DONE <ok> <failed>
//! ERR <kind> <message...>
//! ```
//!
//! A `STATS` line is twelve mandatory labelled counters (the connection
//! and server scopes) followed by optional labelled groups, each
//! declared once in [`STATS_GROUPS`](self) and rendered/parsed/encoded
//! from that single table: the four plan counters (`plans_ad= …`,
//! cost-based planner routing), the reactor extras (`conns_peak= …`,
//! split into the legacy three-counter group, the backend group and the
//! robustness group so lines from older servers still parse), and the
//! version counters of a mutable engine (`epoch= live= delta= runs=
//! tombstones= writes= merges=`). Groups are self-describing through
//! their leading label, so every historical field count
//! (12/15/16/19/23/27) and the new version-bearing shapes parse with
//! the same walk.
//!
//! ## Binary frames
//!
//! Alongside the text protocol the same [`Request`]/[`Response`] values
//! travel as length-prefixed binary frames (DESIGN.md §13), sniffed per
//! frame on the first byte: [`FRAME_MAGIC`] (`0xA7`) never starts a text
//! line, so one connection may freely interleave text lines and binary
//! frames. Frame layout:
//!
//! ```text
//! +-------+------+-------------+----------------------+
//! | magic | kind | len u32 LE  | payload (len bytes)  |
//! +-------+------+-------------+----------------------+
//! ```
//!
//! Floats cross as `f64::to_bits` little-endian words, so binary answers
//! are bit-identical to direct engine results by construction — no
//! formatting or parsing on the hot path. Binary requests get binary
//! responses; the `ERR` taxonomy is shared with the text protocol. A
//! frame whose `len` exceeds [`MAX_FRAME`] is drained and answered with
//! `ERR oversized`, mirroring the [`MAX_LINE`] rule for text.
//!
//! `ERR` kinds: `parse` (malformed request), `query` (validation or
//! storage failure), `timeout` (deadline exceeded), `cancelled`
//! (fail-fast), `oversized` (line longer than [`MAX_LINE`]), `busy`
//! (connection limit), `proto` (valid verb, unusable arguments, e.g. a
//! `BATCH` count over [`MAX_BATCH`]), `shutdown` (server is draining).
//! Errors never close the connection except `busy` and `shutdown`.

use std::fmt::Write as _;

use knmatch_core::{
    BatchAnswer, BatchQuery, FrequentEntry, FrequentResult, KnMatchError, KnMatchResult,
    MatchEntry, PlanTally, PlannerMode,
};

/// Longest accepted request line in bytes (newline excluded). Longer
/// lines are drained and answered with `ERR oversized` — they never
/// poison the connection or the process.
pub const MAX_LINE: usize = 64 * 1024;

/// Largest accepted `BATCH <count>`. A bigger count is answered with
/// `ERR proto` before any query line is read.
pub const MAX_BATCH: usize = 65_536;

/// A malformed or unrepresentable protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ProtoError {}

fn err(msg: impl Into<String>) -> ProtoError {
    ProtoError(msg.into())
}

/// The error categories of an `ERR` response line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line did not parse.
    Parse,
    /// The query failed validation or execution.
    Query,
    /// The query ran past its deadline.
    Timeout,
    /// The query was cancelled by a fail-fast batch.
    Cancelled,
    /// The request line exceeded [`MAX_LINE`].
    Oversized,
    /// The server's connection limit was reached; the connection closes.
    Busy,
    /// A structurally valid request with unusable arguments.
    Proto,
    /// The server is draining; the connection closes.
    Shutdown,
    /// The server shed this query under load; the connection stays open
    /// and the request may be retried (the message carries a
    /// `retry-after-ms=<N>` hint, see [`retry_after_ms`]).
    Overloaded,
}

impl ErrorKind {
    /// The wire token of this kind.
    pub fn token(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Query => "query",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::Oversized => "oversized",
            ErrorKind::Busy => "busy",
            ErrorKind::Proto => "proto",
            ErrorKind::Shutdown => "shutdown",
            ErrorKind::Overloaded => "overloaded",
        }
    }

    /// Parses a wire token back into a kind.
    pub fn from_token(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "parse" => ErrorKind::Parse,
            "query" => ErrorKind::Query,
            "timeout" => ErrorKind::Timeout,
            "cancelled" => ErrorKind::Cancelled,
            "oversized" => ErrorKind::Oversized,
            "busy" => ErrorKind::Busy,
            "proto" => ErrorKind::Proto,
            "shutdown" => ErrorKind::Shutdown,
            "overloaded" => ErrorKind::Overloaded,
            _ => return None,
        })
    }

    /// The category a failed query's [`KnMatchError`] maps to.
    pub fn of_error(e: &KnMatchError) -> ErrorKind {
        match e {
            KnMatchError::DeadlineExceeded => ErrorKind::Timeout,
            KnMatchError::Cancelled => ErrorKind::Cancelled,
            _ => ErrorKind::Query,
        }
    }
}

/// Appends a machine-readable retry hint to an `ERR busy`/`ERR
/// overloaded` message. Old clients see plain prose; new clients pull
/// the hint back out with [`retry_after_ms`] and use it as a backoff
/// floor — the hint rides inside the message so the wire shape of `ERR`
/// lines and frames is unchanged.
pub fn with_retry_after(message: &str, ms: u64) -> String {
    format!("{message}; retry-after-ms={ms}")
}

/// Extracts the `retry-after-ms=<N>` hint from an error message, if the
/// server attached one (see [`with_retry_after`]).
pub fn retry_after_ms(message: &str) -> Option<u64> {
    message
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("retry-after-ms=")?.parse().ok())
}

/// One six-counter scope of a `STATS` response: queries answered, error
/// responses, deadline timeouts, bytes read, bytes written, connections
/// accepted (always 1 for the per-connection scope).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Query lines answered (each `BATCH` member counts once).
    pub queries: u64,
    /// `ERR` responses written (any kind).
    pub errors: u64,
    /// `ERR timeout` responses among the errors.
    pub timeouts: u64,
    /// Request bytes read, newlines included.
    pub bytes_in: u64,
    /// Response bytes written, newlines included.
    pub bytes_out: u64,
    /// Connections accepted.
    pub connections: u64,
}

impl StatsSnapshot {
    fn render(&self, out: &mut String) {
        let _ = write!(
            out,
            "queries={} errors={} timeouts={} bytes_in={} bytes_out={} connections={}",
            self.queries,
            self.errors,
            self.timeouts,
            self.bytes_in,
            self.bytes_out,
            self.connections
        );
    }

    fn parse(fields: &[&str]) -> Result<StatsSnapshot, ProtoError> {
        let labels = [
            "queries",
            "errors",
            "timeouts",
            "bytes_in",
            "bytes_out",
            "connections",
        ];
        if fields.len() != labels.len() {
            return Err(err("STATS scope needs 6 counters"));
        }
        let mut vals = [0u64; 6];
        for (i, (field, label)) in fields.iter().zip(labels).enumerate() {
            let v = field
                .strip_prefix(label)
                .and_then(|rest| rest.strip_prefix('='))
                .ok_or_else(|| err(format!("expected {label}=<u64>, got {field:?}")))?;
            vals[i] = parse_u64(v, label)?;
        }
        Ok(StatsSnapshot {
            queries: vals[0],
            errors: vals[1],
            timeouts: vals[2],
            bytes_in: vals[3],
            bytes_out: vals[4],
            connections: vals[5],
        })
    }
}

/// Which readiness backend a server's front-end is built on, reported in
/// `STATS` so clients, tests and benches can label results per backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReactorKind {
    /// No reactor: the blocking thread-per-connection front-end.
    #[default]
    None,
    /// The portable `poll(2)` event loop.
    Poll,
    /// The Linux edge-triggered `epoll(7)` event loop.
    Epoll,
}

impl ReactorKind {
    /// Wire code carried by the binary `STATS` frame (and stored in the
    /// server's atomic counter block).
    pub(crate) fn code(self) -> u8 {
        match self {
            ReactorKind::None => 0,
            ReactorKind::Poll => 1,
            ReactorKind::Epoll => 2,
        }
    }

    fn from_code(code: u8) -> Result<ReactorKind, ProtoError> {
        Ok(match code {
            0 => ReactorKind::None,
            1 => ReactorKind::Poll,
            2 => ReactorKind::Epoll,
            other => return Err(err(format!("unknown reactor code {other}"))),
        })
    }
}

impl std::fmt::Display for ReactorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReactorKind::None => "none",
            ReactorKind::Poll => "poll",
            ReactorKind::Epoll => "epoll",
        })
    }
}

impl std::str::FromStr for ReactorKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "none" => Ok(ReactorKind::None),
            "poll" => Ok(ReactorKind::Poll),
            "epoll" => Ok(ReactorKind::Epoll),
            other => Err(format!(
                "unknown reactor backend {other:?} (expected none|poll|epoll)"
            )),
        }
    }
}

/// The server-scope reactor counters appended to `STATS` by front-ends
/// that track them (the event-loop server; the blocking fallback reports
/// `conns_peak` and zeroes for the pipelining fields).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerExtras {
    /// Most connections simultaneously open over the server's lifetime.
    pub conns_peak: u64,
    /// Deepest per-connection pipeline observed (requests in flight on
    /// one connection, responses not yet written).
    pub pipeline_depth_max: u64,
    /// Binary frames received (complete or oversized-drained).
    pub frames_binary: u64,
    /// Readiness backend the front-end is running.
    pub reactor_backend: ReactorKind,
    /// Reactor loop iterations (wait syscalls issued).
    pub poll_iterations: u64,
    /// Readiness events handed to the loop across all iterations. Under
    /// `epoll` this tracks the *active* set — `events_dispatched /
    /// poll_iterations` stays proportional to ready connections, not
    /// total connections.
    pub events_dispatched: u64,
    /// `writev(2)` calls issued by the vectored flush path.
    pub writev_calls: u64,
    /// Connections evicted by the per-connection idle timeout (slow or
    /// stalled peers making no read/write progress).
    pub conns_evicted: u64,
    /// Queries answered `ERR overloaded` by the global in-flight budget
    /// before their payload was parsed.
    pub queries_shed: u64,
    /// Retry-prompting replies issued — `ERR busy` and `ERR overloaded`
    /// responses carrying a `retry-after-ms` hint. Each such reply tells
    /// a well-behaved client to back off and retry, so the counter
    /// tracks the retries the server asked for.
    pub retries_observed: u64,
    /// Jobs whose propagated absolute deadline had already expired when
    /// an executor picked them up: every query in the job is answered
    /// `ERR timeout` without touching the engine.
    pub deadline_cancels: u64,
}

/// The version counters of a mutable (epoch-versioned) engine, appended
/// to `STATS` by servers running one (see `knmatch serve --mutable`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VersionCounters {
    /// Current epoch (bumped by every insert/delete).
    pub epoch: u64,
    /// Live points visible at the current epoch.
    pub live: u64,
    /// Rows in the unsealed write delta.
    pub delta: u64,
    /// Sealed immutable runs.
    pub runs: u64,
    /// Tombstones across all sealed runs.
    pub tombstones: u64,
    /// Writes accepted (inserts plus deletes) over the engine lifetime.
    pub writes: u64,
    /// Run compactions completed.
    pub merges: u64,
}

impl From<knmatch_core::VersionStats> for VersionCounters {
    fn from(s: knmatch_core::VersionStats) -> Self {
        VersionCounters {
            epoch: s.epoch,
            live: s.live as u64,
            delta: s.delta_len as u64,
            runs: s.runs as u64,
            tombstones: s.tombstones as u64,
            writes: s.inserts + s.removes,
            merges: s.merges,
        }
    }
}

// ---------------------------------------------------------------------------
// The STATS field table
// ---------------------------------------------------------------------------
//
// Every *optional* group of a STATS response — its text labels, its
// binary flag bit, its field order — is declared once here. The text
// renderer, text parser, binary encoder and binary decoder all walk
// this table, so a new group (like the version counters) is one table
// entry plus its flag constant, and the four codecs cannot drift.

/// The flattened payload of a `STATS` response while it is being
/// rendered or parsed: every group's fields at rest, plus a presence
/// bitmask using the binary flag bits.
#[derive(Debug, Default)]
struct StatsBody {
    conn: StatsSnapshot,
    server: StatsSnapshot,
    present: u8,
    plans: PlanTally,
    extras: ServerExtras,
    version: VersionCounters,
}

/// How one labelled field reads and writes its slot in [`StatsBody`].
enum FieldKind {
    /// A plain `u64` counter (`label=<u64>` in text, LE `u64` in binary).
    Counter {
        get: fn(&StatsBody) -> u64,
        set: fn(&mut StatsBody, u64),
    },
    /// The reactor-backend token (`label=<none|poll|epoll>` in text, one
    /// code byte in binary).
    Backend {
        get: fn(&StatsBody) -> ReactorKind,
        set: fn(&mut StatsBody, ReactorKind),
    },
}

/// One labelled field of a `STATS` group.
struct StatsField {
    label: &'static str,
    kind: FieldKind,
}

/// One optional `STATS` group: its binary flag bit, the flags that must
/// accompany it, and its fields in wire order. A group's presence on the
/// text wire is announced by its first field's label.
struct StatsGroup {
    flag: u8,
    requires: u8,
    fields: &'static [StatsField],
}

const fn counter(
    label: &'static str,
    get: fn(&StatsBody) -> u64,
    set: fn(&mut StatsBody, u64),
) -> StatsField {
    StatsField {
        label,
        kind: FieldKind::Counter { get, set },
    }
}

/// Every optional group, in wire order. The extras split into three
/// groups (legacy counters, backend, robustness) purely so lines and
/// frames from older servers — which omit the later groups — still
/// parse; all three land in one [`ServerExtras`].
const STATS_GROUPS: &[StatsGroup] = &[
    StatsGroup {
        flag: STATS_HAS_PLANS,
        requires: 0,
        fields: &[
            counter("plans_ad", |b| b.plans.ad, |b, v| b.plans.ad = v),
            counter(
                "plans_vafile",
                |b| b.plans.vafile,
                |b, v| b.plans.vafile = v,
            ),
            counter("plans_scan", |b| b.plans.scan, |b, v| b.plans.scan = v),
            counter("plans_igrid", |b| b.plans.igrid, |b, v| b.plans.igrid = v),
        ],
    },
    StatsGroup {
        flag: STATS_HAS_EXTRAS,
        requires: 0,
        fields: &[
            counter(
                "conns_peak",
                |b| b.extras.conns_peak,
                |b, v| b.extras.conns_peak = v,
            ),
            counter(
                "pipeline_depth_max",
                |b| b.extras.pipeline_depth_max,
                |b, v| b.extras.pipeline_depth_max = v,
            ),
            counter(
                "frames_binary",
                |b| b.extras.frames_binary,
                |b, v| b.extras.frames_binary = v,
            ),
        ],
    },
    StatsGroup {
        flag: STATS_HAS_REACTOR,
        requires: STATS_HAS_EXTRAS,
        fields: &[
            StatsField {
                label: "reactor_backend",
                kind: FieldKind::Backend {
                    get: |b| b.extras.reactor_backend,
                    set: |b, v| b.extras.reactor_backend = v,
                },
            },
            counter(
                "poll_iterations",
                |b| b.extras.poll_iterations,
                |b, v| b.extras.poll_iterations = v,
            ),
            counter(
                "events_dispatched",
                |b| b.extras.events_dispatched,
                |b, v| b.extras.events_dispatched = v,
            ),
            counter(
                "writev_calls",
                |b| b.extras.writev_calls,
                |b, v| b.extras.writev_calls = v,
            ),
        ],
    },
    StatsGroup {
        flag: STATS_HAS_ROBUST,
        requires: STATS_HAS_EXTRAS,
        fields: &[
            counter(
                "conns_evicted",
                |b| b.extras.conns_evicted,
                |b, v| b.extras.conns_evicted = v,
            ),
            counter(
                "queries_shed",
                |b| b.extras.queries_shed,
                |b, v| b.extras.queries_shed = v,
            ),
            counter(
                "retries_observed",
                |b| b.extras.retries_observed,
                |b, v| b.extras.retries_observed = v,
            ),
            counter(
                "deadline_cancels",
                |b| b.extras.deadline_cancels,
                |b, v| b.extras.deadline_cancels = v,
            ),
        ],
    },
    StatsGroup {
        flag: STATS_HAS_VERSION,
        requires: 0,
        fields: &[
            counter("epoch", |b| b.version.epoch, |b, v| b.version.epoch = v),
            counter("live", |b| b.version.live, |b, v| b.version.live = v),
            counter("delta", |b| b.version.delta, |b, v| b.version.delta = v),
            counter("runs", |b| b.version.runs, |b, v| b.version.runs = v),
            counter(
                "tombstones",
                |b| b.version.tombstones,
                |b, v| b.version.tombstones = v,
            ),
            counter("writes", |b| b.version.writes, |b, v| b.version.writes = v),
            counter("merges", |b| b.version.merges, |b, v| b.version.merges = v),
        ],
    },
];

/// Every flag bit claimed by some group — the mask unknown binary flags
/// are checked against.
const STATS_KNOWN_FLAGS: u8 = {
    let mut mask = 0u8;
    let mut i = 0;
    while i < STATS_GROUPS.len() {
        mask |= STATS_GROUPS[i].flag;
        i += 1;
    }
    mask
};

impl StatsBody {
    /// Flattens a [`Response::Stats`]'s fields. A present extras value
    /// always announces all three extras groups — the renderers emit
    /// every field they know; only *parsers* tolerate elision.
    fn from_parts(
        conn: &StatsSnapshot,
        server: &StatsSnapshot,
        plans: &Option<PlanTally>,
        extras: &Option<ServerExtras>,
        version: &Option<VersionCounters>,
    ) -> StatsBody {
        let mut body = StatsBody {
            conn: *conn,
            server: *server,
            ..StatsBody::default()
        };
        if let Some(p) = plans {
            body.present |= STATS_HAS_PLANS;
            body.plans = *p;
        }
        if let Some(x) = extras {
            body.present |= STATS_HAS_EXTRAS | STATS_HAS_REACTOR | STATS_HAS_ROBUST;
            body.extras = *x;
        }
        if let Some(v) = version {
            body.present |= STATS_HAS_VERSION;
            body.version = *v;
        }
        body
    }

    /// Rebuilds the [`Response::Stats`] option fields. Partially present
    /// extras groups (legacy senders) collapse into one [`ServerExtras`]
    /// with the missing counters at their defaults.
    fn into_response(self) -> Response {
        Response::Stats {
            conn: self.conn,
            server: self.server,
            plans: (self.present & STATS_HAS_PLANS != 0).then_some(self.plans),
            extras: (self.present & STATS_HAS_EXTRAS != 0).then_some(self.extras),
            version: (self.present & STATS_HAS_VERSION != 0).then_some(self.version),
        }
    }
}

/// Renders the whole `STATS` payload (after `OK STATS `) from the table.
fn render_stats_text(out: &mut String, body: &StatsBody) {
    body.conn.render(out);
    out.push(' ');
    body.server.render(out);
    for group in STATS_GROUPS {
        if body.present & group.flag == 0 {
            continue;
        }
        for field in group.fields {
            match field.kind {
                FieldKind::Counter { get, .. } => {
                    let _ = write!(out, " {}={}", field.label, get(body));
                }
                FieldKind::Backend { get, .. } => {
                    let _ = write!(out, " {}={}", field.label, get(body));
                }
            }
        }
    }
}

/// Parses the fields after `OK STATS`: twelve mandatory counters, then
/// the optional groups in table order, each announced by its leading
/// label. Leftover fields that announce no group are an error, as is a
/// group whose prerequisites are absent.
fn parse_stats_text(rest: &[&str]) -> Result<Response, ProtoError> {
    if rest.len() < 12 {
        return Err(err("STATS needs at least 12 counters"));
    }
    let mut body = StatsBody {
        conn: StatsSnapshot::parse(&rest[..6])?,
        server: StatsSnapshot::parse(&rest[6..12])?,
        ..StatsBody::default()
    };
    let mut i = 12;
    for group in STATS_GROUPS {
        let lead = group.fields[0].label;
        let announced = rest
            .get(i)
            .and_then(|f| f.split_once('='))
            .is_some_and(|(label, _)| label == lead);
        if !announced {
            continue;
        }
        if body.present & group.requires != group.requires {
            return Err(err(format!(
                "STATS group led by {lead}= requires an absent earlier group"
            )));
        }
        if rest.len() - i < group.fields.len() {
            return Err(err(format!(
                "STATS group led by {lead}= needs {} fields",
                group.fields.len()
            )));
        }
        for field in group.fields {
            let v = rest[i]
                .strip_prefix(field.label)
                .and_then(|r| r.strip_prefix('='))
                .ok_or_else(|| {
                    err(format!(
                        "expected {}=<value>, got {:?}",
                        field.label, rest[i]
                    ))
                })?;
            match field.kind {
                FieldKind::Counter { set, .. } => set(&mut body, parse_u64(v, field.label)?),
                FieldKind::Backend { set, .. } => set(&mut body, v.parse().map_err(err)?),
            }
            i += 1;
        }
        body.present |= group.flag;
    }
    if i != rest.len() {
        return Err(err(format!("unexpected STATS field {:?}", rest[i])));
    }
    Ok(body.into_response())
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `KNM` / `FREQ` / `EPS`: run one query.
    Query(BatchQuery),
    /// `BATCH <count>`: the next `count` lines are query lines, run as
    /// one engine batch.
    Batch(usize),
    /// `DEADLINE <ms>`: set the per-query budget (0 clears it).
    Deadline(u64),
    /// `FAILFAST <0|1>`: toggle fail-fast for later batches.
    FailFast(bool),
    /// `PLANNER <mode>`: set the backend choice for later queries on this
    /// connection (planner-capable engines only; others ignore it).
    Planner(PlannerMode),
    /// `STATS`: report counters.
    Stats,
    /// `PING`: liveness probe.
    Ping,
    /// `QUIT`: close this connection.
    Quit,
    /// `SHUTDOWN`: drain and stop the server.
    Shutdown,
    /// `INSERT <key> <coords>`: upsert one point under `key` (mutable
    /// engines only; read-only servers answer `ERR query`).
    Insert {
        /// The key to store the point under.
        key: u32,
        /// The point's coordinates.
        point: Vec<f64>,
    },
    /// `DELETE <key>`: remove the point under `key` (mutable engines
    /// only).
    Delete(u32),
    /// `EPOCH`: report the mutable engine's version counters.
    Epoch,
    /// `SEAL`: seal the mutable engine's write delta into a run.
    Seal,
}

/// A parsed response line.
// One `Response` exists per line being encoded or decoded — it is
// never stored in bulk — so the size of the rare `Stats` variant
// (three optional counter groups) does not justify boxing it.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `OK KNM` / `OK EPS` / `OK FREQ`: a query answer.
    Answer(BatchAnswer),
    /// `ERR <kind> <message>`.
    Error {
        /// The error category.
        kind: ErrorKind,
        /// Human-readable detail (single line).
        message: String,
    },
    /// `DONE <ok> <failed>`: the trailer after a batch's responses.
    Done {
        /// Queries answered with `OK`.
        ok: u64,
        /// Queries answered with `ERR`.
        failed: u64,
    },
    /// `OK DEADLINE <ms>`.
    Deadline(u64),
    /// `OK FAILFAST <0|1>`.
    FailFast(bool),
    /// `OK PLANNER <mode>`.
    Planner(PlannerMode),
    /// `OK STATS <connection scope> <server scope> [plan counters]`.
    Stats {
        /// This connection's counters.
        conn: StatsSnapshot,
        /// Server-lifetime counters.
        server: StatsSnapshot,
        /// Server-lifetime plan-choice counters, present when the served
        /// engine has a cost-based planner.
        plans: Option<PlanTally>,
        /// Server-lifetime reactor counters, present on servers that
        /// track them (absent only on pre-reactor servers).
        extras: Option<ServerExtras>,
        /// Version counters, present when the served engine is mutable.
        version: Option<VersionCounters>,
    },
    /// `OK PONG`.
    Pong,
    /// `OK BYE` (connection closing normally).
    Bye,
    /// `OK SHUTDOWN` (server draining; connection closing).
    ShuttingDown,
    /// `OK INSERT <epoch>`: the insert landed; this is the new epoch.
    Inserted(u64),
    /// `OK DELETE <epoch>`: the delete landed; this is the new epoch.
    Deleted(u64),
    /// `OK EPOCH <epoch> <live> <delta> <runs>`.
    Epoch {
        /// Current epoch.
        epoch: u64,
        /// Live points at that epoch.
        live: u64,
        /// Rows in the unsealed write delta.
        delta: u64,
        /// Sealed immutable runs.
        runs: u64,
    },
    /// `OK SEAL <epoch>`: the delta was sealed (current epoch echoed).
    Sealed(u64),
}

fn parse_u64(s: &str, what: &str) -> Result<u64, ProtoError> {
    s.parse()
        .map_err(|_| err(format!("{what}: expected unsigned integer, got {s:?}")))
}

fn parse_usize(s: &str, what: &str) -> Result<usize, ProtoError> {
    s.parse()
        .map_err(|_| err(format!("{what}: expected unsigned integer, got {s:?}")))
}

fn parse_f64(s: &str, what: &str) -> Result<f64, ProtoError> {
    s.parse()
        .map_err(|_| err(format!("{what}: expected float, got {s:?}")))
}

fn parse_coords(s: &str) -> Result<Vec<f64>, ProtoError> {
    s.split(',')
        .map(|v| parse_f64(v, "coordinate"))
        .collect::<Result<Vec<f64>, _>>()
}

/// Parses one request line (no trailing newline). The line must already
/// be within [`MAX_LINE`]; the server's line reader enforces that before
/// parsing.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let line = line.trim_end_matches('\r');
    let mut it = line.splitn(2, ' ');
    let verb = it.next().unwrap_or("");
    let rest = it.next().unwrap_or("");
    match verb {
        "KNM" | "FREQ" | "EPS" => parse_query(line).map(Request::Query),
        "BATCH" => Ok(Request::Batch(parse_usize(rest.trim(), "BATCH count")?)),
        "DEADLINE" => Ok(Request::Deadline(parse_u64(rest.trim(), "DEADLINE ms")?)),
        "FAILFAST" => match rest.trim() {
            "0" => Ok(Request::FailFast(false)),
            "1" => Ok(Request::FailFast(true)),
            other => Err(err(format!("FAILFAST takes 0 or 1, got {other:?}"))),
        },
        "PLANNER" => rest
            .trim()
            .parse::<PlannerMode>()
            .map(Request::Planner)
            .map_err(err),
        "STATS" => Ok(Request::Stats),
        "PING" => Ok(Request::Ping),
        "QUIT" => Ok(Request::Quit),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "INSERT" => match rest.trim().split_once(' ') {
            Some((key, coords)) => Ok(Request::Insert {
                key: key.parse().map_err(|_| err(format!("bad key {key:?}")))?,
                point: parse_coords(coords.trim())?,
            }),
            None => Err(err("INSERT takes <key> <coords>")),
        },
        "DELETE" => Ok(Request::Delete(
            rest.trim()
                .parse()
                .map_err(|_| err(format!("bad key {:?}", rest.trim())))?,
        )),
        "EPOCH" => Ok(Request::Epoch),
        "SEAL" => Ok(Request::Seal),
        "" => Err(err("empty request line")),
        other => Err(err(format!("unknown verb {other:?}"))),
    }
}

/// Parses a query line (`KNM` / `FREQ` / `EPS` only) — the grammar of the
/// lines following a `BATCH` request.
pub fn parse_query(line: &str) -> Result<BatchQuery, ProtoError> {
    let line = line.trim_end_matches('\r');
    let fields: Vec<&str> = line.split(' ').filter(|f| !f.is_empty()).collect();
    match fields.as_slice() {
        ["KNM", k, n, coords] => Ok(BatchQuery::KnMatch {
            query: parse_coords(coords)?,
            k: parse_usize(k, "k")?,
            n: parse_usize(n, "n")?,
        }),
        ["FREQ", k, n0, n1, coords] => Ok(BatchQuery::Frequent {
            query: parse_coords(coords)?,
            k: parse_usize(k, "k")?,
            n0: parse_usize(n0, "n0")?,
            n1: parse_usize(n1, "n1")?,
        }),
        ["EPS", eps, n, coords] => Ok(BatchQuery::EpsMatch {
            query: parse_coords(coords)?,
            eps: parse_f64(eps, "eps")?,
            n: parse_usize(n, "n")?,
        }),
        [verb, ..] if matches!(*verb, "KNM" | "FREQ" | "EPS") => Err(err(format!(
            "{verb}: wrong field count (want {})",
            if *verb == "FREQ" {
                "FREQ <k> <n0> <n1> <coords>"
            } else if *verb == "KNM" {
                "KNM <k> <n> <coords>"
            } else {
                "EPS <eps> <n> <coords>"
            }
        ))),
        _ => Err(err("expected a KNM, FREQ or EPS query line")),
    }
}

pub(crate) fn render_coords(out: &mut String, coords: &[f64]) {
    for (i, v) in coords.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
}

/// Renders a [`BatchQuery`] as its request line (no newline).
pub fn format_query(q: &BatchQuery) -> String {
    let mut out = String::new();
    match q {
        BatchQuery::KnMatch { query, k, n } => {
            let _ = write!(out, "KNM {k} {n} ");
            render_coords(&mut out, query);
        }
        BatchQuery::Frequent { query, k, n0, n1 } => {
            let _ = write!(out, "FREQ {k} {n0} {n1} ");
            render_coords(&mut out, query);
        }
        BatchQuery::EpsMatch { query, eps, n } => {
            let _ = write!(out, "EPS {eps} {n} ");
            render_coords(&mut out, query);
        }
    }
    out
}

fn render_entries(out: &mut String, entries: &[MatchEntry]) {
    if entries.is_empty() {
        out.push('-');
        return;
    }
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", e.pid, e.diff);
    }
}

fn parse_entries(s: &str) -> Result<Vec<MatchEntry>, ProtoError> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|pair| {
            let (pid, diff) = pair
                .split_once(':')
                .ok_or_else(|| err(format!("expected pid:diff, got {pair:?}")))?;
            Ok(MatchEntry {
                pid: pid.parse().map_err(|_| err(format!("bad pid {pid:?}")))?,
                diff: parse_f64(diff, "diff")?,
            })
        })
        .collect()
}

/// Renders a [`Response`] as its wire line (no newline).
pub fn format_response(r: &Response) -> String {
    let mut out = String::new();
    match r {
        Response::Answer(BatchAnswer::KnMatch(res)) => {
            let _ = write!(out, "OK KNM {} ", res.n);
            render_entries(&mut out, &res.entries);
        }
        Response::Answer(BatchAnswer::EpsMatch(res)) => {
            let _ = write!(out, "OK EPS {} ", res.n);
            render_entries(&mut out, &res.entries);
        }
        Response::Answer(BatchAnswer::Frequent(res)) => {
            let _ = write!(out, "OK FREQ {} {} ", res.range.0, res.range.1);
            if res.entries.is_empty() {
                out.push('-');
            } else {
                for (i, e) in res.entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}:{}", e.pid, e.count);
                }
            }
            out.push(' ');
            if res.per_n.is_empty() {
                out.push('-');
            } else {
                for (i, level) in res.per_n.iter().enumerate() {
                    if i > 0 {
                        out.push(';');
                    }
                    let _ = write!(out, "{}=", level.n);
                    render_entries(&mut out, &level.entries);
                }
            }
        }
        Response::Error { kind, message } => {
            // Newlines inside the message would desynchronise the stream.
            let msg = message.replace(['\n', '\r'], " ");
            let _ = write!(out, "ERR {} {msg}", kind.token());
        }
        Response::Done { ok, failed } => {
            let _ = write!(out, "DONE {ok} {failed}");
        }
        Response::Deadline(ms) => {
            let _ = write!(out, "OK DEADLINE {ms}");
        }
        Response::FailFast(on) => {
            let _ = write!(out, "OK FAILFAST {}", u8::from(*on));
        }
        Response::Planner(mode) => {
            let _ = write!(out, "OK PLANNER {mode}");
        }
        Response::Stats {
            conn,
            server,
            plans,
            extras,
            version,
        } => {
            out.push_str("OK STATS ");
            let body = StatsBody::from_parts(conn, server, plans, extras, version);
            render_stats_text(&mut out, &body);
        }
        Response::Pong => out.push_str("OK PONG"),
        Response::Bye => out.push_str("OK BYE"),
        Response::ShuttingDown => out.push_str("OK SHUTDOWN"),
        Response::Inserted(epoch) => {
            let _ = write!(out, "OK INSERT {epoch}");
        }
        Response::Deleted(epoch) => {
            let _ = write!(out, "OK DELETE {epoch}");
        }
        Response::Epoch {
            epoch,
            live,
            delta,
            runs,
        } => {
            let _ = write!(out, "OK EPOCH {epoch} {live} {delta} {runs}");
        }
        Response::Sealed(epoch) => {
            let _ = write!(out, "OK SEAL {epoch}");
        }
    }
    out
}

/// Parses one response line (no trailing newline) — the client half of
/// the protocol.
pub fn parse_response(line: &str) -> Result<Response, ProtoError> {
    let line = line.trim_end_matches('\r');
    let fields: Vec<&str> = line.split(' ').collect();
    match fields.as_slice() {
        ["OK", "KNM", n, entries] => Ok(Response::Answer(BatchAnswer::KnMatch(KnMatchResult {
            n: parse_usize(n, "n")?,
            entries: parse_entries(entries)?,
        }))),
        ["OK", "EPS", n, entries] => Ok(Response::Answer(BatchAnswer::EpsMatch(KnMatchResult {
            n: parse_usize(n, "n")?,
            entries: parse_entries(entries)?,
        }))),
        ["OK", "FREQ", n0, n1, ranked, levels] => {
            let entries = if *ranked == "-" {
                Vec::new()
            } else {
                ranked
                    .split(',')
                    .map(|pair| {
                        let (pid, count) = pair
                            .split_once(':')
                            .ok_or_else(|| err(format!("expected pid:count, got {pair:?}")))?;
                        Ok(FrequentEntry {
                            pid: pid.parse().map_err(|_| err(format!("bad pid {pid:?}")))?,
                            count: count
                                .parse()
                                .map_err(|_| err(format!("bad count {count:?}")))?,
                        })
                    })
                    .collect::<Result<Vec<_>, ProtoError>>()?
            };
            let per_n = if *levels == "-" {
                Vec::new()
            } else {
                levels
                    .split(';')
                    .map(|level| {
                        let (n, entries) = level
                            .split_once('=')
                            .ok_or_else(|| err(format!("expected n=entries, got {level:?}")))?;
                        Ok(KnMatchResult {
                            n: parse_usize(n, "level n")?,
                            entries: parse_entries(entries)?,
                        })
                    })
                    .collect::<Result<Vec<_>, ProtoError>>()?
            };
            Ok(Response::Answer(BatchAnswer::Frequent(FrequentResult {
                range: (parse_usize(n0, "n0")?, parse_usize(n1, "n1")?),
                entries,
                per_n,
            })))
        }
        ["ERR", kind, message @ ..] => Ok(Response::Error {
            kind: ErrorKind::from_token(kind)
                .ok_or_else(|| err(format!("unknown ERR kind {kind:?}")))?,
            message: message.join(" "),
        }),
        ["DONE", ok, failed] => Ok(Response::Done {
            ok: parse_u64(ok, "DONE ok")?,
            failed: parse_u64(failed, "DONE failed")?,
        }),
        ["OK", "DEADLINE", ms] => Ok(Response::Deadline(parse_u64(ms, "ms")?)),
        ["OK", "FAILFAST", v] => match *v {
            "0" => Ok(Response::FailFast(false)),
            "1" => Ok(Response::FailFast(true)),
            other => Err(err(format!("OK FAILFAST takes 0 or 1, got {other:?}"))),
        },
        ["OK", "PLANNER", mode] => mode
            .parse::<PlannerMode>()
            .map(Response::Planner)
            .map_err(err),
        ["OK", "STATS", rest @ ..] if rest.len() >= 12 => parse_stats_text(rest),
        ["OK", "PONG"] => Ok(Response::Pong),
        ["OK", "BYE"] => Ok(Response::Bye),
        ["OK", "SHUTDOWN"] => Ok(Response::ShuttingDown),
        ["OK", "INSERT", epoch] => Ok(Response::Inserted(parse_u64(epoch, "epoch")?)),
        ["OK", "DELETE", epoch] => Ok(Response::Deleted(parse_u64(epoch, "epoch")?)),
        ["OK", "EPOCH", epoch, live, delta, runs] => Ok(Response::Epoch {
            epoch: parse_u64(epoch, "epoch")?,
            live: parse_u64(live, "live")?,
            delta: parse_u64(delta, "delta")?,
            runs: parse_u64(runs, "runs")?,
        }),
        ["OK", "SEAL", epoch] => Ok(Response::Sealed(parse_u64(epoch, "epoch")?)),
        _ => Err(err(format!("unparseable response line {line:?}"))),
    }
}

/// Renders a failed query slot: the `ERR` response carrying the
/// [`KnMatchError`]'s category and display message.
pub fn error_response(e: &KnMatchError) -> Response {
    Response::Error {
        kind: ErrorKind::of_error(e),
        message: e.to_string(),
    }
}

/// The `ERR` response every write verb earns on a read-only engine
/// (one without a [`BatchEngine::writer`](knmatch_core::BatchEngine::writer)).
pub fn immutable_engine_error() -> Response {
    Response::Error {
        kind: ErrorKind::Query,
        message: "engine is immutable (serve with --mutable)".into(),
    }
}

// ---------------------------------------------------------------------------
// Binary frame codec
// ---------------------------------------------------------------------------

/// First byte of every binary frame. Text lines start with an ASCII verb
/// (`K`, `F`, `E`, `B`, `D`, `P`, `S`, `Q`, `O`) or a digit, never 0xA7,
/// so one sniffed byte routes each frame.
pub const FRAME_MAGIC: u8 = 0xA7;

/// Bytes before the payload: magic, kind, `len` as `u32` little-endian.
pub const FRAME_HEADER_LEN: usize = 6;

/// Largest accepted binary payload (64 MiB — a full [`MAX_BATCH`] of
/// wide queries fits with headroom). Bigger frames are drained and
/// answered with `ERR oversized`, like over-[`MAX_LINE`] text lines.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Request frame kinds. `REQ_QUERY` / `REQ_BATCH` are crate-visible so
/// the reactor's admission control can shed on the kind byte without
/// decoding the payload.
pub(crate) const REQ_QUERY: u8 = 0x01;
pub(crate) const REQ_BATCH: u8 = 0x02;
const REQ_DEADLINE: u8 = 0x03;
const REQ_FAILFAST: u8 = 0x04;
const REQ_PLANNER: u8 = 0x05;
const REQ_STATS: u8 = 0x06;
const REQ_PING: u8 = 0x07;
const REQ_QUIT: u8 = 0x08;
const REQ_SHUTDOWN: u8 = 0x09;
const REQ_INSERT: u8 = 0x0A;
const REQ_DELETE: u8 = 0x0B;
const REQ_EPOCH: u8 = 0x0C;
const REQ_SEAL: u8 = 0x0D;

/// Response frame kinds (high bit set).
const RESP_ANSWER: u8 = 0x81;
const RESP_ERR: u8 = 0x82;
const RESP_DONE: u8 = 0x83;
const RESP_DEADLINE: u8 = 0x84;
const RESP_FAILFAST: u8 = 0x85;
const RESP_PLANNER: u8 = 0x86;
const RESP_STATS: u8 = 0x87;
const RESP_PONG: u8 = 0x88;
const RESP_BYE: u8 = 0x89;
const RESP_SHUTDOWN: u8 = 0x8A;
const RESP_INSERT: u8 = 0x8B;
const RESP_DELETE: u8 = 0x8C;
const RESP_EPOCH: u8 = 0x8D;
const RESP_SEAL: u8 = 0x8E;

/// Tags inside query and answer payloads.
const TAG_KNM: u8 = 0x01;
const TAG_FREQ: u8 = 0x02;
const TAG_EPS: u8 = 0x03;

/// `STATS` payload flag bits. `STATS_HAS_REACTOR` extends the extras
/// group with the backend kind and its event counters, and
/// `STATS_HAS_ROBUST` with the overload/eviction counters; neither
/// appears without `STATS_HAS_EXTRAS`.
const STATS_HAS_PLANS: u8 = 0x01;
const STATS_HAS_EXTRAS: u8 = 0x02;
const STATS_HAS_REACTOR: u8 = 0x04;
const STATS_HAS_ROBUST: u8 = 0x08;
const STATS_HAS_VERSION: u8 = 0x10;

/// A decoded binary request. Binary `BATCH` frames are self-contained
/// (the queries travel inside the frame), unlike the text protocol where
/// `BATCH <count>` announces follow-up lines — hence the distinct shape.
#[derive(Debug, Clone, PartialEq)]
pub enum BinRequest {
    /// Every verb except `BATCH`, mapped onto the text [`Request`].
    One(Request),
    /// A self-contained batch: run as one engine batch, answered by one
    /// response frame per query plus a `DONE` trailer frame.
    Batch(Vec<BatchQuery>),
}

fn planner_code(mode: PlannerMode) -> u8 {
    match mode {
        PlannerMode::Auto => 0,
        PlannerMode::Ad => 1,
        PlannerMode::VaFile => 2,
        PlannerMode::Scan => 3,
        PlannerMode::IGrid => 4,
    }
}

fn planner_from_code(code: u8) -> Result<PlannerMode, ProtoError> {
    Ok(match code {
        0 => PlannerMode::Auto,
        1 => PlannerMode::Ad,
        2 => PlannerMode::VaFile,
        3 => PlannerMode::Scan,
        4 => PlannerMode::IGrid,
        other => return Err(err(format!("unknown planner code {other}"))),
    })
}

fn error_code(kind: ErrorKind) -> u8 {
    match kind {
        ErrorKind::Parse => 0,
        ErrorKind::Query => 1,
        ErrorKind::Timeout => 2,
        ErrorKind::Cancelled => 3,
        ErrorKind::Oversized => 4,
        ErrorKind::Busy => 5,
        ErrorKind::Proto => 6,
        ErrorKind::Shutdown => 7,
        ErrorKind::Overloaded => 8,
    }
}

fn error_from_code(code: u8) -> Result<ErrorKind, ProtoError> {
    Ok(match code {
        0 => ErrorKind::Parse,
        1 => ErrorKind::Query,
        2 => ErrorKind::Timeout,
        3 => ErrorKind::Cancelled,
        4 => ErrorKind::Oversized,
        5 => ErrorKind::Busy,
        6 => ErrorKind::Proto,
        7 => ErrorKind::Shutdown,
        8 => ErrorKind::Overloaded,
        other => return Err(err(format!("unknown error code {other}"))),
    })
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_coords(out: &mut Vec<u8>, coords: &[f64]) {
    put_u32(out, coords.len() as u32);
    for &v in coords {
        put_f64(out, v);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_entries(out: &mut Vec<u8>, entries: &[MatchEntry]) {
    put_u32(out, entries.len() as u32);
    for e in entries {
        put_u32(out, e.pid);
        put_f64(out, e.diff);
    }
}

fn put_snapshot(out: &mut Vec<u8>, s: &StatsSnapshot) {
    for v in [
        s.queries,
        s.errors,
        s.timeouts,
        s.bytes_in,
        s.bytes_out,
        s.connections,
    ] {
        put_u64(out, v);
    }
}

fn put_query(out: &mut Vec<u8>, q: &BatchQuery) {
    match q {
        BatchQuery::KnMatch { query, k, n } => {
            out.push(TAG_KNM);
            put_u32(out, *k as u32);
            put_u32(out, *n as u32);
            put_coords(out, query);
        }
        BatchQuery::Frequent { query, k, n0, n1 } => {
            out.push(TAG_FREQ);
            put_u32(out, *k as u32);
            put_u32(out, *n0 as u32);
            put_u32(out, *n1 as u32);
            put_coords(out, query);
        }
        BatchQuery::EpsMatch { query, eps, n } => {
            out.push(TAG_EPS);
            put_f64(out, *eps);
            put_u32(out, *n as u32);
            put_coords(out, query);
        }
    }
}

/// Bounded little-endian reader over one frame payload.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.remaining() < n {
            return Err(err("truncated binary payload"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn coords(&mut self) -> Result<Vec<f64>, ProtoError> {
        let n = self.u32()? as usize;
        // The length claim must be covered by actual payload bytes before
        // any allocation — a forged count cannot balloon memory.
        if self.remaining() < n * 8 {
            return Err(err("coordinate count exceeds payload"));
        }
        (0..n).map(|_| self.f64()).collect()
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| err("non-UTF-8 string in binary frame"))
    }

    fn entries(&mut self) -> Result<Vec<MatchEntry>, ProtoError> {
        let n = self.u32()? as usize;
        if self.remaining() < n * 12 {
            return Err(err("entry count exceeds payload"));
        }
        (0..n)
            .map(|_| {
                Ok(MatchEntry {
                    pid: self.u32()?,
                    diff: self.f64()?,
                })
            })
            .collect()
    }

    fn snapshot(&mut self) -> Result<StatsSnapshot, ProtoError> {
        Ok(StatsSnapshot {
            queries: self.u64()?,
            errors: self.u64()?,
            timeouts: self.u64()?,
            bytes_in: self.u64()?,
            bytes_out: self.u64()?,
            connections: self.u64()?,
        })
    }

    fn query(&mut self) -> Result<BatchQuery, ProtoError> {
        match self.u8()? {
            TAG_KNM => Ok(BatchQuery::KnMatch {
                k: self.u32()? as usize,
                n: self.u32()? as usize,
                query: self.coords()?,
            }),
            TAG_FREQ => Ok(BatchQuery::Frequent {
                k: self.u32()? as usize,
                n0: self.u32()? as usize,
                n1: self.u32()? as usize,
                query: self.coords()?,
            }),
            TAG_EPS => Ok(BatchQuery::EpsMatch {
                eps: self.f64()?,
                n: self.u32()? as usize,
                query: self.coords()?,
            }),
            other => Err(err(format!("unknown query tag {other}"))),
        }
    }

    fn done(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(err("trailing bytes in binary payload"))
        }
    }
}

fn begin_frame(out: &mut Vec<u8>, kind: u8) -> usize {
    out.push(FRAME_MAGIC);
    out.push(kind);
    out.extend_from_slice(&[0; 4]);
    out.len()
}

fn end_frame(out: &mut [u8], body: usize) {
    let len = (out.len() - body) as u32;
    out[body - 4..body].copy_from_slice(&len.to_le_bytes());
}

/// Appends one single-query request frame (the binary `KNM`/`FREQ`/`EPS`).
pub fn encode_query_frame(q: &BatchQuery, out: &mut Vec<u8>) {
    let body = begin_frame(out, REQ_QUERY);
    put_query(out, q);
    end_frame(out, body);
}

/// Appends one self-contained binary `BATCH` frame carrying `queries`.
pub fn encode_batch_frame(queries: &[BatchQuery], out: &mut Vec<u8>) {
    let body = begin_frame(out, REQ_BATCH);
    put_u32(out, queries.len() as u32);
    for q in queries {
        put_query(out, q);
    }
    end_frame(out, body);
}

/// Appends one request frame for any non-`BATCH` request.
///
/// # Errors
///
/// [`Request::Batch`] has no binary form (its count-only shape announces
/// text lines); use [`encode_batch_frame`] instead.
pub fn encode_request_frame(req: &Request, out: &mut Vec<u8>) -> Result<(), ProtoError> {
    match req {
        Request::Query(q) => encode_query_frame(q, out),
        Request::Batch(_) => {
            return Err(err(
                "text BATCH header has no binary frame; use encode_batch_frame",
            ))
        }
        Request::Deadline(ms) => {
            let body = begin_frame(out, REQ_DEADLINE);
            put_u64(out, *ms);
            end_frame(out, body);
        }
        Request::FailFast(on) => {
            let body = begin_frame(out, REQ_FAILFAST);
            out.push(u8::from(*on));
            end_frame(out, body);
        }
        Request::Planner(mode) => {
            let body = begin_frame(out, REQ_PLANNER);
            out.push(planner_code(*mode));
            end_frame(out, body);
        }
        Request::Stats => {
            let body = begin_frame(out, REQ_STATS);
            end_frame(out, body);
        }
        Request::Ping => {
            let body = begin_frame(out, REQ_PING);
            end_frame(out, body);
        }
        Request::Quit => {
            let body = begin_frame(out, REQ_QUIT);
            end_frame(out, body);
        }
        Request::Shutdown => {
            let body = begin_frame(out, REQ_SHUTDOWN);
            end_frame(out, body);
        }
        Request::Insert { key, point } => {
            let body = begin_frame(out, REQ_INSERT);
            put_u32(out, *key);
            put_coords(out, point);
            end_frame(out, body);
        }
        Request::Delete(key) => {
            let body = begin_frame(out, REQ_DELETE);
            put_u32(out, *key);
            end_frame(out, body);
        }
        Request::Epoch => {
            let body = begin_frame(out, REQ_EPOCH);
            end_frame(out, body);
        }
        Request::Seal => {
            let body = begin_frame(out, REQ_SEAL);
            end_frame(out, body);
        }
    }
    Ok(())
}

/// Decodes a request frame's `kind` and `payload` (header already
/// stripped by the frame reader).
///
/// # Errors
///
/// Unknown kinds, truncated or oversized payload claims, a batch count
/// over [`MAX_BATCH`].
pub fn decode_request_frame(kind: u8, payload: &[u8]) -> Result<BinRequest, ProtoError> {
    let mut c = Cur::new(payload);
    let req = match kind {
        REQ_QUERY => BinRequest::One(Request::Query(c.query()?)),
        REQ_BATCH => {
            let count = c.u32()? as usize;
            if count > MAX_BATCH {
                return Err(err(format!("batch of {count} exceeds limit {MAX_BATCH}")));
            }
            // Each query costs at least its tag byte; reject forged counts
            // before reserving anything.
            if count > c.remaining() {
                return Err(err("batch count exceeds payload"));
            }
            let mut queries = Vec::with_capacity(count);
            for _ in 0..count {
                queries.push(c.query()?);
            }
            BinRequest::Batch(queries)
        }
        REQ_DEADLINE => BinRequest::One(Request::Deadline(c.u64()?)),
        REQ_FAILFAST => BinRequest::One(Request::FailFast(match c.u8()? {
            0 => false,
            1 => true,
            other => return Err(err(format!("FAILFAST takes 0 or 1, got {other}"))),
        })),
        REQ_PLANNER => BinRequest::One(Request::Planner(planner_from_code(c.u8()?)?)),
        REQ_STATS => BinRequest::One(Request::Stats),
        REQ_PING => BinRequest::One(Request::Ping),
        REQ_QUIT => BinRequest::One(Request::Quit),
        REQ_SHUTDOWN => BinRequest::One(Request::Shutdown),
        REQ_INSERT => BinRequest::One(Request::Insert {
            key: c.u32()?,
            point: c.coords()?,
        }),
        REQ_DELETE => BinRequest::One(Request::Delete(c.u32()?)),
        REQ_EPOCH => BinRequest::One(Request::Epoch),
        REQ_SEAL => BinRequest::One(Request::Seal),
        other => return Err(err(format!("unknown request frame kind {other:#04x}"))),
    };
    c.done()?;
    Ok(req)
}

/// Appends one response frame.
pub fn encode_response_frame(r: &Response, out: &mut Vec<u8>) {
    match r {
        Response::Answer(answer) => {
            let body = begin_frame(out, RESP_ANSWER);
            match answer {
                BatchAnswer::KnMatch(res) => {
                    out.push(TAG_KNM);
                    put_u32(out, res.n as u32);
                    put_entries(out, &res.entries);
                }
                BatchAnswer::EpsMatch(res) => {
                    out.push(TAG_EPS);
                    put_u32(out, res.n as u32);
                    put_entries(out, &res.entries);
                }
                BatchAnswer::Frequent(res) => {
                    out.push(TAG_FREQ);
                    put_u32(out, res.range.0 as u32);
                    put_u32(out, res.range.1 as u32);
                    put_u32(out, res.entries.len() as u32);
                    for e in &res.entries {
                        put_u32(out, e.pid);
                        put_u32(out, e.count);
                    }
                    put_u32(out, res.per_n.len() as u32);
                    for level in &res.per_n {
                        put_u32(out, level.n as u32);
                        put_entries(out, &level.entries);
                    }
                }
            }
            end_frame(out, body);
        }
        Response::Error { kind, message } => {
            let body = begin_frame(out, RESP_ERR);
            out.push(error_code(*kind));
            put_str(out, message);
            end_frame(out, body);
        }
        Response::Done { ok, failed } => {
            let body = begin_frame(out, RESP_DONE);
            put_u64(out, *ok);
            put_u64(out, *failed);
            end_frame(out, body);
        }
        Response::Deadline(ms) => {
            let body = begin_frame(out, RESP_DEADLINE);
            put_u64(out, *ms);
            end_frame(out, body);
        }
        Response::FailFast(on) => {
            let body = begin_frame(out, RESP_FAILFAST);
            out.push(u8::from(*on));
            end_frame(out, body);
        }
        Response::Planner(mode) => {
            let body = begin_frame(out, RESP_PLANNER);
            out.push(planner_code(*mode));
            end_frame(out, body);
        }
        Response::Stats {
            conn,
            server,
            plans,
            extras,
            version,
        } => {
            let body = begin_frame(out, RESP_STATS);
            let sb = StatsBody::from_parts(conn, server, plans, extras, version);
            out.push(sb.present);
            put_snapshot(out, &sb.conn);
            put_snapshot(out, &sb.server);
            for group in STATS_GROUPS {
                if sb.present & group.flag == 0 {
                    continue;
                }
                for field in group.fields {
                    match field.kind {
                        FieldKind::Counter { get, .. } => put_u64(out, get(&sb)),
                        FieldKind::Backend { get, .. } => out.push(get(&sb).code()),
                    }
                }
            }
            end_frame(out, body);
        }
        Response::Pong => {
            let body = begin_frame(out, RESP_PONG);
            end_frame(out, body);
        }
        Response::Bye => {
            let body = begin_frame(out, RESP_BYE);
            end_frame(out, body);
        }
        Response::ShuttingDown => {
            let body = begin_frame(out, RESP_SHUTDOWN);
            end_frame(out, body);
        }
        Response::Inserted(epoch) => {
            let body = begin_frame(out, RESP_INSERT);
            put_u64(out, *epoch);
            end_frame(out, body);
        }
        Response::Deleted(epoch) => {
            let body = begin_frame(out, RESP_DELETE);
            put_u64(out, *epoch);
            end_frame(out, body);
        }
        Response::Epoch {
            epoch,
            live,
            delta,
            runs,
        } => {
            let body = begin_frame(out, RESP_EPOCH);
            for v in [*epoch, *live, *delta, *runs] {
                put_u64(out, v);
            }
            end_frame(out, body);
        }
        Response::Sealed(epoch) => {
            let body = begin_frame(out, RESP_SEAL);
            put_u64(out, *epoch);
            end_frame(out, body);
        }
    }
}

/// Decodes a response frame's `kind` and `payload`.
///
/// # Errors
///
/// Unknown kinds or malformed payloads.
pub fn decode_response_frame(kind: u8, payload: &[u8]) -> Result<Response, ProtoError> {
    let mut c = Cur::new(payload);
    let resp = match kind {
        RESP_ANSWER => Response::Answer(match c.u8()? {
            TAG_KNM => BatchAnswer::KnMatch(KnMatchResult {
                n: c.u32()? as usize,
                entries: c.entries()?,
            }),
            TAG_EPS => BatchAnswer::EpsMatch(KnMatchResult {
                n: c.u32()? as usize,
                entries: c.entries()?,
            }),
            TAG_FREQ => {
                let range = (c.u32()? as usize, c.u32()? as usize);
                let n_ranked = c.u32()? as usize;
                if c.remaining() < n_ranked * 8 {
                    return Err(err("ranked count exceeds payload"));
                }
                let entries = (0..n_ranked)
                    .map(|_| {
                        Ok(FrequentEntry {
                            pid: c.u32()?,
                            count: c.u32()?,
                        })
                    })
                    .collect::<Result<Vec<_>, ProtoError>>()?;
                let n_levels = c.u32()? as usize;
                if c.remaining() < n_levels * 8 {
                    return Err(err("level count exceeds payload"));
                }
                let per_n = (0..n_levels)
                    .map(|_| {
                        Ok(KnMatchResult {
                            n: c.u32()? as usize,
                            entries: c.entries()?,
                        })
                    })
                    .collect::<Result<Vec<_>, ProtoError>>()?;
                BatchAnswer::Frequent(FrequentResult {
                    range,
                    entries,
                    per_n,
                })
            }
            other => return Err(err(format!("unknown answer tag {other}"))),
        }),
        RESP_ERR => Response::Error {
            kind: error_from_code(c.u8()?)?,
            message: c.string()?,
        },
        RESP_DONE => Response::Done {
            ok: c.u64()?,
            failed: c.u64()?,
        },
        RESP_DEADLINE => Response::Deadline(c.u64()?),
        RESP_FAILFAST => Response::FailFast(match c.u8()? {
            0 => false,
            1 => true,
            other => return Err(err(format!("OK FAILFAST takes 0 or 1, got {other}"))),
        }),
        RESP_PLANNER => Response::Planner(planner_from_code(c.u8()?)?),
        RESP_STATS => {
            let flags = c.u8()?;
            if flags & !STATS_KNOWN_FLAGS != 0 {
                return Err(err(format!("unknown STATS flags {flags:#04x}")));
            }
            for group in STATS_GROUPS {
                if flags & group.flag != 0 && flags & group.requires != group.requires {
                    return Err(err("STATS group present without its required group"));
                }
            }
            let mut sb = StatsBody {
                present: flags,
                conn: c.snapshot()?,
                server: c.snapshot()?,
                ..StatsBody::default()
            };
            for group in STATS_GROUPS {
                if flags & group.flag == 0 {
                    continue;
                }
                for field in group.fields {
                    match field.kind {
                        FieldKind::Counter { set, .. } => set(&mut sb, c.u64()?),
                        FieldKind::Backend { set, .. } => {
                            set(&mut sb, ReactorKind::from_code(c.u8()?)?)
                        }
                    }
                }
            }
            sb.into_response()
        }
        RESP_PONG => Response::Pong,
        RESP_BYE => Response::Bye,
        RESP_SHUTDOWN => Response::ShuttingDown,
        RESP_INSERT => Response::Inserted(c.u64()?),
        RESP_DELETE => Response::Deleted(c.u64()?),
        RESP_EPOCH => Response::Epoch {
            epoch: c.u64()?,
            live: c.u64()?,
            delta: c.u64()?,
            runs: c.u64()?,
        },
        RESP_SEAL => Response::Sealed(c.u64()?),
        other => return Err(err(format!("unknown response frame kind {other:#04x}"))),
    };
    c.done()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_query(q: BatchQuery) {
        let line = format_query(&q);
        assert_eq!(parse_query(&line).unwrap(), q);
        assert_eq!(parse_request(&line).unwrap(), Request::Query(q));
    }

    #[test]
    fn query_lines_roundtrip() {
        roundtrip_query(BatchQuery::KnMatch {
            query: vec![1.5, -2.25, 1.0 / 3.0],
            k: 2,
            n: 3,
        });
        roundtrip_query(BatchQuery::Frequent {
            query: vec![0.1, f64::MIN_POSITIVE, 1e300],
            k: 1,
            n0: 1,
            n1: 3,
        });
        roundtrip_query(BatchQuery::EpsMatch {
            query: vec![0.0, -0.0],
            eps: 0.125,
            n: 1,
        });
    }

    #[test]
    fn responses_roundtrip() {
        let answers = [
            Response::Answer(BatchAnswer::KnMatch(KnMatchResult {
                n: 2,
                entries: vec![
                    MatchEntry { pid: 3, diff: 0.5 },
                    MatchEntry {
                        pid: 7,
                        diff: 1.0 / 3.0,
                    },
                ],
            })),
            Response::Answer(BatchAnswer::EpsMatch(KnMatchResult {
                n: 1,
                entries: Vec::new(),
            })),
            Response::Answer(BatchAnswer::Frequent(FrequentResult {
                range: (1, 2),
                entries: vec![FrequentEntry { pid: 4, count: 2 }],
                per_n: vec![
                    KnMatchResult {
                        n: 1,
                        entries: vec![MatchEntry { pid: 4, diff: 0.25 }],
                    },
                    KnMatchResult {
                        n: 2,
                        entries: Vec::new(),
                    },
                ],
            })),
            Response::Error {
                kind: ErrorKind::Timeout,
                message: "query deadline exceeded".into(),
            },
            Response::Done { ok: 3, failed: 1 },
            Response::Deadline(250),
            Response::FailFast(true),
            Response::Planner(PlannerMode::VaFile),
            Response::Stats {
                conn: StatsSnapshot {
                    queries: 1,
                    errors: 2,
                    timeouts: 3,
                    bytes_in: 4,
                    bytes_out: 5,
                    connections: 1,
                },
                server: StatsSnapshot::default(),
                plans: None,
                extras: None,
                version: None,
            },
            Response::Stats {
                conn: StatsSnapshot::default(),
                server: StatsSnapshot::default(),
                plans: Some(PlanTally {
                    ad: 10,
                    vafile: 4,
                    scan: 2,
                    igrid: 0,
                }),
                extras: None,
                version: None,
            },
            Response::Stats {
                conn: StatsSnapshot::default(),
                server: StatsSnapshot::default(),
                plans: None,
                extras: Some(ServerExtras {
                    conns_peak: 4096,
                    pipeline_depth_max: 32,
                    frames_binary: 900,
                    reactor_backend: ReactorKind::Epoll,
                    poll_iterations: 120_000,
                    events_dispatched: 480_000,
                    writev_calls: 33_000,
                    conns_evicted: 3,
                    queries_shed: 41,
                    retries_observed: 44,
                    deadline_cancels: 5,
                }),
                version: None,
            },
            Response::Stats {
                conn: StatsSnapshot::default(),
                server: StatsSnapshot::default(),
                plans: Some(PlanTally {
                    ad: 1,
                    vafile: 2,
                    scan: 3,
                    igrid: 4,
                }),
                extras: Some(ServerExtras {
                    conns_peak: 7,
                    pipeline_depth_max: 8,
                    frames_binary: 9,
                    reactor_backend: ReactorKind::Poll,
                    poll_iterations: 10,
                    events_dispatched: 11,
                    writev_calls: 12,
                    ..ServerExtras::default()
                }),
                version: None,
            },
            Response::Stats {
                conn: StatsSnapshot::default(),
                server: StatsSnapshot::default(),
                plans: None,
                extras: None,
                version: Some(VersionCounters {
                    epoch: 31,
                    live: 900,
                    delta: 12,
                    runs: 3,
                    tombstones: 7,
                    writes: 40,
                    merges: 2,
                }),
            },
            Response::Stats {
                conn: StatsSnapshot::default(),
                server: StatsSnapshot::default(),
                plans: Some(PlanTally {
                    ad: 1,
                    vafile: 0,
                    scan: 0,
                    igrid: 0,
                }),
                extras: Some(ServerExtras::default()),
                version: Some(VersionCounters {
                    epoch: 5,
                    ..VersionCounters::default()
                }),
            },
            Response::Pong,
            Response::Bye,
            Response::ShuttingDown,
            Response::Inserted(17),
            Response::Deleted(18),
            Response::Epoch {
                epoch: 19,
                live: 20,
                delta: 21,
                runs: 22,
            },
            Response::Sealed(23),
        ];
        for r in answers {
            let line = format_response(&r);
            assert_eq!(parse_response(&line).unwrap(), r, "line {line:?}");
        }
    }

    #[test]
    fn write_verbs_parse() {
        assert_eq!(
            parse_request("INSERT 7 0.5,-1.25,3").unwrap(),
            Request::Insert {
                key: 7,
                point: vec![0.5, -1.25, 3.0],
            }
        );
        assert_eq!(parse_request("DELETE 9").unwrap(), Request::Delete(9));
        assert_eq!(parse_request("EPOCH").unwrap(), Request::Epoch);
        assert_eq!(parse_request("SEAL").unwrap(), Request::Seal);
    }

    #[test]
    fn planner_requests_roundtrip() {
        for mode in [
            PlannerMode::Auto,
            PlannerMode::Ad,
            PlannerMode::VaFile,
            PlannerMode::Scan,
            PlannerMode::IGrid,
        ] {
            assert_eq!(
                parse_request(&format!("PLANNER {mode}")).unwrap(),
                Request::Planner(mode)
            );
        }
    }

    #[test]
    fn error_messages_with_newlines_stay_one_line() {
        let r = Response::Error {
            kind: ErrorKind::Query,
            message: "multi\nline\r\nmessage".into(),
        };
        let line = format_response(&r);
        assert!(!line.contains('\n') && !line.contains('\r'));
        assert!(matches!(
            parse_response(&line).unwrap(),
            Response::Error {
                kind: ErrorKind::Query,
                ..
            }
        ));
    }

    #[test]
    fn error_kind_mapping() {
        assert_eq!(
            ErrorKind::of_error(&KnMatchError::DeadlineExceeded),
            ErrorKind::Timeout
        );
        assert_eq!(
            ErrorKind::of_error(&KnMatchError::Cancelled),
            ErrorKind::Cancelled
        );
        assert_eq!(
            ErrorKind::of_error(&KnMatchError::EmptyDataset),
            ErrorKind::Query
        );
        for kind in [
            ErrorKind::Parse,
            ErrorKind::Query,
            ErrorKind::Timeout,
            ErrorKind::Cancelled,
            ErrorKind::Oversized,
            ErrorKind::Busy,
            ErrorKind::Proto,
            ErrorKind::Shutdown,
            ErrorKind::Overloaded,
        ] {
            assert_eq!(ErrorKind::from_token(kind.token()), Some(kind));
            assert_eq!(error_from_code(error_code(kind)).unwrap(), kind);
        }
    }

    #[test]
    fn retry_after_hint_roundtrips_through_the_message() {
        let msg = with_retry_after("server overloaded", 250);
        assert_eq!(retry_after_ms(&msg), Some(250));
        // The hint survives the text wire inside an ERR line.
        let line = format_response(&Response::Error {
            kind: ErrorKind::Overloaded,
            message: msg.clone(),
        });
        match parse_response(&line).unwrap() {
            Response::Error { kind, message } => {
                assert_eq!(kind, ErrorKind::Overloaded);
                assert_eq!(retry_after_ms(&message), Some(250));
            }
            other => panic!("expected ERR, got {other:?}"),
        }
        // Hint-free and malformed messages yield no hint.
        assert_eq!(retry_after_ms("connection limit reached"), None);
        assert_eq!(retry_after_ms("retry-after-ms=soon"), None);
    }

    /// Splits one encoded frame back into (kind, payload), checking the
    /// header along the way — the tests' stand-in for the frame reader.
    fn split_frame(bytes: &[u8]) -> (u8, &[u8]) {
        assert_eq!(bytes[0], FRAME_MAGIC);
        let len = u32::from_le_bytes(bytes[2..6].try_into().unwrap()) as usize;
        assert_eq!(bytes.len(), FRAME_HEADER_LEN + len, "frame length header");
        (bytes[1], &bytes[FRAME_HEADER_LEN..])
    }

    #[test]
    fn binary_requests_roundtrip() {
        let requests = [
            Request::Query(BatchQuery::KnMatch {
                query: vec![1.5, -0.0, f64::MIN_POSITIVE, 1.0 / 3.0],
                k: 2,
                n: 3,
            }),
            Request::Query(BatchQuery::Frequent {
                query: vec![f64::NAN, 1e300],
                k: 1,
                n0: 1,
                n1: 2,
            }),
            Request::Query(BatchQuery::EpsMatch {
                query: vec![0.25],
                eps: 0.125,
                n: 1,
            }),
            Request::Deadline(250),
            Request::FailFast(true),
            Request::Planner(PlannerMode::IGrid),
            Request::Stats,
            Request::Ping,
            Request::Quit,
            Request::Shutdown,
            Request::Insert {
                key: 41,
                point: vec![0.5, -1.5, 1.0 / 3.0],
            },
            Request::Delete(42),
            Request::Epoch,
            Request::Seal,
        ];
        for req in requests {
            let mut bytes = Vec::new();
            encode_request_frame(&req, &mut bytes).unwrap();
            let (kind, payload) = split_frame(&bytes);
            let got = decode_request_frame(kind, payload).unwrap();
            // NaN breaks PartialEq; compare the re-encoded bytes instead,
            // which is the bit-exactness claim anyway.
            let round = match got {
                BinRequest::One(r) => {
                    let mut b = Vec::new();
                    encode_request_frame(&r, &mut b).unwrap();
                    b
                }
                BinRequest::Batch(_) => unreachable!("no batch encoded"),
            };
            assert_eq!(round, bytes);
        }
    }

    #[test]
    fn binary_batch_roundtrips_bit_exactly() {
        let queries = vec![
            BatchQuery::KnMatch {
                query: vec![0.1, 0.2, 0.3],
                k: 4,
                n: 2,
            },
            BatchQuery::EpsMatch {
                query: vec![-0.0, f64::INFINITY],
                eps: 1e-300,
                n: 1,
            },
        ];
        let mut bytes = Vec::new();
        encode_batch_frame(&queries, &mut bytes);
        let (kind, payload) = split_frame(&bytes);
        match decode_request_frame(kind, payload).unwrap() {
            BinRequest::Batch(got) => assert_eq!(got, queries),
            other => panic!("expected batch, got {other:?}"),
        }
    }

    #[test]
    fn binary_responses_roundtrip() {
        let responses = [
            Response::Answer(BatchAnswer::KnMatch(KnMatchResult {
                n: 2,
                entries: vec![
                    MatchEntry { pid: 3, diff: 0.5 },
                    MatchEntry {
                        pid: 7,
                        diff: 1.0 / 3.0,
                    },
                ],
            })),
            Response::Answer(BatchAnswer::EpsMatch(KnMatchResult {
                n: 1,
                entries: Vec::new(),
            })),
            Response::Answer(BatchAnswer::Frequent(FrequentResult {
                range: (1, 2),
                entries: vec![FrequentEntry { pid: 4, count: 2 }],
                per_n: vec![
                    KnMatchResult {
                        n: 1,
                        entries: vec![MatchEntry { pid: 4, diff: 0.25 }],
                    },
                    KnMatchResult {
                        n: 2,
                        entries: Vec::new(),
                    },
                ],
            })),
            Response::Error {
                kind: ErrorKind::Oversized,
                message: "frame too large".into(),
            },
            Response::Done { ok: 3, failed: 1 },
            Response::Deadline(0),
            Response::FailFast(false),
            Response::Planner(PlannerMode::Auto),
            Response::Stats {
                conn: StatsSnapshot {
                    queries: 1,
                    errors: 2,
                    timeouts: 3,
                    bytes_in: 4,
                    bytes_out: 5,
                    connections: 1,
                },
                server: StatsSnapshot::default(),
                plans: Some(PlanTally {
                    ad: 9,
                    vafile: 8,
                    scan: 7,
                    igrid: 6,
                }),
                extras: Some(ServerExtras {
                    conns_peak: 11,
                    pipeline_depth_max: 12,
                    frames_binary: 13,
                    reactor_backend: ReactorKind::Epoll,
                    poll_iterations: 14,
                    events_dispatched: 15,
                    writev_calls: 16,
                    conns_evicted: 17,
                    queries_shed: 18,
                    retries_observed: 19,
                    deadline_cancels: 20,
                }),
                version: Some(VersionCounters {
                    epoch: 21,
                    live: 22,
                    delta: 23,
                    runs: 24,
                    tombstones: 25,
                    writes: 26,
                    merges: 27,
                }),
            },
            Response::Pong,
            Response::Bye,
            Response::ShuttingDown,
            Response::Inserted(31),
            Response::Deleted(32),
            Response::Epoch {
                epoch: 33,
                live: 34,
                delta: 35,
                runs: 36,
            },
            Response::Sealed(37),
        ];
        for r in responses {
            let mut bytes = Vec::new();
            encode_response_frame(&r, &mut bytes);
            let (kind, payload) = split_frame(&bytes);
            assert_eq!(decode_response_frame(kind, payload).unwrap(), r);
        }
    }

    #[test]
    fn binary_decode_rejects_malice() {
        // Unknown kinds.
        assert!(decode_request_frame(0x7F, &[]).is_err());
        assert!(decode_response_frame(0x20, &[]).is_err());
        // Batch count claiming more queries than bytes.
        let mut forged = Vec::new();
        put_u32(&mut forged, 1_000_000);
        assert!(decode_request_frame(REQ_BATCH, &forged).is_err());
        // Coordinate count claiming more floats than bytes.
        let mut coords = vec![TAG_KNM];
        put_u32(&mut coords, 1);
        put_u32(&mut coords, 1);
        put_u32(&mut coords, u32::MAX);
        assert!(decode_request_frame(REQ_QUERY, &coords).is_err());
        // Trailing garbage after a well-formed payload.
        let mut ping = Vec::new();
        encode_request_frame(&Request::Ping, &mut ping).unwrap();
        assert!(decode_request_frame(ping[1], &[0u8]).is_err());
        // Truncated payloads at every length of a valid query frame.
        let mut q = Vec::new();
        encode_query_frame(
            &BatchQuery::KnMatch {
                query: vec![1.0, 2.0],
                k: 1,
                n: 1,
            },
            &mut q,
        );
        let (kind, payload) = split_frame(&q);
        for cut in 0..payload.len() {
            assert!(
                decode_request_frame(kind, &payload[..cut]).is_err(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn stats_parse_accepts_every_field_shape() {
        // 12, 15, 16, 19, 23 and 27 fields all parse; label prefixes
        // disambiguate the 15-, 16-, 19- and 23-field shapes.
        let base = Response::Stats {
            conn: StatsSnapshot::default(),
            server: StatsSnapshot::default(),
            plans: None,
            extras: None,
            version: None,
        };
        let line = format_response(&base);
        assert_eq!(parse_response(&line).unwrap(), base);
        // A 15-field line whose 13th field claims to be plans is rejected
        // rather than misread.
        let bad = format!("{line} plans_ad=1 plans_vafile=2 plans_scan=3");
        assert!(parse_response(&bad).is_err());
        // A legacy 15-field line (three-counter extras from a pre-backend
        // server) still parses; the backend fields default.
        let legacy = format!("{line} conns_peak=4 pipeline_depth_max=2 frames_binary=1");
        match parse_response(&legacy).unwrap() {
            Response::Stats { extras, .. } => assert_eq!(
                extras,
                Some(ServerExtras {
                    conns_peak: 4,
                    pipeline_depth_max: 2,
                    frames_binary: 1,
                    ..ServerExtras::default()
                })
            ),
            other => panic!("expected STATS, got {other:?}"),
        }
        // The 19-field shape stays ambiguous on count alone: plans plus
        // legacy extras, or no plans plus full extras. Labels decide.
        let plans_form = format!(
            "{line} plans_ad=1 plans_vafile=2 plans_scan=3 plans_igrid=4 \
             conns_peak=4 pipeline_depth_max=2 frames_binary=1"
        );
        match parse_response(&plans_form).unwrap() {
            Response::Stats { plans, extras, .. } => {
                assert!(plans.is_some());
                assert_eq!(extras.unwrap().reactor_backend, ReactorKind::None);
            }
            other => panic!("expected STATS, got {other:?}"),
        }
        let backend_form = format!(
            "{line} conns_peak=4 pipeline_depth_max=2 frames_binary=1 \
             reactor_backend=epoll poll_iterations=5 events_dispatched=6 writev_calls=7"
        );
        match parse_response(&backend_form).unwrap() {
            Response::Stats { plans, extras, .. } => {
                assert!(plans.is_none());
                assert_eq!(extras.unwrap().reactor_backend, ReactorKind::Epoll);
            }
            other => panic!("expected STATS, got {other:?}"),
        }
        // An unknown backend token is rejected, not defaulted.
        let unknown = format!(
            "{line} conns_peak=4 pipeline_depth_max=2 frames_binary=1 \
             reactor_backend=kqueue poll_iterations=5 events_dispatched=6 writev_calls=7"
        );
        assert!(parse_response(&unknown).is_err());
        // A pre-robustness 23-field line (plans plus 7-field extras)
        // still parses; the robustness counters default to zero.
        let legacy_23 = format!(
            "{line} plans_ad=1 plans_vafile=2 plans_scan=3 plans_igrid=4 \
             conns_peak=4 pipeline_depth_max=2 frames_binary=1 \
             reactor_backend=poll poll_iterations=5 events_dispatched=6 writev_calls=7"
        );
        match parse_response(&legacy_23).unwrap() {
            Response::Stats { plans, extras, .. } => {
                assert!(plans.is_some());
                let x = extras.unwrap();
                assert_eq!(x.writev_calls, 7);
                assert_eq!((x.conns_evicted, x.queries_shed), (0, 0));
                assert_eq!((x.retries_observed, x.deadline_cancels), (0, 0));
            }
            other => panic!("expected STATS, got {other:?}"),
        }
        // 23 fields without plans is the no-plans robustness shape — the
        // same count as the legacy plans form, split by the labels.
        let robust_23 = format!(
            "{line} conns_peak=4 pipeline_depth_max=2 frames_binary=1 \
             reactor_backend=epoll poll_iterations=5 events_dispatched=6 writev_calls=7 \
             conns_evicted=8 queries_shed=9 retries_observed=10 deadline_cancels=11"
        );
        match parse_response(&robust_23).unwrap() {
            Response::Stats { plans, extras, .. } => {
                assert!(plans.is_none());
                let x = extras.unwrap();
                assert_eq!(x.reactor_backend, ReactorKind::Epoll);
                assert_eq!((x.conns_evicted, x.queries_shed), (8, 9));
                assert_eq!((x.retries_observed, x.deadline_cancels), (10, 11));
            }
            other => panic!("expected STATS, got {other:?}"),
        }
        // The full 27-field shape must carry plans.
        let full = Response::Stats {
            conn: StatsSnapshot::default(),
            server: StatsSnapshot::default(),
            plans: Some(PlanTally {
                ad: 1,
                vafile: 2,
                scan: 3,
                igrid: 4,
            }),
            extras: Some(ServerExtras {
                conns_evicted: 8,
                queries_shed: 9,
                retries_observed: 10,
                deadline_cancels: 11,
                ..ServerExtras::default()
            }),
            version: None,
        };
        let full_line = format_response(&full);
        assert_eq!(parse_response(&full_line).unwrap(), full);
        // The version group composes with every earlier group and also
        // stands alone after the mandatory twelve.
        let versioned =
            format!("{full_line} epoch=3 live=40 delta=5 runs=2 tombstones=1 writes=9 merges=1");
        match parse_response(&versioned).unwrap() {
            Response::Stats { version, plans, .. } => {
                assert!(plans.is_some());
                assert_eq!(
                    version,
                    Some(VersionCounters {
                        epoch: 3,
                        live: 40,
                        delta: 5,
                        runs: 2,
                        tombstones: 1,
                        writes: 9,
                        merges: 1,
                    })
                );
            }
            other => panic!("expected STATS, got {other:?}"),
        }
        let lone = format!("{line} epoch=1 live=2 delta=3 runs=4 tombstones=0 writes=5 merges=0");
        match parse_response(&lone).unwrap() {
            Response::Stats {
                plans,
                extras,
                version,
                ..
            } => {
                assert!(plans.is_none() && extras.is_none());
                assert_eq!(version.unwrap().live, 2);
            }
            other => panic!("expected STATS, got {other:?}"),
        }
        // A truncated version group is rejected, as is a trailing field
        // that announces no group.
        assert!(parse_response(&format!("{line} epoch=1 live=2")).is_err());
        assert!(parse_response(&format!("{line} bogus=1")).is_err());
    }

    /// Binary STATS frames from pre-robustness servers (extras group
    /// without the `STATS_HAS_ROBUST` flag, or without the reactor
    /// group) still decode; the missing counters default to zero.
    #[test]
    fn binary_stats_accepts_legacy_flag_combos() {
        let conn = StatsSnapshot {
            queries: 5,
            ..StatsSnapshot::default()
        };
        let server = StatsSnapshot::default();
        for reactor in [false, true] {
            let mut payload = Vec::new();
            let mut flags = STATS_HAS_EXTRAS;
            if reactor {
                flags |= STATS_HAS_REACTOR;
            }
            payload.push(flags);
            put_snapshot(&mut payload, &conn);
            put_snapshot(&mut payload, &server);
            for v in [11u64, 12, 13] {
                put_u64(&mut payload, v);
            }
            if reactor {
                payload.push(ReactorKind::Poll.code());
                for v in [14u64, 15, 16] {
                    put_u64(&mut payload, v);
                }
            }
            match decode_response_frame(RESP_STATS, &payload).unwrap() {
                Response::Stats { extras, .. } => {
                    let x = extras.unwrap();
                    assert_eq!(x.conns_peak, 11);
                    assert_eq!(x.writev_calls, if reactor { 16 } else { 0 });
                    assert_eq!((x.conns_evicted, x.queries_shed), (0, 0));
                    assert_eq!((x.retries_observed, x.deadline_cancels), (0, 0));
                }
                other => panic!("expected STATS, got {other:?}"),
            }
        }
        // The robust group without the extras group stays rejected.
        let mut bad = Vec::new();
        bad.push(STATS_HAS_ROBUST);
        put_snapshot(&mut bad, &conn);
        put_snapshot(&mut bad, &server);
        assert!(decode_response_frame(RESP_STATS, &bad).is_err());
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for line in [
            "",
            "BOGUS 1 2",
            "KNM 1 2",
            "KNM x 2 1,2",
            "KNM 1 2 1,abc",
            "FREQ 1 2 1,2",
            "EPS -s 1 1,2",
            "BATCH many",
            "FAILFAST 2",
            "DEADLINE soon",
            "PLANNER fastest",
            "PLANNER",
            "INSERT",
            "INSERT 5",
            "INSERT x 1,2",
            "INSERT 5 1,abc",
            "DELETE",
            "DELETE x",
        ] {
            assert!(parse_request(line).is_err(), "line {line:?}");
        }
        for line in ["", "OK", "OK KNM 1", "OK KNM x -", "ERR nope msg", "DONE 1"] {
            assert!(parse_response(line).is_err(), "line {line:?}");
        }
    }
}
