//! The newline-delimited text protocol spoken between `knmatch serve` and
//! its clients (DESIGN.md §11).
//!
//! One request per line, one response line per request (a `BATCH` request
//! is followed by its query lines and answered by one response line per
//! query plus a `DONE` trailer). Everything is UTF-8 text; floats are
//! rendered with Rust's shortest round-trip `Display`, so a value parsed
//! back with `str::parse::<f64>` is bit-identical to the one the server
//! computed — the cross-check tests compare served answers to direct
//! engine calls with `==`, not with a tolerance.
//!
//! ## Requests
//!
//! ```text
//! KNM <k> <n> <v,v,...>          k-n-match
//! FREQ <k> <n0> <n1> <v,v,...>   frequent k-n-match over n ∈ [n0, n1]
//! EPS <eps> <n> <v,v,...>        ε-n-match
//! BATCH <count>                  next <count> lines are query lines
//! DEADLINE <ms>                  per-query budget for later queries (0 clears)
//! FAILFAST <0|1>                 fail-fast for later BATCH runs
//! PLANNER <mode>                 backend choice for later queries
//!                                (auto|ad|vafile|scan|igrid; planner-capable
//!                                engines only — others ignore it)
//! STATS                          connection + server counters
//! PING                           liveness probe
//! QUIT                           close this connection
//! SHUTDOWN                       drain and stop the whole server
//! ```
//!
//! ## Responses
//!
//! ```text
//! OK KNM <n> <pid:diff,...|->
//! OK EPS <n> <pid:diff,...|->
//! OK FREQ <n0> <n1> <pid:count,...|-> <n=pid:diff,...;...|->
//! OK DEADLINE <ms> | OK FAILFAST <0|1> | OK PLANNER <mode>
//! OK PONG | OK BYE | OK SHUTDOWN
//! OK STATS <conn six counters> <server six counters> [four plan counters]
//! DONE <ok> <failed>
//! ERR <kind> <message...>
//! ```
//!
//! The four plan counters (`plans_ad= plans_vafile= plans_scan=
//! plans_igrid=`, server scope) report how the cost-based planner routed
//! queries; servers without a planner-capable engine omit them, and
//! clients accept both shapes.
//!
//! `ERR` kinds: `parse` (malformed request), `query` (validation or
//! storage failure), `timeout` (deadline exceeded), `cancelled`
//! (fail-fast), `oversized` (line longer than [`MAX_LINE`]), `busy`
//! (connection limit), `proto` (valid verb, unusable arguments, e.g. a
//! `BATCH` count over [`MAX_BATCH`]), `shutdown` (server is draining).
//! Errors never close the connection except `busy` and `shutdown`.

use std::fmt::Write as _;

use knmatch_core::{
    BatchAnswer, BatchQuery, FrequentEntry, FrequentResult, KnMatchError, KnMatchResult,
    MatchEntry, PlanTally, PlannerMode,
};

/// Longest accepted request line in bytes (newline excluded). Longer
/// lines are drained and answered with `ERR oversized` — they never
/// poison the connection or the process.
pub const MAX_LINE: usize = 64 * 1024;

/// Largest accepted `BATCH <count>`. A bigger count is answered with
/// `ERR proto` before any query line is read.
pub const MAX_BATCH: usize = 65_536;

/// A malformed or unrepresentable protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ProtoError {}

fn err(msg: impl Into<String>) -> ProtoError {
    ProtoError(msg.into())
}

/// The error categories of an `ERR` response line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line did not parse.
    Parse,
    /// The query failed validation or execution.
    Query,
    /// The query ran past its deadline.
    Timeout,
    /// The query was cancelled by a fail-fast batch.
    Cancelled,
    /// The request line exceeded [`MAX_LINE`].
    Oversized,
    /// The server's connection limit was reached; the connection closes.
    Busy,
    /// A structurally valid request with unusable arguments.
    Proto,
    /// The server is draining; the connection closes.
    Shutdown,
}

impl ErrorKind {
    /// The wire token of this kind.
    pub fn token(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Query => "query",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::Oversized => "oversized",
            ErrorKind::Busy => "busy",
            ErrorKind::Proto => "proto",
            ErrorKind::Shutdown => "shutdown",
        }
    }

    /// Parses a wire token back into a kind.
    pub fn from_token(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "parse" => ErrorKind::Parse,
            "query" => ErrorKind::Query,
            "timeout" => ErrorKind::Timeout,
            "cancelled" => ErrorKind::Cancelled,
            "oversized" => ErrorKind::Oversized,
            "busy" => ErrorKind::Busy,
            "proto" => ErrorKind::Proto,
            "shutdown" => ErrorKind::Shutdown,
            _ => return None,
        })
    }

    /// The category a failed query's [`KnMatchError`] maps to.
    pub fn of_error(e: &KnMatchError) -> ErrorKind {
        match e {
            KnMatchError::DeadlineExceeded => ErrorKind::Timeout,
            KnMatchError::Cancelled => ErrorKind::Cancelled,
            _ => ErrorKind::Query,
        }
    }
}

/// One six-counter scope of a `STATS` response: queries answered, error
/// responses, deadline timeouts, bytes read, bytes written, connections
/// accepted (always 1 for the per-connection scope).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Query lines answered (each `BATCH` member counts once).
    pub queries: u64,
    /// `ERR` responses written (any kind).
    pub errors: u64,
    /// `ERR timeout` responses among the errors.
    pub timeouts: u64,
    /// Request bytes read, newlines included.
    pub bytes_in: u64,
    /// Response bytes written, newlines included.
    pub bytes_out: u64,
    /// Connections accepted.
    pub connections: u64,
}

impl StatsSnapshot {
    fn render(&self, out: &mut String) {
        let _ = write!(
            out,
            "queries={} errors={} timeouts={} bytes_in={} bytes_out={} connections={}",
            self.queries,
            self.errors,
            self.timeouts,
            self.bytes_in,
            self.bytes_out,
            self.connections
        );
    }

    fn parse(fields: &[&str]) -> Result<StatsSnapshot, ProtoError> {
        let labels = [
            "queries",
            "errors",
            "timeouts",
            "bytes_in",
            "bytes_out",
            "connections",
        ];
        if fields.len() != labels.len() {
            return Err(err("STATS scope needs 6 counters"));
        }
        let mut vals = [0u64; 6];
        for (i, (field, label)) in fields.iter().zip(labels).enumerate() {
            let v = field
                .strip_prefix(label)
                .and_then(|rest| rest.strip_prefix('='))
                .ok_or_else(|| err(format!("expected {label}=<u64>, got {field:?}")))?;
            vals[i] = parse_u64(v, label)?;
        }
        Ok(StatsSnapshot {
            queries: vals[0],
            errors: vals[1],
            timeouts: vals[2],
            bytes_in: vals[3],
            bytes_out: vals[4],
            connections: vals[5],
        })
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `KNM` / `FREQ` / `EPS`: run one query.
    Query(BatchQuery),
    /// `BATCH <count>`: the next `count` lines are query lines, run as
    /// one engine batch.
    Batch(usize),
    /// `DEADLINE <ms>`: set the per-query budget (0 clears it).
    Deadline(u64),
    /// `FAILFAST <0|1>`: toggle fail-fast for later batches.
    FailFast(bool),
    /// `PLANNER <mode>`: set the backend choice for later queries on this
    /// connection (planner-capable engines only; others ignore it).
    Planner(PlannerMode),
    /// `STATS`: report counters.
    Stats,
    /// `PING`: liveness probe.
    Ping,
    /// `QUIT`: close this connection.
    Quit,
    /// `SHUTDOWN`: drain and stop the server.
    Shutdown,
}

/// A parsed response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `OK KNM` / `OK EPS` / `OK FREQ`: a query answer.
    Answer(BatchAnswer),
    /// `ERR <kind> <message>`.
    Error {
        /// The error category.
        kind: ErrorKind,
        /// Human-readable detail (single line).
        message: String,
    },
    /// `DONE <ok> <failed>`: the trailer after a batch's responses.
    Done {
        /// Queries answered with `OK`.
        ok: u64,
        /// Queries answered with `ERR`.
        failed: u64,
    },
    /// `OK DEADLINE <ms>`.
    Deadline(u64),
    /// `OK FAILFAST <0|1>`.
    FailFast(bool),
    /// `OK PLANNER <mode>`.
    Planner(PlannerMode),
    /// `OK STATS <connection scope> <server scope> [plan counters]`.
    Stats {
        /// This connection's counters.
        conn: StatsSnapshot,
        /// Server-lifetime counters.
        server: StatsSnapshot,
        /// Server-lifetime plan-choice counters, present when the served
        /// engine has a cost-based planner.
        plans: Option<PlanTally>,
    },
    /// `OK PONG`.
    Pong,
    /// `OK BYE` (connection closing normally).
    Bye,
    /// `OK SHUTDOWN` (server draining; connection closing).
    ShuttingDown,
}

/// Parses the four labelled plan counters of an extended `STATS` line.
fn parse_plan_tally(fields: &[&str]) -> Result<PlanTally, ProtoError> {
    let labels = ["plans_ad", "plans_vafile", "plans_scan", "plans_igrid"];
    let mut vals = [0u64; 4];
    for (i, (field, label)) in fields.iter().zip(labels).enumerate() {
        let v = field
            .strip_prefix(label)
            .and_then(|rest| rest.strip_prefix('='))
            .ok_or_else(|| err(format!("expected {label}=<u64>, got {field:?}")))?;
        vals[i] = parse_u64(v, label)?;
    }
    Ok(PlanTally {
        ad: vals[0],
        vafile: vals[1],
        scan: vals[2],
        igrid: vals[3],
    })
}

fn parse_u64(s: &str, what: &str) -> Result<u64, ProtoError> {
    s.parse()
        .map_err(|_| err(format!("{what}: expected unsigned integer, got {s:?}")))
}

fn parse_usize(s: &str, what: &str) -> Result<usize, ProtoError> {
    s.parse()
        .map_err(|_| err(format!("{what}: expected unsigned integer, got {s:?}")))
}

fn parse_f64(s: &str, what: &str) -> Result<f64, ProtoError> {
    s.parse()
        .map_err(|_| err(format!("{what}: expected float, got {s:?}")))
}

fn parse_coords(s: &str) -> Result<Vec<f64>, ProtoError> {
    s.split(',')
        .map(|v| parse_f64(v, "coordinate"))
        .collect::<Result<Vec<f64>, _>>()
}

/// Parses one request line (no trailing newline). The line must already
/// be within [`MAX_LINE`]; the server's line reader enforces that before
/// parsing.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let line = line.trim_end_matches('\r');
    let mut it = line.splitn(2, ' ');
    let verb = it.next().unwrap_or("");
    let rest = it.next().unwrap_or("");
    match verb {
        "KNM" | "FREQ" | "EPS" => parse_query(line).map(Request::Query),
        "BATCH" => Ok(Request::Batch(parse_usize(rest.trim(), "BATCH count")?)),
        "DEADLINE" => Ok(Request::Deadline(parse_u64(rest.trim(), "DEADLINE ms")?)),
        "FAILFAST" => match rest.trim() {
            "0" => Ok(Request::FailFast(false)),
            "1" => Ok(Request::FailFast(true)),
            other => Err(err(format!("FAILFAST takes 0 or 1, got {other:?}"))),
        },
        "PLANNER" => rest
            .trim()
            .parse::<PlannerMode>()
            .map(Request::Planner)
            .map_err(err),
        "STATS" => Ok(Request::Stats),
        "PING" => Ok(Request::Ping),
        "QUIT" => Ok(Request::Quit),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "" => Err(err("empty request line")),
        other => Err(err(format!("unknown verb {other:?}"))),
    }
}

/// Parses a query line (`KNM` / `FREQ` / `EPS` only) — the grammar of the
/// lines following a `BATCH` request.
pub fn parse_query(line: &str) -> Result<BatchQuery, ProtoError> {
    let line = line.trim_end_matches('\r');
    let fields: Vec<&str> = line.split(' ').filter(|f| !f.is_empty()).collect();
    match fields.as_slice() {
        ["KNM", k, n, coords] => Ok(BatchQuery::KnMatch {
            query: parse_coords(coords)?,
            k: parse_usize(k, "k")?,
            n: parse_usize(n, "n")?,
        }),
        ["FREQ", k, n0, n1, coords] => Ok(BatchQuery::Frequent {
            query: parse_coords(coords)?,
            k: parse_usize(k, "k")?,
            n0: parse_usize(n0, "n0")?,
            n1: parse_usize(n1, "n1")?,
        }),
        ["EPS", eps, n, coords] => Ok(BatchQuery::EpsMatch {
            query: parse_coords(coords)?,
            eps: parse_f64(eps, "eps")?,
            n: parse_usize(n, "n")?,
        }),
        [verb, ..] if matches!(*verb, "KNM" | "FREQ" | "EPS") => Err(err(format!(
            "{verb}: wrong field count (want {})",
            if *verb == "FREQ" {
                "FREQ <k> <n0> <n1> <coords>"
            } else if *verb == "KNM" {
                "KNM <k> <n> <coords>"
            } else {
                "EPS <eps> <n> <coords>"
            }
        ))),
        _ => Err(err("expected a KNM, FREQ or EPS query line")),
    }
}

fn render_coords(out: &mut String, coords: &[f64]) {
    for (i, v) in coords.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
}

/// Renders a [`BatchQuery`] as its request line (no newline).
pub fn format_query(q: &BatchQuery) -> String {
    let mut out = String::new();
    match q {
        BatchQuery::KnMatch { query, k, n } => {
            let _ = write!(out, "KNM {k} {n} ");
            render_coords(&mut out, query);
        }
        BatchQuery::Frequent { query, k, n0, n1 } => {
            let _ = write!(out, "FREQ {k} {n0} {n1} ");
            render_coords(&mut out, query);
        }
        BatchQuery::EpsMatch { query, eps, n } => {
            let _ = write!(out, "EPS {eps} {n} ");
            render_coords(&mut out, query);
        }
    }
    out
}

fn render_entries(out: &mut String, entries: &[MatchEntry]) {
    if entries.is_empty() {
        out.push('-');
        return;
    }
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", e.pid, e.diff);
    }
}

fn parse_entries(s: &str) -> Result<Vec<MatchEntry>, ProtoError> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|pair| {
            let (pid, diff) = pair
                .split_once(':')
                .ok_or_else(|| err(format!("expected pid:diff, got {pair:?}")))?;
            Ok(MatchEntry {
                pid: pid.parse().map_err(|_| err(format!("bad pid {pid:?}")))?,
                diff: parse_f64(diff, "diff")?,
            })
        })
        .collect()
}

/// Renders a [`Response`] as its wire line (no newline).
pub fn format_response(r: &Response) -> String {
    let mut out = String::new();
    match r {
        Response::Answer(BatchAnswer::KnMatch(res)) => {
            let _ = write!(out, "OK KNM {} ", res.n);
            render_entries(&mut out, &res.entries);
        }
        Response::Answer(BatchAnswer::EpsMatch(res)) => {
            let _ = write!(out, "OK EPS {} ", res.n);
            render_entries(&mut out, &res.entries);
        }
        Response::Answer(BatchAnswer::Frequent(res)) => {
            let _ = write!(out, "OK FREQ {} {} ", res.range.0, res.range.1);
            if res.entries.is_empty() {
                out.push('-');
            } else {
                for (i, e) in res.entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}:{}", e.pid, e.count);
                }
            }
            out.push(' ');
            if res.per_n.is_empty() {
                out.push('-');
            } else {
                for (i, level) in res.per_n.iter().enumerate() {
                    if i > 0 {
                        out.push(';');
                    }
                    let _ = write!(out, "{}=", level.n);
                    render_entries(&mut out, &level.entries);
                }
            }
        }
        Response::Error { kind, message } => {
            // Newlines inside the message would desynchronise the stream.
            let msg = message.replace(['\n', '\r'], " ");
            let _ = write!(out, "ERR {} {msg}", kind.token());
        }
        Response::Done { ok, failed } => {
            let _ = write!(out, "DONE {ok} {failed}");
        }
        Response::Deadline(ms) => {
            let _ = write!(out, "OK DEADLINE {ms}");
        }
        Response::FailFast(on) => {
            let _ = write!(out, "OK FAILFAST {}", u8::from(*on));
        }
        Response::Planner(mode) => {
            let _ = write!(out, "OK PLANNER {mode}");
        }
        Response::Stats {
            conn,
            server,
            plans,
        } => {
            out.push_str("OK STATS ");
            conn.render(&mut out);
            out.push(' ');
            server.render(&mut out);
            if let Some(p) = plans {
                let _ = write!(
                    out,
                    " plans_ad={} plans_vafile={} plans_scan={} plans_igrid={}",
                    p.ad, p.vafile, p.scan, p.igrid
                );
            }
        }
        Response::Pong => out.push_str("OK PONG"),
        Response::Bye => out.push_str("OK BYE"),
        Response::ShuttingDown => out.push_str("OK SHUTDOWN"),
    }
    out
}

/// Parses one response line (no trailing newline) — the client half of
/// the protocol.
pub fn parse_response(line: &str) -> Result<Response, ProtoError> {
    let line = line.trim_end_matches('\r');
    let fields: Vec<&str> = line.split(' ').collect();
    match fields.as_slice() {
        ["OK", "KNM", n, entries] => Ok(Response::Answer(BatchAnswer::KnMatch(KnMatchResult {
            n: parse_usize(n, "n")?,
            entries: parse_entries(entries)?,
        }))),
        ["OK", "EPS", n, entries] => Ok(Response::Answer(BatchAnswer::EpsMatch(KnMatchResult {
            n: parse_usize(n, "n")?,
            entries: parse_entries(entries)?,
        }))),
        ["OK", "FREQ", n0, n1, ranked, levels] => {
            let entries = if *ranked == "-" {
                Vec::new()
            } else {
                ranked
                    .split(',')
                    .map(|pair| {
                        let (pid, count) = pair
                            .split_once(':')
                            .ok_or_else(|| err(format!("expected pid:count, got {pair:?}")))?;
                        Ok(FrequentEntry {
                            pid: pid.parse().map_err(|_| err(format!("bad pid {pid:?}")))?,
                            count: count
                                .parse()
                                .map_err(|_| err(format!("bad count {count:?}")))?,
                        })
                    })
                    .collect::<Result<Vec<_>, ProtoError>>()?
            };
            let per_n = if *levels == "-" {
                Vec::new()
            } else {
                levels
                    .split(';')
                    .map(|level| {
                        let (n, entries) = level
                            .split_once('=')
                            .ok_or_else(|| err(format!("expected n=entries, got {level:?}")))?;
                        Ok(KnMatchResult {
                            n: parse_usize(n, "level n")?,
                            entries: parse_entries(entries)?,
                        })
                    })
                    .collect::<Result<Vec<_>, ProtoError>>()?
            };
            Ok(Response::Answer(BatchAnswer::Frequent(FrequentResult {
                range: (parse_usize(n0, "n0")?, parse_usize(n1, "n1")?),
                entries,
                per_n,
            })))
        }
        ["ERR", kind, message @ ..] => Ok(Response::Error {
            kind: ErrorKind::from_token(kind)
                .ok_or_else(|| err(format!("unknown ERR kind {kind:?}")))?,
            message: message.join(" "),
        }),
        ["DONE", ok, failed] => Ok(Response::Done {
            ok: parse_u64(ok, "DONE ok")?,
            failed: parse_u64(failed, "DONE failed")?,
        }),
        ["OK", "DEADLINE", ms] => Ok(Response::Deadline(parse_u64(ms, "ms")?)),
        ["OK", "FAILFAST", v] => match *v {
            "0" => Ok(Response::FailFast(false)),
            "1" => Ok(Response::FailFast(true)),
            other => Err(err(format!("OK FAILFAST takes 0 or 1, got {other:?}"))),
        },
        ["OK", "PLANNER", mode] => mode
            .parse::<PlannerMode>()
            .map(Response::Planner)
            .map_err(err),
        ["OK", "STATS", rest @ ..] if rest.len() == 12 || rest.len() == 16 => {
            let plans = if rest.len() == 16 {
                Some(parse_plan_tally(&rest[12..])?)
            } else {
                None
            };
            Ok(Response::Stats {
                conn: StatsSnapshot::parse(&rest[..6])?,
                server: StatsSnapshot::parse(&rest[6..12])?,
                plans,
            })
        }
        ["OK", "PONG"] => Ok(Response::Pong),
        ["OK", "BYE"] => Ok(Response::Bye),
        ["OK", "SHUTDOWN"] => Ok(Response::ShuttingDown),
        _ => Err(err(format!("unparseable response line {line:?}"))),
    }
}

/// Renders a failed query slot: the `ERR` response carrying the
/// [`KnMatchError`]'s category and display message.
pub fn error_response(e: &KnMatchError) -> Response {
    Response::Error {
        kind: ErrorKind::of_error(e),
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_query(q: BatchQuery) {
        let line = format_query(&q);
        assert_eq!(parse_query(&line).unwrap(), q);
        assert_eq!(parse_request(&line).unwrap(), Request::Query(q));
    }

    #[test]
    fn query_lines_roundtrip() {
        roundtrip_query(BatchQuery::KnMatch {
            query: vec![1.5, -2.25, 1.0 / 3.0],
            k: 2,
            n: 3,
        });
        roundtrip_query(BatchQuery::Frequent {
            query: vec![0.1, f64::MIN_POSITIVE, 1e300],
            k: 1,
            n0: 1,
            n1: 3,
        });
        roundtrip_query(BatchQuery::EpsMatch {
            query: vec![0.0, -0.0],
            eps: 0.125,
            n: 1,
        });
    }

    #[test]
    fn responses_roundtrip() {
        let answers = [
            Response::Answer(BatchAnswer::KnMatch(KnMatchResult {
                n: 2,
                entries: vec![
                    MatchEntry { pid: 3, diff: 0.5 },
                    MatchEntry {
                        pid: 7,
                        diff: 1.0 / 3.0,
                    },
                ],
            })),
            Response::Answer(BatchAnswer::EpsMatch(KnMatchResult {
                n: 1,
                entries: Vec::new(),
            })),
            Response::Answer(BatchAnswer::Frequent(FrequentResult {
                range: (1, 2),
                entries: vec![FrequentEntry { pid: 4, count: 2 }],
                per_n: vec![
                    KnMatchResult {
                        n: 1,
                        entries: vec![MatchEntry { pid: 4, diff: 0.25 }],
                    },
                    KnMatchResult {
                        n: 2,
                        entries: Vec::new(),
                    },
                ],
            })),
            Response::Error {
                kind: ErrorKind::Timeout,
                message: "query deadline exceeded".into(),
            },
            Response::Done { ok: 3, failed: 1 },
            Response::Deadline(250),
            Response::FailFast(true),
            Response::Planner(PlannerMode::VaFile),
            Response::Stats {
                conn: StatsSnapshot {
                    queries: 1,
                    errors: 2,
                    timeouts: 3,
                    bytes_in: 4,
                    bytes_out: 5,
                    connections: 1,
                },
                server: StatsSnapshot::default(),
                plans: None,
            },
            Response::Stats {
                conn: StatsSnapshot::default(),
                server: StatsSnapshot::default(),
                plans: Some(PlanTally {
                    ad: 10,
                    vafile: 4,
                    scan: 2,
                    igrid: 0,
                }),
            },
            Response::Pong,
            Response::Bye,
            Response::ShuttingDown,
        ];
        for r in answers {
            let line = format_response(&r);
            assert_eq!(parse_response(&line).unwrap(), r, "line {line:?}");
        }
    }

    #[test]
    fn planner_requests_roundtrip() {
        for mode in [
            PlannerMode::Auto,
            PlannerMode::Ad,
            PlannerMode::VaFile,
            PlannerMode::Scan,
            PlannerMode::IGrid,
        ] {
            assert_eq!(
                parse_request(&format!("PLANNER {mode}")).unwrap(),
                Request::Planner(mode)
            );
        }
    }

    #[test]
    fn error_messages_with_newlines_stay_one_line() {
        let r = Response::Error {
            kind: ErrorKind::Query,
            message: "multi\nline\r\nmessage".into(),
        };
        let line = format_response(&r);
        assert!(!line.contains('\n') && !line.contains('\r'));
        assert!(matches!(
            parse_response(&line).unwrap(),
            Response::Error {
                kind: ErrorKind::Query,
                ..
            }
        ));
    }

    #[test]
    fn error_kind_mapping() {
        assert_eq!(
            ErrorKind::of_error(&KnMatchError::DeadlineExceeded),
            ErrorKind::Timeout
        );
        assert_eq!(
            ErrorKind::of_error(&KnMatchError::Cancelled),
            ErrorKind::Cancelled
        );
        assert_eq!(
            ErrorKind::of_error(&KnMatchError::EmptyDataset),
            ErrorKind::Query
        );
        for kind in [
            ErrorKind::Parse,
            ErrorKind::Query,
            ErrorKind::Timeout,
            ErrorKind::Cancelled,
            ErrorKind::Oversized,
            ErrorKind::Busy,
            ErrorKind::Proto,
            ErrorKind::Shutdown,
        ] {
            assert_eq!(ErrorKind::from_token(kind.token()), Some(kind));
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for line in [
            "",
            "BOGUS 1 2",
            "KNM 1 2",
            "KNM x 2 1,2",
            "KNM 1 2 1,abc",
            "FREQ 1 2 1,2",
            "EPS -s 1 1,2",
            "BATCH many",
            "FAILFAST 2",
            "DEADLINE soon",
            "PLANNER fastest",
            "PLANNER",
        ] {
            assert!(parse_request(line).is_err(), "line {line:?}");
        }
        for line in ["", "OK", "OK KNM 1", "OK KNM x -", "ERR nope msg", "DONE 1"] {
            assert!(parse_response(line).is_err(), "line {line:?}");
        }
    }
}
