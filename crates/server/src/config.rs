//! One engine configuration shared by every front-end.
//!
//! `knmatch batch`, `knmatch query` and `knmatch serve` all accept the
//! same backend flags (`--workers`, `--shards`, `--disk`, `--pool-pages`,
//! `--verify`, `--planner`); [`EngineConfig`] owns that grammar in one
//! place and turns it into an [`AnyEngine`] — a [`BatchEngine`] enum over
//! the backends, so the server loop and the CLI printing code are written
//! once against the trait instead of once per concrete type.

use std::sync::Arc;

use knmatch_core::{
    AdStats, BatchAnswer, BatchEngine, BatchOptions, BatchOutcome, BatchQuery, Dataset, PlanTally,
    PlannerMode, QueryEngine, Result as CoreResult, ShardedColumns, ShardedOutcome,
    ShardedQueryEngine, SortedColumns, VersionedIndex, DEFAULT_MERGE_THRESHOLD,
};
use knmatch_storage::{
    DiskBatchOutcome, DiskDatabase, DiskQueryEngine, FileStore, IoStats, VerifyMode, MAGIC,
};

use crate::planner_engine::PlannedEngine;

/// Which backend answers the queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// In-memory [`QueryEngine`]: one shared sorted-column organisation,
    /// inter-query parallelism.
    Memory,
    /// In-memory [`ShardedQueryEngine`] over this many point-id shards:
    /// intra-query parallelism.
    Sharded(usize),
    /// Disk-backed [`DiskQueryEngine`] over a `.knm` database file.
    Disk {
        /// Shared buffer-pool capacity in pages.
        pool_pages: usize,
        /// Page read-verification policy.
        verify: VerifyMode,
    },
}

/// Pool capacity used when `--disk` is given without `--pool-pages`.
pub const DEFAULT_POOL_PAGES: usize = 256;

/// A parsed backend + worker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Batch worker threads (≥ 1).
    pub workers: usize,
    /// The backend to build.
    pub backend: Backend,
    /// `Some(mode)` builds the cost-based [`PlannedEngine`] (in-memory
    /// only) with `mode` as the default route; `None` keeps the plain
    /// single-backend engines.
    pub planner: Option<PlannerMode>,
    /// Builds the epoch-versioned [`VersionedIndex`] instead of a
    /// read-only engine, enabling the `INSERT`/`DELETE`/`EPOCH`/`SEAL`
    /// verbs (in-memory only).
    pub mutable: bool,
    /// Delta rows before the versioned index auto-seals (mutable only).
    pub merge_threshold: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: available_cpus(),
            backend: Backend::Memory,
            planner: None,
            mutable: false,
            merge_threshold: DEFAULT_MERGE_THRESHOLD,
        }
    }
}

/// Step-by-step construction of an [`EngineConfig`] with the conflict
/// rules checked once, in [`build`](EngineConfigBuilder::build) — the
/// same validation whether the knobs came from CLI flags
/// ([`EngineConfig::from_args`] is a thin parse over this) or from code.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineConfigBuilder {
    workers: Option<usize>,
    backend: Option<Backend>,
    planner: Option<PlannerMode>,
    mutable: bool,
    merge_threshold: Option<usize>,
}

impl EngineConfigBuilder {
    /// Sets the batch worker count (clamped to ≥ 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Sets the backend (default [`Backend::Memory`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Routes queries through the cost-based planner.
    pub fn planner(mut self, mode: PlannerMode) -> Self {
        self.planner = Some(mode);
        self
    }

    /// Builds the mutable, epoch-versioned index.
    pub fn mutable(mut self, on: bool) -> Self {
        self.mutable = on;
        self
    }

    /// Sets the versioned index's auto-seal threshold (clamped to ≥ 1;
    /// implies nothing on its own — only read when `mutable` is set).
    pub fn merge_threshold(mut self, rows: usize) -> Self {
        self.merge_threshold = Some(rows.max(1));
        self
    }

    /// Validates the combination and produces the config.
    ///
    /// # Errors
    ///
    /// The backend conflicts [`EngineConfig::from_args`] documents:
    /// planner with disk/sharded backends, mutable with
    /// disk/sharded/planner (the versioned index is its own in-memory
    /// organisation), or a merge threshold without mutable.
    pub fn build(self) -> Result<EngineConfig, String> {
        let backend = self.backend.unwrap_or(Backend::Memory);
        if self.planner.is_some() && backend != Backend::Memory {
            return Err("--planner routes between the in-memory backends; \
                        it cannot be combined with --disk or --shards"
                .into());
        }
        if self.mutable && backend != Backend::Memory {
            return Err("--mutable builds the in-memory versioned index; \
                        it cannot be combined with --disk or --shards"
                .into());
        }
        if self.mutable && self.planner.is_some() {
            return Err("--mutable serves the versioned index directly; \
                        it cannot be combined with --planner"
                .into());
        }
        if self.merge_threshold.is_some() && !self.mutable {
            return Err("--merge-threshold only applies to --mutable".into());
        }
        Ok(EngineConfig {
            workers: self.workers.unwrap_or_else(available_cpus),
            backend,
            planner: self.planner,
            mutable: self.mutable,
            merge_threshold: self.merge_threshold.unwrap_or(DEFAULT_MERGE_THRESHOLD),
        })
    }
}

/// The host's available parallelism (≥ 1) — the default for `--workers`
/// and `--shards auto`.
/// Parses the serving-side flags of `knmatch serve` into a
/// [`ServerConfig`](crate::ServerConfig) plus whether the event-loop
/// front-end was requested: `--max-conns N` (default 64),
/// `--event-loop` (the reactor front-end, unix only), `--executors E`
/// (reactor worker threads, `0` = one per core), and
/// `--reactor <poll|epoll|auto>` (readiness backend, default `auto`:
/// epoll on Linux, `poll(2)` elsewhere), `--idle-timeout-ms N`
/// (event loop only: evict connections idle for N ms, `0` = never, the
/// default), and `--max-inflight N` (event loop only: shed queries with
/// `ERR overloaded` once N are queued or running, `0` = auto).
///
/// # Errors
///
/// Malformed numbers or backend names, or `--executors` / `--reactor` /
/// `--idle-timeout-ms` / `--max-inflight` without `--event-loop` (the
/// blocking server's concurrency is one thread per connection; it has
/// no readiness backend and no shared queue to protect).
pub fn server_config_from_args(args: &[String]) -> Result<(crate::ServerConfig, bool), String> {
    let max_connections = parse_num(
        flag_value(args, "--max-conns").unwrap_or("64"),
        "--max-conns",
    )?;
    let event_loop = args.iter().any(|a| a == "--event-loop");
    if !event_loop {
        for flag in [
            "--executors",
            "--reactor",
            "--idle-timeout-ms",
            "--max-inflight",
        ] {
            if args.iter().any(|a| a == flag) {
                return Err(format!("{flag} only applies to --event-loop"));
            }
        }
    }
    let executors = parse_num(
        flag_value(args, "--executors").unwrap_or("0"),
        "--executors",
    )?;
    let reactor = flag_value(args, "--reactor")
        .map(str::parse)
        .transpose()?
        .unwrap_or_default();
    let idle_ms = parse_num(
        flag_value(args, "--idle-timeout-ms").unwrap_or("0"),
        "--idle-timeout-ms",
    )?;
    let max_inflight = parse_num(
        flag_value(args, "--max-inflight").unwrap_or("0"),
        "--max-inflight",
    )?;
    Ok((
        crate::ServerConfig {
            max_connections,
            executors,
            reactor,
            idle_timeout: (idle_ms > 0).then(|| std::time::Duration::from_millis(idle_ms as u64)),
            max_inflight,
            ..crate::ServerConfig::default()
        },
        event_loop,
    ))
}

fn available_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Looks up the value following `flag` (e.g. `--workers 4`).
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_num(s: &str, what: &str) -> Result<usize, String> {
    s.parse()
        .map_err(|_| format!("{what}: expected a number, got '{s}'"))
}

impl EngineConfig {
    /// Starts a builder with every knob at its default.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }

    /// Parses the shared backend flags out of a CLI argument list:
    /// `--workers W`, `--shards <S|auto>`, `--disk`, `--pool-pages P`,
    /// `--verify <never|first-read|always>`,
    /// `--planner <auto|ad|vafile|scan|igrid>`, `--mutable`,
    /// `--merge-threshold N`. Unrelated flags are ignored (the caller
    /// owns the rest of its grammar). Flag parsing lands in an
    /// [`EngineConfigBuilder`], which owns the conflict rules.
    ///
    /// `--shards auto` means one shard per available CPU, and any shard
    /// count collapses to 1 on a single-CPU host (intra-query parallelism
    /// cannot help there).
    ///
    /// # Errors
    ///
    /// Malformed numbers or modes, `--shards` combined with `--disk`,
    /// `--pool-pages` / `--verify` without `--disk`,
    /// `--merge-threshold` without `--mutable`, or `--planner` /
    /// `--mutable` combined with `--disk` / `--shards` (both are
    /// in-memory organisations; see
    /// [`build`](EngineConfigBuilder::build)).
    pub fn from_args(args: &[String]) -> Result<EngineConfig, String> {
        let mut builder = EngineConfig::builder();
        if let Some(w) = flag_value(args, "--workers") {
            builder = builder.workers(parse_num(w, "--workers")?);
        }
        let disk = args.iter().any(|a| a == "--disk");
        let shards = flag_value(args, "--shards")
            .map(|s| match s {
                "auto" => Ok(available_cpus()),
                _ => parse_num(s, "--shards"),
            })
            .transpose()?
            // On one CPU a sharded scan is pure overhead; collapse it.
            .map(|s| if available_cpus() == 1 { 1 } else { s });
        if disk && shards.is_some() {
            return Err("--shards is in-memory intra-query parallelism; \
                        it cannot be combined with --disk"
                .into());
        }
        if let Some(mode) = flag_value(args, "--planner") {
            builder = builder.planner(mode.parse::<PlannerMode>()?);
        }
        if args.iter().any(|a| a == "--mutable") {
            builder = builder.mutable(true);
        }
        if let Some(rows) = flag_value(args, "--merge-threshold") {
            builder = builder.merge_threshold(parse_num(rows, "--merge-threshold")?);
        }
        if !disk {
            for flag in ["--pool-pages", "--verify"] {
                if args.iter().any(|a| a == flag) {
                    return Err(format!("{flag} only applies to --disk"));
                }
            }
        }
        if disk {
            let pool_pages = match flag_value(args, "--pool-pages") {
                Some(p) => parse_num(p, "--pool-pages")?.max(1),
                None => DEFAULT_POOL_PAGES,
            };
            let verify = match flag_value(args, "--verify") {
                None => VerifyMode::default(),
                Some("never") => VerifyMode::Never,
                Some("first-read") => VerifyMode::FirstRead,
                Some("always") => VerifyMode::Always,
                Some(other) => {
                    return Err(format!(
                        "--verify takes never|first-read|always, got '{other}'"
                    ))
                }
            };
            builder = builder.backend(Backend::Disk { pool_pages, verify });
        } else if let Some(s) = shards {
            builder = builder.backend(Backend::Sharded(s.max(1)));
        }
        builder.build()
    }

    /// One-line human description, e.g. `"disk (256 pool pages), 4 worker(s)"`.
    ///
    /// See also [`server_config_from_args`] for the serving-side flags.
    pub fn describe(&self) -> String {
        let backend = if self.mutable {
            format!(
                "mutable versioned (seal at {} rows), in-memory",
                self.merge_threshold
            )
        } else {
            match (self.backend, self.planner) {
                (Backend::Memory, Some(mode)) => format!("planned ({mode}), in-memory"),
                (Backend::Memory, None) => "in-memory".to_string(),
                (Backend::Sharded(s), _) => format!("{s} shard(s), in-memory"),
                (Backend::Disk { pool_pages, .. }, _) => format!("disk ({pool_pages} pool pages)"),
            }
        };
        format!("{backend}, {} worker(s)", self.workers)
    }

    /// Builds the configured engine over `path` — a CSV dataset or a
    /// `.knm` database file (sniffed by magic). The in-memory backends
    /// accept both (a database file's points are loaded into memory); the
    /// disk backend requires a database file.
    ///
    /// # Errors
    ///
    /// Unreadable or unparseable input, or a CSV given to `--disk`.
    pub fn open(&self, path: &str) -> Result<AnyEngine, String> {
        let is_db = std::fs::File::open(path)
            .and_then(|mut f| {
                use std::io::Read as _;
                let mut head = [0u8; MAGIC.len()];
                // A file shorter than the magic is not a database file.
                Ok(f.read(&mut head)? == head.len() && &head == MAGIC)
            })
            .map_err(|e| format!("{path}: {e}"))?;
        match self.backend {
            Backend::Disk { pool_pages, verify } => {
                if !is_db {
                    return Err(format!(
                        "{path}: --disk needs a .knm database file (see `knmatch build`)"
                    ));
                }
                let db = DiskDatabase::open_file(path, pool_pages).map_err(|e| e.to_string())?;
                // Rebuild the engine around the store so the verification
                // policy applies to every page read the queries do.
                let (mut store, columns) = db.into_engine(self.workers).into_parts();
                store.set_verify_mode(verify);
                DiskQueryEngine::with_workers(store, columns, pool_pages, self.workers)
                    .map(AnyEngine::Disk)
                    .map_err(|e| e.to_string())
            }
            Backend::Memory | Backend::Sharded(_) => {
                let ds = if is_db {
                    let mut db = DiskDatabase::open_file(path, DEFAULT_POOL_PAGES)
                        .map_err(|e| e.to_string())?;
                    let rows: Vec<Vec<f64>> = (0..db.len())
                        .map(|pid| db.fetch_point(pid as knmatch_core::PointId))
                        .collect();
                    Dataset::from_rows(&rows).map_err(|e| e.to_string())?
                } else {
                    knmatch_data::load_dataset(path).map_err(|e| format!("{path}: {e}"))?
                };
                Ok(self.build_in_memory(&ds))
            }
        }
    }

    /// Builds an in-memory engine over an already-loaded dataset
    /// (workload generators, tests). A `Disk` backend falls back to the
    /// plain in-memory engine — there is no file to read.
    pub fn build_in_memory(&self, ds: &Dataset) -> AnyEngine {
        if self.mutable {
            // The builder rejects mutable+disk/shards/planner, and every
            // dataset that reaches here was validated non-empty with
            // ≥ 1 dimension — `from_dataset` cannot fail on it.
            return AnyEngine::Versioned(
                VersionedIndex::from_dataset(ds, self.workers, self.merge_threshold)
                    .expect("validated dataset"),
            );
        }
        match (self.backend, self.planner) {
            (Backend::Sharded(s), _) => AnyEngine::Sharded(ShardedQueryEngine::with_workers(
                Arc::new(ShardedColumns::build_with_workers(ds, s, self.workers)),
                self.workers,
            )),
            (Backend::Memory | Backend::Disk { .. }, Some(mode)) => {
                AnyEngine::Planned(PlannedEngine::with_workers(ds, self.workers, mode))
            }
            (Backend::Memory | Backend::Disk { .. }, None) => AnyEngine::Memory(
                QueryEngine::with_workers(Arc::new(SortedColumns::build(ds)), self.workers),
            ),
        }
    }
}

/// A [`BatchEngine`] over whichever backend [`EngineConfig`] built.
///
/// The server accept loop and the CLI batch printer are generic over
/// `E: BatchEngine`; this enum is the value they are instantiated with
/// when the backend is chosen at runtime by flags.
#[derive(Debug)]
pub enum AnyEngine {
    /// The in-memory engine.
    Memory(QueryEngine),
    /// The cost-based per-query planner over the in-memory backends.
    Planned(PlannedEngine),
    /// The sharded in-memory engine.
    Sharded(ShardedQueryEngine),
    /// The disk engine over a database file.
    Disk(DiskQueryEngine<FileStore>),
    /// The mutable epoch-versioned in-memory engine.
    Versioned(VersionedIndex),
}

impl AnyEngine {
    /// Points served by this engine (for the versioned engine: live
    /// points at the current epoch).
    pub fn cardinality(&self) -> usize {
        match self {
            AnyEngine::Memory(e) => e.columns().cardinality(),
            AnyEngine::Planned(e) => e.columns().cardinality(),
            AnyEngine::Sharded(e) => e.columns().cardinality(),
            AnyEngine::Disk(e) => e.columns().cardinality(),
            AnyEngine::Versioned(e) => e.live(),
        }
    }

    /// Dimensionality of the served dataset.
    pub fn dims(&self) -> usize {
        match self {
            AnyEngine::Memory(e) => e.columns().dims(),
            AnyEngine::Planned(e) => e.columns().dims(),
            AnyEngine::Sharded(e) => e.columns().dims(),
            AnyEngine::Disk(e) => e.columns().dims(),
            AnyEngine::Versioned(e) => e.dims(),
        }
    }

    /// Shared buffer-pool counters (disk backend only).
    pub fn pool_stats(&self) -> Option<IoStats> {
        match self {
            AnyEngine::Disk(e) => Some(e.pool_stats()),
            _ => None,
        }
    }

    /// Shared buffer-pool capacity (disk backend only).
    pub fn pool_pages(&self) -> Option<usize> {
        match self {
            AnyEngine::Disk(e) => Some(e.pool_pages()),
            _ => None,
        }
    }

    /// Shard count (sharded backend only).
    pub fn shard_count(&self) -> Option<usize> {
        match self {
            AnyEngine::Sharded(e) => Some(e.columns().shard_count()),
            _ => None,
        }
    }
}

/// The outcome of one [`AnyEngine`] query slot, preserving each backend's
/// extra cost detail behind the common [`BatchOutcome`] projection.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyOutcome {
    /// From the in-memory engine (plain or planned).
    Memory((BatchAnswer, AdStats)),
    /// From the sharded engine.
    Sharded(ShardedOutcome),
    /// From the disk engine.
    Disk(DiskBatchOutcome),
}

impl AnyOutcome {
    /// Modelled per-query page I/O (disk backend only).
    pub fn io(&self) -> Option<&IoStats> {
        match self {
            AnyOutcome::Disk(o) => Some(&o.io),
            _ => None,
        }
    }

    /// Per-shard AD counters (sharded backend only).
    pub fn per_shard(&self) -> Option<&[AdStats]> {
        match self {
            AnyOutcome::Sharded(o) => Some(&o.per_shard),
            _ => None,
        }
    }
}

impl BatchOutcome for AnyOutcome {
    fn answer(&self) -> &BatchAnswer {
        match self {
            AnyOutcome::Memory(o) => o.answer(),
            AnyOutcome::Sharded(o) => o.answer(),
            AnyOutcome::Disk(o) => o.answer(),
        }
    }

    fn ad_stats(&self) -> AdStats {
        match self {
            AnyOutcome::Memory(o) => o.ad_stats(),
            AnyOutcome::Sharded(o) => o.ad_stats(),
            AnyOutcome::Disk(o) => o.ad_stats(),
        }
    }

    fn into_answer(self) -> BatchAnswer {
        match self {
            AnyOutcome::Memory(o) => o.into_answer(),
            AnyOutcome::Sharded(o) => o.into_answer(),
            AnyOutcome::Disk(o) => o.into_answer(),
        }
    }
}

impl BatchEngine for AnyEngine {
    type Outcome = AnyOutcome;

    fn workers(&self) -> usize {
        match self {
            AnyEngine::Memory(e) => e.workers(),
            AnyEngine::Planned(e) => e.workers(),
            AnyEngine::Sharded(e) => e.workers(),
            AnyEngine::Disk(e) => e.workers(),
            AnyEngine::Versioned(e) => e.workers(),
        }
    }

    fn run_with(&self, queries: &[BatchQuery], opts: &BatchOptions) -> Vec<CoreResult<AnyOutcome>> {
        match self {
            AnyEngine::Memory(e) => e
                .run_with(queries, opts)
                .into_iter()
                .map(|r| r.map(AnyOutcome::Memory))
                .collect(),
            AnyEngine::Planned(e) => e
                .run_with(queries, opts)
                .into_iter()
                .map(|r| r.map(AnyOutcome::Memory))
                .collect(),
            AnyEngine::Sharded(e) => e
                .run_with(queries, opts)
                .into_iter()
                .map(|r| r.map(AnyOutcome::Sharded))
                .collect(),
            AnyEngine::Disk(e) => e
                .run_with(queries, opts)
                .into_iter()
                .map(|r| r.map(AnyOutcome::Disk))
                .collect(),
            // Versioned runs merge per-run partials with the sharded
            // merge (runs play the role of shards), so the outcome type
            // is shared too.
            AnyEngine::Versioned(e) => e
                .run_with(queries, opts)
                .into_iter()
                .map(|r| r.map(AnyOutcome::Sharded))
                .collect(),
        }
    }

    fn plan_counts(&self) -> Option<PlanTally> {
        match self {
            AnyEngine::Planned(e) => e.plan_counts(),
            _ => None,
        }
    }

    fn writer(&self) -> Option<&dyn knmatch_core::VersionWriter> {
        match self {
            AnyEngine::Versioned(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn flag_grammar() {
        let c = EngineConfig::from_args(&argv("--workers 3")).unwrap();
        assert_eq!(c.workers, 3);
        assert_eq!(c.backend, Backend::Memory);

        let c = EngineConfig::from_args(&argv("--shards 4 --workers 2")).unwrap();
        let want_shards = if available_cpus() == 1 { 1 } else { 4 };
        assert_eq!(c.backend, Backend::Sharded(want_shards));

        let c = EngineConfig::from_args(&argv("--disk --pool-pages 64 --verify always")).unwrap();
        assert_eq!(
            c.backend,
            Backend::Disk {
                pool_pages: 64,
                verify: VerifyMode::Always
            }
        );

        let c = EngineConfig::from_args(&argv("--disk")).unwrap();
        assert_eq!(
            c.backend,
            Backend::Disk {
                pool_pages: DEFAULT_POOL_PAGES,
                verify: VerifyMode::FirstRead
            }
        );

        assert!(EngineConfig::from_args(&argv("--disk --shards 2")).is_err());
        assert!(EngineConfig::from_args(&argv("--pool-pages 9")).is_err());
        assert!(EngineConfig::from_args(&argv("--verify always")).is_err());
        assert!(EngineConfig::from_args(&argv("--disk --verify sometimes")).is_err());
        assert!(EngineConfig::from_args(&argv("--workers many")).is_err());
    }

    #[test]
    fn any_engine_matches_direct_engine() {
        let ds = knmatch_core::paper::fig3_dataset();
        let batch = vec![
            BatchQuery::KnMatch {
                query: vec![3.0, 7.0, 4.0],
                k: 2,
                n: 2,
            },
            BatchQuery::EpsMatch {
                query: vec![3.0, 7.0, 4.0],
                eps: 1.6,
                n: 2,
            },
        ];
        let direct = QueryEngine::with_workers(Arc::new(SortedColumns::build(&ds)), 2);
        let want: Vec<_> = direct
            .run(&batch)
            .into_iter()
            .map(|r| r.map(|o| o.into_answer()))
            .collect();

        for cfg in [
            EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
            EngineConfig {
                workers: 2,
                planner: Some(PlannerMode::Auto),
                ..EngineConfig::default()
            },
            EngineConfig {
                workers: 2,
                backend: Backend::Sharded(2),
                ..EngineConfig::default()
            },
            EngineConfig {
                workers: 2,
                mutable: true,
                ..EngineConfig::default()
            },
        ] {
            let e = cfg.build_in_memory(&ds);
            let got: Vec<_> = e
                .run(&batch)
                .into_iter()
                .map(|r| r.map(|o| o.into_answer()))
                .collect();
            assert_eq!(got, want, "backend {:?}", cfg.backend);
            assert_eq!(e.workers(), 2);
        }
    }

    #[test]
    fn describe_names_the_backend() {
        assert!(EngineConfig::default().describe().contains("in-memory"));
        let c = EngineConfig {
            workers: 2,
            backend: Backend::Disk {
                pool_pages: 64,
                verify: VerifyMode::FirstRead,
            },
            ..EngineConfig::default()
        };
        assert!(c.describe().contains("disk"));
        let c = EngineConfig {
            workers: 2,
            backend: Backend::Sharded(3),
            ..EngineConfig::default()
        };
        assert!(c.describe().contains("3 shard(s)"));
        let c = EngineConfig {
            planner: Some(PlannerMode::VaFile),
            ..EngineConfig::default()
        };
        assert!(c.describe().contains("planned (vafile)"));
        let c = EngineConfig {
            mutable: true,
            merge_threshold: 77,
            ..EngineConfig::default()
        };
        assert!(c.describe().contains("mutable") && c.describe().contains("77"));
    }

    #[test]
    fn planner_flag_grammar() {
        let c = EngineConfig::from_args(&argv("--planner auto --workers 2")).unwrap();
        assert_eq!(c.planner, Some(PlannerMode::Auto));
        assert_eq!(c.backend, Backend::Memory);

        let c = EngineConfig::from_args(&argv("--planner scan")).unwrap();
        assert_eq!(c.planner, Some(PlannerMode::Scan));

        assert!(EngineConfig::from_args(&argv("--planner fastest")).is_err());
        assert!(EngineConfig::from_args(&argv("--planner auto --disk")).is_err());
        assert!(EngineConfig::from_args(&argv("--planner auto --shards 2")).is_err());
    }

    #[test]
    fn serve_flag_grammar() {
        use crate::server::ReactorChoice;

        let (cfg, event_loop) = server_config_from_args(&argv("--max-conns 128")).unwrap();
        assert_eq!(cfg.max_connections, 128);
        assert_eq!(cfg.reactor, ReactorChoice::Auto);
        assert!(!event_loop);

        let (cfg, event_loop) =
            server_config_from_args(&argv("--event-loop --reactor poll --executors 2")).unwrap();
        assert_eq!(cfg.reactor, ReactorChoice::Poll);
        assert_eq!(cfg.executors, 2);
        assert!(event_loop);

        let (cfg, _) = server_config_from_args(&argv("--event-loop --reactor epoll")).unwrap();
        assert_eq!(cfg.reactor, ReactorChoice::Epoll);
        let (cfg, _) = server_config_from_args(&argv("--event-loop --reactor auto")).unwrap();
        assert_eq!(cfg.reactor, ReactorChoice::Auto);

        assert!(server_config_from_args(&argv("--reactor epoll")).is_err());
        assert!(server_config_from_args(&argv("--executors 2")).is_err());
        assert!(server_config_from_args(&argv("--event-loop --reactor kqueue")).is_err());
    }

    #[test]
    fn builder_owns_the_conflict_rules() {
        let c = EngineConfig::builder()
            .workers(3)
            .mutable(true)
            .merge_threshold(16)
            .build()
            .unwrap();
        assert!(c.mutable);
        assert_eq!(c.merge_threshold, 16);
        assert_eq!(c.workers, 3);
        assert_eq!(c.backend, Backend::Memory);

        // Unset knobs keep their defaults.
        let c = EngineConfig::builder().build().unwrap();
        assert_eq!(c, EngineConfig::default());

        // Mutable is its own in-memory organisation.
        assert!(EngineConfig::builder()
            .mutable(true)
            .backend(Backend::Sharded(2))
            .build()
            .is_err());
        assert!(EngineConfig::builder()
            .mutable(true)
            .backend(Backend::Disk {
                pool_pages: 8,
                verify: VerifyMode::Never,
            })
            .build()
            .is_err());
        assert!(EngineConfig::builder()
            .mutable(true)
            .planner(PlannerMode::Auto)
            .build()
            .is_err());
        // The threshold only means something on a mutable engine.
        assert!(EngineConfig::builder().merge_threshold(8).build().is_err());
    }

    #[test]
    fn mutable_flag_grammar() {
        let c = EngineConfig::from_args(&argv("--mutable --merge-threshold 32")).unwrap();
        assert!(c.mutable);
        assert_eq!(c.merge_threshold, 32);

        let c = EngineConfig::from_args(&argv("--mutable")).unwrap();
        assert_eq!(c.merge_threshold, DEFAULT_MERGE_THRESHOLD);

        assert!(EngineConfig::from_args(&argv("--merge-threshold 32")).is_err());
        assert!(EngineConfig::from_args(&argv("--mutable --disk")).is_err());
        assert!(EngineConfig::from_args(&argv("--mutable --shards 2")).is_err());
        assert!(EngineConfig::from_args(&argv("--mutable --planner auto")).is_err());
        assert!(EngineConfig::from_args(&argv("--mutable --merge-threshold many")).is_err());
    }

    #[test]
    fn versioned_engine_exposes_a_writer() {
        let ds = knmatch_core::paper::fig3_dataset();
        let cfg = EngineConfig {
            workers: 2,
            mutable: true,
            ..EngineConfig::default()
        };
        let e = cfg.build_in_memory(&ds);
        assert_eq!(e.cardinality(), ds.len());
        assert_eq!(e.dims(), ds.dims());
        let w = e.writer().expect("mutable engine has a writer");
        let epoch = w.insert(100, &vec![1.0; ds.dims()]).unwrap();
        assert!(epoch > 0);
        assert_eq!(e.cardinality(), ds.len() + 1);

        // Read-only engines expose none.
        assert!(EngineConfig::default()
            .build_in_memory(&ds)
            .writer()
            .is_none());
    }

    #[test]
    fn shards_auto_and_single_cpu_clamp() {
        let c = EngineConfig::from_args(&argv("--shards auto")).unwrap();
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        let expect = if cpus == 1 { 1 } else { cpus };
        assert_eq!(c.backend, Backend::Sharded(expect));
        assert!(EngineConfig::from_args(&argv("--shards several")).is_err());
    }

    #[test]
    fn planned_engine_reports_plan_counts() {
        let ds = knmatch_core::paper::fig3_dataset();
        let cfg = EngineConfig {
            workers: 1,
            planner: Some(PlannerMode::Auto),
            ..EngineConfig::default()
        };
        let e = cfg.build_in_memory(&ds);
        assert_eq!(e.plan_counts(), Some(PlanTally::default()));
        let batch = vec![BatchQuery::KnMatch {
            query: vec![3.0, 7.0, 4.0],
            k: 2,
            n: 2,
        }];
        for r in e.run(&batch) {
            r.unwrap();
        }
        assert_eq!(e.plan_counts().unwrap().total(), 1);
    }
}
