//! One engine configuration shared by every front-end.
//!
//! `knmatch batch`, `knmatch query` and `knmatch serve` all accept the
//! same backend flags (`--workers`, `--shards`, `--disk`, `--pool-pages`,
//! `--verify`, `--planner`); [`EngineConfig`] owns that grammar in one
//! place and turns it into an [`AnyEngine`] — a [`BatchEngine`] enum over
//! the backends, so the server loop and the CLI printing code are written
//! once against the trait instead of once per concrete type.

use std::sync::Arc;

use knmatch_core::{
    AdStats, BatchAnswer, BatchEngine, BatchOptions, BatchOutcome, BatchQuery, Dataset, PlanTally,
    PlannerMode, QueryEngine, Result as CoreResult, ShardedColumns, ShardedOutcome,
    ShardedQueryEngine, SortedColumns,
};
use knmatch_storage::{
    DiskBatchOutcome, DiskDatabase, DiskQueryEngine, FileStore, IoStats, VerifyMode, MAGIC,
};

use crate::planner_engine::PlannedEngine;

/// Which backend answers the queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// In-memory [`QueryEngine`]: one shared sorted-column organisation,
    /// inter-query parallelism.
    Memory,
    /// In-memory [`ShardedQueryEngine`] over this many point-id shards:
    /// intra-query parallelism.
    Sharded(usize),
    /// Disk-backed [`DiskQueryEngine`] over a `.knm` database file.
    Disk {
        /// Shared buffer-pool capacity in pages.
        pool_pages: usize,
        /// Page read-verification policy.
        verify: VerifyMode,
    },
}

/// Pool capacity used when `--disk` is given without `--pool-pages`.
pub const DEFAULT_POOL_PAGES: usize = 256;

/// A parsed backend + worker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Batch worker threads (≥ 1).
    pub workers: usize,
    /// The backend to build.
    pub backend: Backend,
    /// `Some(mode)` builds the cost-based [`PlannedEngine`] (in-memory
    /// only) with `mode` as the default route; `None` keeps the plain
    /// single-backend engines.
    pub planner: Option<PlannerMode>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: available_cpus(),
            backend: Backend::Memory,
            planner: None,
        }
    }
}

/// The host's available parallelism (≥ 1) — the default for `--workers`
/// and `--shards auto`.
/// Parses the serving-side flags of `knmatch serve` into a
/// [`ServerConfig`](crate::ServerConfig) plus whether the event-loop
/// front-end was requested: `--max-conns N` (default 64),
/// `--event-loop` (the reactor front-end, unix only), `--executors E`
/// (reactor worker threads, `0` = one per core), and
/// `--reactor <poll|epoll|auto>` (readiness backend, default `auto`:
/// epoll on Linux, `poll(2)` elsewhere), `--idle-timeout-ms N`
/// (event loop only: evict connections idle for N ms, `0` = never, the
/// default), and `--max-inflight N` (event loop only: shed queries with
/// `ERR overloaded` once N are queued or running, `0` = auto).
///
/// # Errors
///
/// Malformed numbers or backend names, or `--executors` / `--reactor` /
/// `--idle-timeout-ms` / `--max-inflight` without `--event-loop` (the
/// blocking server's concurrency is one thread per connection; it has
/// no readiness backend and no shared queue to protect).
pub fn server_config_from_args(args: &[String]) -> Result<(crate::ServerConfig, bool), String> {
    let max_connections = parse_num(
        flag_value(args, "--max-conns").unwrap_or("64"),
        "--max-conns",
    )?;
    let event_loop = args.iter().any(|a| a == "--event-loop");
    if !event_loop {
        for flag in [
            "--executors",
            "--reactor",
            "--idle-timeout-ms",
            "--max-inflight",
        ] {
            if args.iter().any(|a| a == flag) {
                return Err(format!("{flag} only applies to --event-loop"));
            }
        }
    }
    let executors = parse_num(
        flag_value(args, "--executors").unwrap_or("0"),
        "--executors",
    )?;
    let reactor = flag_value(args, "--reactor")
        .map(str::parse)
        .transpose()?
        .unwrap_or_default();
    let idle_ms = parse_num(
        flag_value(args, "--idle-timeout-ms").unwrap_or("0"),
        "--idle-timeout-ms",
    )?;
    let max_inflight = parse_num(
        flag_value(args, "--max-inflight").unwrap_or("0"),
        "--max-inflight",
    )?;
    Ok((
        crate::ServerConfig {
            max_connections,
            executors,
            reactor,
            idle_timeout: (idle_ms > 0).then(|| std::time::Duration::from_millis(idle_ms as u64)),
            max_inflight,
            ..crate::ServerConfig::default()
        },
        event_loop,
    ))
}

fn available_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Looks up the value following `flag` (e.g. `--workers 4`).
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_num(s: &str, what: &str) -> Result<usize, String> {
    s.parse()
        .map_err(|_| format!("{what}: expected a number, got '{s}'"))
}

impl EngineConfig {
    /// Parses the shared backend flags out of a CLI argument list:
    /// `--workers W`, `--shards <S|auto>`, `--disk`, `--pool-pages P`,
    /// `--verify <never|first-read|always>`,
    /// `--planner <auto|ad|vafile|scan|igrid>`. Unrelated flags are
    /// ignored (the caller owns the rest of its grammar).
    ///
    /// `--shards auto` means one shard per available CPU, and any shard
    /// count collapses to 1 on a single-CPU host (intra-query parallelism
    /// cannot help there).
    ///
    /// # Errors
    ///
    /// Malformed numbers or modes, `--shards` combined with `--disk`,
    /// `--pool-pages` / `--verify` without `--disk`, or `--planner`
    /// combined with `--disk` / `--shards` (the planner routes between
    /// the in-memory backends).
    pub fn from_args(args: &[String]) -> Result<EngineConfig, String> {
        let workers = match flag_value(args, "--workers") {
            Some(w) => parse_num(w, "--workers")?.max(1),
            None => available_cpus(),
        };
        let disk = args.iter().any(|a| a == "--disk");
        let shards = flag_value(args, "--shards")
            .map(|s| match s {
                "auto" => Ok(available_cpus()),
                _ => parse_num(s, "--shards"),
            })
            .transpose()?
            // On one CPU a sharded scan is pure overhead; collapse it.
            .map(|s| if available_cpus() == 1 { 1 } else { s });
        if disk && shards.is_some() {
            return Err("--shards is in-memory intra-query parallelism; \
                        it cannot be combined with --disk"
                .into());
        }
        let planner = flag_value(args, "--planner")
            .map(|m| m.parse::<PlannerMode>())
            .transpose()?;
        if planner.is_some() && (disk || shards.is_some()) {
            return Err("--planner routes between the in-memory backends; \
                        it cannot be combined with --disk or --shards"
                .into());
        }
        if !disk {
            for flag in ["--pool-pages", "--verify"] {
                if args.iter().any(|a| a == flag) {
                    return Err(format!("{flag} only applies to --disk"));
                }
            }
        }
        let backend = if disk {
            let pool_pages = match flag_value(args, "--pool-pages") {
                Some(p) => parse_num(p, "--pool-pages")?.max(1),
                None => DEFAULT_POOL_PAGES,
            };
            let verify = match flag_value(args, "--verify") {
                None => VerifyMode::default(),
                Some("never") => VerifyMode::Never,
                Some("first-read") => VerifyMode::FirstRead,
                Some("always") => VerifyMode::Always,
                Some(other) => {
                    return Err(format!(
                        "--verify takes never|first-read|always, got '{other}'"
                    ))
                }
            };
            Backend::Disk { pool_pages, verify }
        } else if let Some(s) = shards {
            Backend::Sharded(s.max(1))
        } else {
            Backend::Memory
        };
        Ok(EngineConfig {
            workers,
            backend,
            planner,
        })
    }

    /// One-line human description, e.g. `"disk (256 pool pages), 4 worker(s)"`.
    ///
    /// See also [`server_config_from_args`] for the serving-side flags.
    pub fn describe(&self) -> String {
        let backend = match (self.backend, self.planner) {
            (Backend::Memory, Some(mode)) => format!("planned ({mode}), in-memory"),
            (Backend::Memory, None) => "in-memory".to_string(),
            (Backend::Sharded(s), _) => format!("{s} shard(s), in-memory"),
            (Backend::Disk { pool_pages, .. }, _) => format!("disk ({pool_pages} pool pages)"),
        };
        format!("{backend}, {} worker(s)", self.workers)
    }

    /// Builds the configured engine over `path` — a CSV dataset or a
    /// `.knm` database file (sniffed by magic). The in-memory backends
    /// accept both (a database file's points are loaded into memory); the
    /// disk backend requires a database file.
    ///
    /// # Errors
    ///
    /// Unreadable or unparseable input, or a CSV given to `--disk`.
    pub fn open(&self, path: &str) -> Result<AnyEngine, String> {
        let is_db = std::fs::File::open(path)
            .and_then(|mut f| {
                use std::io::Read as _;
                let mut head = [0u8; MAGIC.len()];
                // A file shorter than the magic is not a database file.
                Ok(f.read(&mut head)? == head.len() && &head == MAGIC)
            })
            .map_err(|e| format!("{path}: {e}"))?;
        match self.backend {
            Backend::Disk { pool_pages, verify } => {
                if !is_db {
                    return Err(format!(
                        "{path}: --disk needs a .knm database file (see `knmatch build`)"
                    ));
                }
                let db = DiskDatabase::open_file(path, pool_pages).map_err(|e| e.to_string())?;
                // Rebuild the engine around the store so the verification
                // policy applies to every page read the queries do.
                let (mut store, columns) = db.into_engine(self.workers).into_parts();
                store.set_verify_mode(verify);
                DiskQueryEngine::with_workers(store, columns, pool_pages, self.workers)
                    .map(AnyEngine::Disk)
                    .map_err(|e| e.to_string())
            }
            Backend::Memory | Backend::Sharded(_) => {
                let ds = if is_db {
                    let mut db = DiskDatabase::open_file(path, DEFAULT_POOL_PAGES)
                        .map_err(|e| e.to_string())?;
                    let rows: Vec<Vec<f64>> = (0..db.len())
                        .map(|pid| db.fetch_point(pid as knmatch_core::PointId))
                        .collect();
                    Dataset::from_rows(&rows).map_err(|e| e.to_string())?
                } else {
                    knmatch_data::load_dataset(path).map_err(|e| format!("{path}: {e}"))?
                };
                Ok(self.build_in_memory(&ds))
            }
        }
    }

    /// Builds an in-memory engine over an already-loaded dataset
    /// (workload generators, tests). A `Disk` backend falls back to the
    /// plain in-memory engine — there is no file to read.
    pub fn build_in_memory(&self, ds: &Dataset) -> AnyEngine {
        match (self.backend, self.planner) {
            (Backend::Sharded(s), _) => AnyEngine::Sharded(ShardedQueryEngine::with_workers(
                Arc::new(ShardedColumns::build_with_workers(ds, s, self.workers)),
                self.workers,
            )),
            (Backend::Memory | Backend::Disk { .. }, Some(mode)) => {
                AnyEngine::Planned(PlannedEngine::with_workers(ds, self.workers, mode))
            }
            (Backend::Memory | Backend::Disk { .. }, None) => AnyEngine::Memory(
                QueryEngine::with_workers(Arc::new(SortedColumns::build(ds)), self.workers),
            ),
        }
    }
}

/// A [`BatchEngine`] over whichever backend [`EngineConfig`] built.
///
/// The server accept loop and the CLI batch printer are generic over
/// `E: BatchEngine`; this enum is the value they are instantiated with
/// when the backend is chosen at runtime by flags.
#[derive(Debug)]
pub enum AnyEngine {
    /// The in-memory engine.
    Memory(QueryEngine),
    /// The cost-based per-query planner over the in-memory backends.
    Planned(PlannedEngine),
    /// The sharded in-memory engine.
    Sharded(ShardedQueryEngine),
    /// The disk engine over a database file.
    Disk(DiskQueryEngine<FileStore>),
}

impl AnyEngine {
    /// Points served by this engine.
    pub fn cardinality(&self) -> usize {
        match self {
            AnyEngine::Memory(e) => e.columns().cardinality(),
            AnyEngine::Planned(e) => e.columns().cardinality(),
            AnyEngine::Sharded(e) => e.columns().cardinality(),
            AnyEngine::Disk(e) => e.columns().cardinality(),
        }
    }

    /// Dimensionality of the served dataset.
    pub fn dims(&self) -> usize {
        match self {
            AnyEngine::Memory(e) => e.columns().dims(),
            AnyEngine::Planned(e) => e.columns().dims(),
            AnyEngine::Sharded(e) => e.columns().dims(),
            AnyEngine::Disk(e) => e.columns().dims(),
        }
    }

    /// Shared buffer-pool counters (disk backend only).
    pub fn pool_stats(&self) -> Option<IoStats> {
        match self {
            AnyEngine::Disk(e) => Some(e.pool_stats()),
            _ => None,
        }
    }

    /// Shared buffer-pool capacity (disk backend only).
    pub fn pool_pages(&self) -> Option<usize> {
        match self {
            AnyEngine::Disk(e) => Some(e.pool_pages()),
            _ => None,
        }
    }

    /// Shard count (sharded backend only).
    pub fn shard_count(&self) -> Option<usize> {
        match self {
            AnyEngine::Sharded(e) => Some(e.columns().shard_count()),
            _ => None,
        }
    }
}

/// The outcome of one [`AnyEngine`] query slot, preserving each backend's
/// extra cost detail behind the common [`BatchOutcome`] projection.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyOutcome {
    /// From the in-memory engine (plain or planned).
    Memory((BatchAnswer, AdStats)),
    /// From the sharded engine.
    Sharded(ShardedOutcome),
    /// From the disk engine.
    Disk(DiskBatchOutcome),
}

impl AnyOutcome {
    /// Modelled per-query page I/O (disk backend only).
    pub fn io(&self) -> Option<&IoStats> {
        match self {
            AnyOutcome::Disk(o) => Some(&o.io),
            _ => None,
        }
    }

    /// Per-shard AD counters (sharded backend only).
    pub fn per_shard(&self) -> Option<&[AdStats]> {
        match self {
            AnyOutcome::Sharded(o) => Some(&o.per_shard),
            _ => None,
        }
    }
}

impl BatchOutcome for AnyOutcome {
    fn answer(&self) -> &BatchAnswer {
        match self {
            AnyOutcome::Memory(o) => o.answer(),
            AnyOutcome::Sharded(o) => o.answer(),
            AnyOutcome::Disk(o) => o.answer(),
        }
    }

    fn ad_stats(&self) -> AdStats {
        match self {
            AnyOutcome::Memory(o) => o.ad_stats(),
            AnyOutcome::Sharded(o) => o.ad_stats(),
            AnyOutcome::Disk(o) => o.ad_stats(),
        }
    }

    fn into_answer(self) -> BatchAnswer {
        match self {
            AnyOutcome::Memory(o) => o.into_answer(),
            AnyOutcome::Sharded(o) => o.into_answer(),
            AnyOutcome::Disk(o) => o.into_answer(),
        }
    }
}

impl BatchEngine for AnyEngine {
    type Outcome = AnyOutcome;

    fn workers(&self) -> usize {
        match self {
            AnyEngine::Memory(e) => e.workers(),
            AnyEngine::Planned(e) => e.workers(),
            AnyEngine::Sharded(e) => e.workers(),
            AnyEngine::Disk(e) => e.workers(),
        }
    }

    fn run_with(&self, queries: &[BatchQuery], opts: &BatchOptions) -> Vec<CoreResult<AnyOutcome>> {
        match self {
            AnyEngine::Memory(e) => e
                .run_with(queries, opts)
                .into_iter()
                .map(|r| r.map(AnyOutcome::Memory))
                .collect(),
            AnyEngine::Planned(e) => e
                .run_with(queries, opts)
                .into_iter()
                .map(|r| r.map(AnyOutcome::Memory))
                .collect(),
            AnyEngine::Sharded(e) => e
                .run_with(queries, opts)
                .into_iter()
                .map(|r| r.map(AnyOutcome::Sharded))
                .collect(),
            AnyEngine::Disk(e) => e
                .run_with(queries, opts)
                .into_iter()
                .map(|r| r.map(AnyOutcome::Disk))
                .collect(),
        }
    }

    fn plan_counts(&self) -> Option<PlanTally> {
        match self {
            AnyEngine::Planned(e) => e.plan_counts(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn flag_grammar() {
        let c = EngineConfig::from_args(&argv("--workers 3")).unwrap();
        assert_eq!(c.workers, 3);
        assert_eq!(c.backend, Backend::Memory);

        let c = EngineConfig::from_args(&argv("--shards 4 --workers 2")).unwrap();
        let want_shards = if available_cpus() == 1 { 1 } else { 4 };
        assert_eq!(c.backend, Backend::Sharded(want_shards));

        let c = EngineConfig::from_args(&argv("--disk --pool-pages 64 --verify always")).unwrap();
        assert_eq!(
            c.backend,
            Backend::Disk {
                pool_pages: 64,
                verify: VerifyMode::Always
            }
        );

        let c = EngineConfig::from_args(&argv("--disk")).unwrap();
        assert_eq!(
            c.backend,
            Backend::Disk {
                pool_pages: DEFAULT_POOL_PAGES,
                verify: VerifyMode::FirstRead
            }
        );

        assert!(EngineConfig::from_args(&argv("--disk --shards 2")).is_err());
        assert!(EngineConfig::from_args(&argv("--pool-pages 9")).is_err());
        assert!(EngineConfig::from_args(&argv("--verify always")).is_err());
        assert!(EngineConfig::from_args(&argv("--disk --verify sometimes")).is_err());
        assert!(EngineConfig::from_args(&argv("--workers many")).is_err());
    }

    #[test]
    fn any_engine_matches_direct_engine() {
        let ds = knmatch_core::paper::fig3_dataset();
        let batch = vec![
            BatchQuery::KnMatch {
                query: vec![3.0, 7.0, 4.0],
                k: 2,
                n: 2,
            },
            BatchQuery::EpsMatch {
                query: vec![3.0, 7.0, 4.0],
                eps: 1.6,
                n: 2,
            },
        ];
        let direct = QueryEngine::with_workers(Arc::new(SortedColumns::build(&ds)), 2);
        let want: Vec<_> = direct
            .run(&batch)
            .into_iter()
            .map(|r| r.map(|o| o.into_answer()))
            .collect();

        for cfg in [
            EngineConfig {
                workers: 2,
                backend: Backend::Memory,
                planner: None,
            },
            EngineConfig {
                workers: 2,
                backend: Backend::Memory,
                planner: Some(PlannerMode::Auto),
            },
            EngineConfig {
                workers: 2,
                backend: Backend::Sharded(2),
                planner: None,
            },
        ] {
            let e = cfg.build_in_memory(&ds);
            let got: Vec<_> = e
                .run(&batch)
                .into_iter()
                .map(|r| r.map(|o| o.into_answer()))
                .collect();
            assert_eq!(got, want, "backend {:?}", cfg.backend);
            assert_eq!(e.workers(), 2);
        }
    }

    #[test]
    fn describe_names_the_backend() {
        assert!(EngineConfig::default().describe().contains("in-memory"));
        let c = EngineConfig {
            workers: 2,
            backend: Backend::Disk {
                pool_pages: 64,
                verify: VerifyMode::FirstRead,
            },
            planner: None,
        };
        assert!(c.describe().contains("disk"));
        let c = EngineConfig {
            workers: 2,
            backend: Backend::Sharded(3),
            planner: None,
        };
        assert!(c.describe().contains("3 shard(s)"));
        let c = EngineConfig {
            planner: Some(PlannerMode::VaFile),
            ..EngineConfig::default()
        };
        assert!(c.describe().contains("planned (vafile)"));
    }

    #[test]
    fn planner_flag_grammar() {
        let c = EngineConfig::from_args(&argv("--planner auto --workers 2")).unwrap();
        assert_eq!(c.planner, Some(PlannerMode::Auto));
        assert_eq!(c.backend, Backend::Memory);

        let c = EngineConfig::from_args(&argv("--planner scan")).unwrap();
        assert_eq!(c.planner, Some(PlannerMode::Scan));

        assert!(EngineConfig::from_args(&argv("--planner fastest")).is_err());
        assert!(EngineConfig::from_args(&argv("--planner auto --disk")).is_err());
        assert!(EngineConfig::from_args(&argv("--planner auto --shards 2")).is_err());
    }

    #[test]
    fn serve_flag_grammar() {
        use crate::server::ReactorChoice;

        let (cfg, event_loop) = server_config_from_args(&argv("--max-conns 128")).unwrap();
        assert_eq!(cfg.max_connections, 128);
        assert_eq!(cfg.reactor, ReactorChoice::Auto);
        assert!(!event_loop);

        let (cfg, event_loop) =
            server_config_from_args(&argv("--event-loop --reactor poll --executors 2")).unwrap();
        assert_eq!(cfg.reactor, ReactorChoice::Poll);
        assert_eq!(cfg.executors, 2);
        assert!(event_loop);

        let (cfg, _) = server_config_from_args(&argv("--event-loop --reactor epoll")).unwrap();
        assert_eq!(cfg.reactor, ReactorChoice::Epoll);
        let (cfg, _) = server_config_from_args(&argv("--event-loop --reactor auto")).unwrap();
        assert_eq!(cfg.reactor, ReactorChoice::Auto);

        assert!(server_config_from_args(&argv("--reactor epoll")).is_err());
        assert!(server_config_from_args(&argv("--executors 2")).is_err());
        assert!(server_config_from_args(&argv("--event-loop --reactor kqueue")).is_err());
    }

    #[test]
    fn shards_auto_and_single_cpu_clamp() {
        let c = EngineConfig::from_args(&argv("--shards auto")).unwrap();
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        let expect = if cpus == 1 { 1 } else { cpus };
        assert_eq!(c.backend, Backend::Sharded(expect));
        assert!(EngineConfig::from_args(&argv("--shards several")).is_err());
    }

    #[test]
    fn planned_engine_reports_plan_counts() {
        let ds = knmatch_core::paper::fig3_dataset();
        let cfg = EngineConfig {
            workers: 1,
            backend: Backend::Memory,
            planner: Some(PlannerMode::Auto),
        };
        let e = cfg.build_in_memory(&ds);
        assert_eq!(e.plan_counts(), Some(PlanTally::default()));
        let batch = vec![BatchQuery::KnMatch {
            query: vec![3.0, 7.0, 4.0],
            k: 2,
            n: 2,
        }];
        for r in e.run(&batch) {
            r.unwrap();
        }
        assert_eq!(e.plan_counts().unwrap().total(), 1);
    }
}
