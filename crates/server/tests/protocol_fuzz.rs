//! Protocol fuzzing: a seeded in-repo PRNG throws malformed, truncated,
//! and oversized frames at a live server. The invariant under test is
//! that the process never dies and that well-formed queries still get
//! correct answers afterwards — on the same connection where the
//! protocol allows it, and on a fresh connection otherwise.
//!
//! Everything is seeded (`knmatch_data::rng::seeded`), so a passing run
//! is reproducible, not lucky.

use std::net::SocketAddr;
use std::thread;
use std::time::Duration;

use knmatch_core::{BatchAnswer, BatchEngine, BatchOutcome, BatchQuery};
use knmatch_data::rng::{seeded, Rng64};
use knmatch_data::uniform;
#[cfg(unix)]
use knmatch_server::ReactorChoice;
use knmatch_server::{
    Backend, Client, EngineConfig, ErrorKind, Response, Server, ServerConfig, MAX_LINE,
};

const SEED: u64 = 0x000F_0225_FA57;
const ROUNDS: usize = 24;

/// The readiness backends this host can run: `poll` everywhere, plus
/// `epoll` on Linux.
#[cfg(unix)]
fn backends() -> Vec<ReactorChoice> {
    if cfg!(target_os = "linux") {
        vec![ReactorChoice::Poll, ReactorChoice::Epoll]
    } else {
        vec![ReactorChoice::Poll]
    }
}

/// Fires shutdown when dropped, so an assertion failure inside the test
/// body unblocks the scoped server thread instead of deadlocking the
/// `thread::scope` join.
struct ShutdownGuard(knmatch_server::ShutdownHandle);

impl Drop for ShutdownGuard {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

fn build_engine() -> knmatch_server::AnyEngine {
    let ds = uniform(120, 3, 0xDA7A);
    EngineConfig {
        workers: 2,
        backend: Backend::Memory,
        planner: None,
        ..EngineConfig::default()
    }
    .build_in_memory(&ds)
}

/// The well-formed probe sent after every garbage bout, plus the answer
/// the engine gives when asked directly.
fn probe_and_expected(engine: &knmatch_server::AnyEngine) -> (BatchQuery, BatchAnswer) {
    let probe = BatchQuery::KnMatch {
        query: vec![0.5, 0.25, 0.75],
        k: 4,
        n: 2,
    };
    let direct = engine
        .run(std::slice::from_ref(&probe))
        .pop()
        .expect("one slot")
        .expect("valid probe")
        .into_answer();
    (probe, direct)
}

/// One garbage payload, by round-robin over the interesting shapes.
fn garbage(rng: &mut Rng64, round: usize) -> Vec<u8> {
    match round % 6 {
        // Raw binary noise: arbitrary bytes, newline-terminated so the
        // server sees it as (several) complete lines.
        0 => {
            let len = rng.range_usize(1..2048);
            let mut bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
            bytes.push(b'\n');
            bytes
        }
        // A known verb with mangled operands.
        1 => {
            let verbs = ["KNM", "FREQ", "EPS", "BATCH", "DEADLINE", "FAILFAST"];
            let verb = verbs[rng.range_usize(0..verbs.len())];
            let junk: String = (0..rng.range_usize(1..40))
                .map(|_| (b'!' + (rng.next_u64() % 90) as u8) as char)
                .collect();
            format!("{verb} {junk}\n").into_bytes()
        }
        // A truncated but syntactically plausible query line.
        2 => {
            let full = format!(
                "KNM {} {} 0.1,0.2,0.3\n",
                rng.range_usize(1..9),
                rng.range_usize(1..4)
            );
            let cut = rng.range_usize(1..full.len());
            let mut bytes = full.as_bytes()[..cut].to_vec();
            bytes.push(b'\n');
            bytes
        }
        // An oversized line: longer than MAX_LINE, drained server-side.
        3 => {
            let mut bytes = vec![b'x'; MAX_LINE + rng.range_usize(1..4096)];
            bytes.push(b'\n');
            bytes
        }
        // A batch header that lies about its size (the body is cut off
        // by the connection close that follows the bout).
        4 => {
            let n = rng.range_usize(3..200);
            let supplied = rng.range_usize(0..2);
            let mut frame = format!("BATCH {n}\n");
            for _ in 0..supplied {
                frame.push_str("KNM 2 1 0.4,0.4,0.4\n");
            }
            frame.into_bytes()
        }
        // A batch over the size cap, or a header that is not a number.
        _ => {
            if rng.next_bool() {
                format!("BATCH {}\n", knmatch_server::MAX_BATCH + 1).into_bytes()
            } else {
                b"BATCH many\n".to_vec()
            }
        }
    }
}

/// Drains whatever the server sends until EOF or a short timeout; the
/// content is irrelevant, only that the server keeps emitting parseable
/// responses (or closes) rather than wedging.
fn drain(client: &mut Client) {
    client.set_timeout(Some(Duration::from_millis(100))).ok();
    while client.recv_response().is_ok() {}
}

fn assert_healthy(addr: SocketAddr, probe: &BatchQuery, expected: &BatchAnswer, round: usize) {
    let mut client = Client::connect(addr).expect("connect health probe");
    client
        .ping()
        .unwrap_or_else(|e| panic!("round {round}: ping after garbage: {e:?}"));
    let got = client
        .query(probe)
        .unwrap_or_else(|e| panic!("round {round}: probe transport: {e:?}"))
        .unwrap_or_else(|e| panic!("round {round}: probe rejected: {e}"));
    assert_eq!(
        &got, expected,
        "round {round}: answer drifted after garbage"
    );
    client.quit().expect("quit");
}

#[test]
fn fuzzed_frames_never_take_the_server_down() {
    let engine = build_engine();
    let (probe, expected) = probe_and_expected(&engine);
    let server = Server::bind(engine, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();

    thread::scope(|s| {
        let serving = s.spawn(|| server.serve().expect("serve"));
        {
            let _guard = ShutdownGuard(handle);
            let mut rng = seeded(SEED);

            for round in 0..ROUNDS {
                // Garbage on its own connection, then abandon it
                // mid-stream: the server must survive EOF at any
                // protocol state.
                let mut attacker = Client::connect(addr).expect("connect attacker");
                attacker
                    .send_raw(&garbage(&mut rng, round))
                    .expect("send garbage");
                drain(&mut attacker);
                drop(attacker);

                // The server still answers a well-formed query, correctly.
                assert_healthy(addr, &probe, &expected, round);
            }
        }
        serving.join().expect("server thread");
    });
    let stats = server.stats();
    assert!(
        stats.errors > 0,
        "fuzz rounds should have drawn ERR responses"
    );
}

/// Same-connection recovery: after an in-protocol error the connection
/// itself stays usable — an oversized line or a malformed verb yields
/// ERR, and the next line is processed normally.
#[test]
fn connection_recovers_after_in_protocol_errors() {
    let engine = build_engine();
    let (probe, expected) = probe_and_expected(&engine);
    let server = Server::bind(engine, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();

    thread::scope(|s| {
        let serving = s.spawn(|| server.serve().expect("serve"));
        let _guard = ShutdownGuard(handle);
        let mut client = Client::connect(addr).expect("connect");
        client.set_timeout(Some(Duration::from_secs(10))).ok();

        // Unknown verb → ERR parse, connection lives.
        client.send_raw(b"FLY 1 2 3\n").expect("send");
        match client.recv_response().expect("response") {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Parse),
            other => panic!("expected ERR parse, got {other:?}"),
        }

        // Oversized line → ERR oversized, connection lives.
        let mut big = vec![b'z'; MAX_LINE + 17];
        big.push(b'\n');
        client.send_raw(&big).expect("send oversized");
        match client.recv_response().expect("response") {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Oversized),
            other => panic!("expected ERR oversized, got {other:?}"),
        }

        // A batch mixing malformed and valid lines answers every slot
        // in order and still sends the DONE trailer.
        client
            .send_raw(b"BATCH 3\nKNM 4 2 0.5,0.25,0.75\nnot a query\nKNM 4 2 0.5,0.25,0.75\n")
            .expect("send mixed batch");
        match client.recv_response().expect("slot 0") {
            Response::Answer(a) => assert_eq!(a, expected),
            other => panic!("expected answer, got {other:?}"),
        }
        match client.recv_response().expect("slot 1") {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Parse),
            other => panic!("expected ERR parse, got {other:?}"),
        }
        match client.recv_response().expect("slot 2") {
            Response::Answer(a) => assert_eq!(a, expected),
            other => panic!("expected answer, got {other:?}"),
        }
        match client.recv_response().expect("trailer") {
            Response::Done { ok, failed } => {
                assert_eq!(ok, 2);
                assert_eq!(failed, 1);
            }
            other => panic!("expected DONE, got {other:?}"),
        }

        // And the ordinary client path still works on this connection.
        let got = client.query(&probe).expect("transport").expect("answer");
        assert_eq!(got, expected);
        client.quit().expect("quit");

        drop(_guard);
        serving.join().expect("server thread");
    });
}

/// One malformed binary payload per round: unknown kinds, truncated
/// frames, forged lengths and counts, magic followed by junk.
#[cfg(unix)]
fn binary_garbage(rng: &mut Rng64, round: usize) -> Vec<u8> {
    use knmatch_server::protocol::encode_request_frame;
    use knmatch_server::{Request, FRAME_MAGIC, MAX_FRAME};
    match round % 6 {
        // Unknown frame kind with a small random payload.
        0 => {
            let len = rng.range_usize(0..32);
            let mut bytes = vec![FRAME_MAGIC, 0x7E];
            bytes.extend_from_slice(&(len as u32).to_le_bytes());
            bytes.extend((0..len).map(|_| (rng.next_u64() & 0xFF) as u8));
            bytes
        }
        // A header declaring a frame over the cap; the server must
        // answer ERR oversized without allocating the claimed bytes.
        1 => {
            let mut bytes = vec![FRAME_MAGIC, 0x02];
            bytes.extend_from_slice(&((MAX_FRAME as u32) + 1).to_le_bytes());
            bytes
        }
        // A valid query frame truncated mid-payload (the close after the
        // bout leaves it forever incomplete).
        2 => {
            let mut frame = Vec::new();
            encode_request_frame(
                &Request::Query(BatchQuery::KnMatch {
                    query: vec![0.1, 0.2, 0.3],
                    k: 2,
                    n: 1,
                }),
                &mut frame,
            )
            .expect("encode");
            let cut = rng.range_usize(1..frame.len());
            frame.truncate(cut);
            frame
        }
        // Magic plus a plausible length over random junk: a complete
        // frame whose payload does not decode.
        3 => {
            let len = rng.range_usize(1..64);
            let mut bytes = vec![FRAME_MAGIC, 0x01];
            bytes.extend_from_slice(&(len as u32).to_le_bytes());
            bytes.extend((0..len).map(|_| (rng.next_u64() & 0xFF) as u8));
            bytes
        }
        // A well-formed binary PING chased by text noise on the same
        // stream: encodings interleave at frame granularity.
        4 => {
            let mut bytes = Vec::new();
            encode_request_frame(&Request::Ping, &mut bytes).expect("encode");
            bytes.extend_from_slice(b"??? not a verb ???\n");
            bytes
        }
        // A batch frame whose count field lies (u32::MAX entries in a
        // four-byte payload).
        _ => {
            let mut bytes = vec![FRAME_MAGIC, 0x02, 4, 0, 0, 0];
            bytes.extend_from_slice(&u32::MAX.to_le_bytes());
            bytes
        }
    }
}

/// The event-loop server under the same regime as the blocking one:
/// seeded malformed *binary* frames (interleaved with text noise) never
/// take it down, and correct answers keep flowing — under every
/// readiness backend the host offers.
#[cfg(unix)]
#[test]
fn event_server_survives_binary_garbage() {
    for reactor in backends() {
        let engine = build_engine();
        let (probe, expected) = probe_and_expected(&engine);
        let cfg = ServerConfig {
            reactor,
            ..ServerConfig::default()
        };
        let server = knmatch_server::EventServer::bind(engine, "127.0.0.1:0", cfg).expect("bind");
        let addr = server.local_addr();
        let handle = server.handle();

        thread::scope(|s| {
            let serving = s.spawn(|| server.serve().expect("serve"));
            {
                let _guard = ShutdownGuard(handle);
                let mut rng = seeded(SEED ^ 0xB1AA);

                for round in 0..ROUNDS {
                    let mut attacker = Client::connect(addr).expect("connect attacker");
                    attacker
                        .send_raw(&binary_garbage(&mut rng, round))
                        .expect("send garbage");
                    drain(&mut attacker);
                    drop(attacker);

                    // Text garbage rounds hit the reactor's line path too.
                    let mut attacker = Client::connect(addr).expect("connect attacker");
                    attacker
                        .send_raw(&garbage(&mut rng, round))
                        .expect("send garbage");
                    drain(&mut attacker);
                    drop(attacker);

                    assert_healthy(addr, &probe, &expected, round);
                }
            }
            serving.join().expect("server thread");
        });
        let stats = server.stats();
        assert!(
            stats.errors > 0,
            "fuzz rounds should have drawn ERR responses under {reactor}"
        );
    }
}

/// Frames split at arbitrary syscall boundaries reassemble exactly: a
/// mixed text/binary request stream delivered a few bytes at a time
/// yields the same responses, in order, as one large write.
#[cfg(unix)]
#[test]
fn split_writes_reassemble_across_syscall_boundaries() {
    use knmatch_server::protocol::{encode_batch_frame, encode_request_frame, format_query};
    use knmatch_server::Request;

    for reactor in backends() {
        let engine = build_engine();
        let (probe, expected) = probe_and_expected(&engine);
        let cfg = ServerConfig {
            reactor,
            ..ServerConfig::default()
        };
        let server = knmatch_server::EventServer::bind(engine, "127.0.0.1:0", cfg).expect("bind");
        let addr = server.local_addr();
        let handle = server.handle();

        thread::scope(|s| {
            let serving = s.spawn(|| server.serve().expect("serve"));
            let _guard = ShutdownGuard(handle);

            // The whole conversation as one byte stream: binary PING, text
            // PING, a binary batch of two probes, a text probe.
            let mut stream = Vec::new();
            encode_request_frame(&Request::Ping, &mut stream).expect("encode");
            stream.extend_from_slice(b"PING\n");
            encode_batch_frame(&[probe.clone(), probe.clone()], &mut stream);
            stream.extend_from_slice(format_query(&probe).as_bytes());
            stream.push(b'\n');

            let mut client = Client::connect(addr).expect("connect");
            client.set_timeout(Some(Duration::from_secs(30))).ok();
            let mut rng = seeded(SEED ^ 0x5717);
            let mut sent = 0;
            let mut chunks = 0;
            while sent < stream.len() {
                let n = rng.range_usize(1..8).min(stream.len() - sent);
                client
                    .send_raw(&stream[sent..sent + n])
                    .expect("send chunk");
                sent += n;
                chunks += 1;
                if chunks % 8 == 0 {
                    // Give the reactor a chance to observe a partial frame.
                    thread::sleep(Duration::from_millis(1));
                }
            }

            match client.recv_response().expect("binary pong") {
                Response::Pong => {}
                other => panic!("expected PONG, got {other:?}"),
            }
            match client.recv_response().expect("text pong") {
                Response::Pong => {}
                other => panic!("expected PONG, got {other:?}"),
            }
            for slot in 0..2 {
                match client.recv_response().expect("batch slot") {
                    Response::Answer(a) => assert_eq!(a, expected, "slot {slot}"),
                    other => panic!("expected answer, got {other:?}"),
                }
            }
            match client.recv_response().expect("trailer") {
                Response::Done { ok, failed } => assert_eq!((ok, failed), (2, 0)),
                other => panic!("expected DONE, got {other:?}"),
            }
            match client.recv_response().expect("text answer") {
                Response::Answer(a) => assert_eq!(a, expected),
                other => panic!("expected answer, got {other:?}"),
            }
            client.quit().expect("quit");

            drop(_guard);
            serving.join().expect("server thread");
        });
    }
}

/// The reverse split: a slow *reader*. Twenty large pipelined batches
/// are sent while nothing is read, so the server's socket buffer fills
/// and `writev` returns partial counts mid-iovec; the resumed flush must
/// still deliver every response byte-exactly and in order.
#[cfg(unix)]
#[test]
fn slow_reader_forces_partial_writev_resume() {
    const BATCHES: usize = 20;

    for reactor in backends() {
        let engine = build_engine();
        let queries: Vec<BatchQuery> = (0..100)
            .map(|i| BatchQuery::KnMatch {
                query: vec![
                    0.005 * i as f64,
                    1.0 - 0.005 * i as f64,
                    0.3 + 0.003 * i as f64,
                ],
                k: 8,
                n: 3,
            })
            .collect();
        let expected: Vec<BatchAnswer> = engine
            .run(&queries)
            .into_iter()
            .map(|r| r.expect("valid query").into_answer())
            .collect();
        let cfg = ServerConfig {
            executors: 2,
            reactor,
            ..ServerConfig::default()
        };
        let server = knmatch_server::EventServer::bind(engine, "127.0.0.1:0", cfg).expect("bind");
        let addr = server.local_addr();
        let handle = server.handle();

        thread::scope(|s| {
            let serving = s.spawn(|| server.serve().expect("serve"));
            let _guard = ShutdownGuard(handle);

            let mut client = Client::connect(addr).expect("connect");
            client.set_binary(true);
            client.set_timeout(Some(Duration::from_secs(30))).ok();
            for _ in 0..BATCHES {
                client.send_batch(&queries).expect("send batch");
            }
            // Let the executors finish and the reactor hit WouldBlock
            // against the unread socket before the first read.
            thread::sleep(Duration::from_millis(100));
            for batch in 0..BATCHES {
                let reply = client.recv_batch(queries.len()).expect("recv batch");
                assert_eq!(
                    (reply.ok, reply.failed),
                    (queries.len() as u64, 0),
                    "batch {batch} under {reactor}"
                );
                for (slot, (got, want)) in reply.answers.iter().zip(&expected).enumerate() {
                    assert_eq!(
                        got.as_ref().expect("answer"),
                        want,
                        "batch {batch} slot {slot} under {reactor}"
                    );
                }
            }
            let (_, _, _, extras) = client.stats_full().expect("stats");
            let extras = extras.expect("event server reports extras");
            assert!(
                extras.writev_calls > 0,
                "responses must flush through writev under {reactor}"
            );
            client.quit().expect("quit");

            drop(_guard);
            serving.join().expect("server thread");
        });
    }
}
