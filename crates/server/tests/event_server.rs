//! The event-loop server serves the same protocol as the blocking one:
//! pipelined answers bit-identical to direct engine runs, strict
//! response ordering, mixed text/binary connections, instant drain.
#![cfg(unix)]

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use knmatch_core::{BatchEngine, BatchOutcome, BatchQuery, KnMatchError};
use knmatch_data::uniform;
use knmatch_server::protocol::{encode_batch_frame, encode_query_frame, format_query};
use knmatch_server::{
    Backend, Client, EngineConfig, ErrorKind, EventServer, ReactorChoice, ReactorKind, Response,
    ServerConfig, StatsSnapshot,
};

/// The readiness backends this host can run: `poll` everywhere, plus
/// `epoll` on Linux.
fn backends() -> Vec<ReactorChoice> {
    if cfg!(target_os = "linux") {
        vec![ReactorChoice::Poll, ReactorChoice::Epoll]
    } else {
        vec![ReactorChoice::Poll]
    }
}

struct ShutdownGuard(knmatch_server::ShutdownHandle);

impl Drop for ShutdownGuard {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Binds an ephemeral-port event server over `engine`, runs `f` against
/// it, shuts down, and returns the server's final counters.
fn with_event_server<E, F>(engine: E, cfg: ServerConfig, f: F) -> StatsSnapshot
where
    E: BatchEngine + Sync,
    F: FnOnce(SocketAddr),
{
    let server = EventServer::bind(engine, "127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    thread::scope(|s| {
        let serving = s.spawn(|| server.serve().expect("serve"));
        {
            let _guard = ShutdownGuard(handle);
            f(addr);
        }
        serving.join().expect("server thread");
    });
    server.stats()
}

/// The cross-check workload: all three query kinds plus two invalid
/// slots (dimension mismatch, negative epsilon).
fn workload(dims: usize) -> Vec<BatchQuery> {
    let mut queries = Vec::new();
    for i in 0..4 {
        let v = 0.15 + 0.2 * i as f64;
        queries.push(BatchQuery::KnMatch {
            query: vec![v; dims],
            k: 3,
            n: 2,
        });
        queries.push(BatchQuery::Frequent {
            query: vec![1.0 - v; dims],
            k: 2,
            n0: 1,
            n1: dims,
        });
        queries.push(BatchQuery::EpsMatch {
            query: vec![v; dims],
            eps: 0.05,
            n: 2,
        });
    }
    queries.push(BatchQuery::KnMatch {
        query: vec![0.5; dims + 1],
        k: 1,
        n: 1,
    });
    queries.push(BatchQuery::EpsMatch {
        query: vec![0.5; dims],
        eps: -1.0,
        n: 1,
    });
    queries
}

fn expected_wire<O: BatchOutcome>(
    direct: Vec<Result<O, KnMatchError>>,
) -> Vec<Result<knmatch_core::BatchAnswer, (ErrorKind, String)>> {
    direct
        .into_iter()
        .map(|r| match r {
            Ok(o) => Ok(o.into_answer()),
            Err(e) => Err((ErrorKind::of_error(&e), e.to_string())),
        })
        .collect()
}

fn temp_csv(tag: &str) -> (TempDir, String) {
    let dir = std::env::temp_dir().join(format!("knmatch-event-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ds = uniform(200, 4, 0x5EED);
    let csv = dir.join("data.csv");
    knmatch_data::save_dataset(&csv, &ds).expect("write csv");
    (TempDir(dir.clone()), csv.to_string_lossy().into_owned())
}

struct TempDir(std::path::PathBuf);

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Satellite 3's core claim: pipelined answers (text and binary) are
/// bit-identical to direct `BatchEngine` runs at workers 1/2/4, and
/// arrive strictly in submission order.
#[test]
fn pipelined_answers_bit_identical_at_every_worker_count() {
    let (_dir, csv) = temp_csv("xcheck");
    let queries = workload(4);
    for workers in [1, 2, 4] {
        let cfg = EngineConfig {
            workers,
            backend: Backend::Memory,
            planner: None,
            ..EngineConfig::default()
        };
        let engine = cfg.open(&csv).expect("open engine");
        let expected = expected_wire(engine.run(&queries));

        let stats = with_event_server(
            engine,
            ServerConfig {
                executors: 2,
                ..ServerConfig::default()
            },
            |addr| {
                thread::scope(|s| {
                    for binary in [false, true] {
                        let queries = &queries;
                        let expected = &expected;
                        s.spawn(move || {
                            let mut client = Client::connect(addr).expect("connect");
                            client.set_binary(binary);
                            client.ping().expect("ping");
                            // Individually pipelined requests, depth 8.
                            let answers = client.run_pipelined(queries, 8).expect("pipelined");
                            assert_eq!(answers.len(), expected.len());
                            for (got, want) in answers.iter().zip(expected) {
                                match (got, want) {
                                    (Ok(a), Ok(b)) => assert_eq!(a, b, "answer diverged"),
                                    (Err(e), Err((kind, msg))) => {
                                        assert_eq!(e.kind, *kind);
                                        assert_eq!(&e.message, msg);
                                    }
                                    other => panic!("slot shape diverged: {other:?}"),
                                }
                            }
                            // The same workload as one batch request.
                            let reply = client.run_batch(queries).expect("batch");
                            assert_eq!(reply.ok, 12, "workers={workers} binary={binary}");
                            assert_eq!(reply.failed, 2);
                            for (got, want) in reply.answers.iter().zip(expected) {
                                match (got, want) {
                                    (Ok(a), Ok(b)) => assert_eq!(a, b, "batch answer diverged"),
                                    (Err(e), Err((kind, msg))) => {
                                        assert_eq!(e.kind, *kind);
                                        assert_eq!(&e.message, msg);
                                    }
                                    other => panic!("slot shape diverged: {other:?}"),
                                }
                            }
                            client.quit().expect("quit");
                        });
                    }
                });
            },
        );
        assert_eq!(stats.connections, 2);
        assert_eq!(stats.queries, 2 * 2 * queries.len() as u64);
        assert_eq!(stats.errors, 2 * 2 * 2, "two invalid slots per pass");
    }
}

/// One connection may switch encodings between requests; the server
/// answers each request in the encoding it arrived in.
#[test]
fn text_and_binary_interleave_on_one_connection() {
    let (_dir, csv) = temp_csv("mixed");
    let engine = EngineConfig {
        workers: 1,
        backend: Backend::Memory,
        planner: None,
        ..EngineConfig::default()
    }
    .open(&csv)
    .expect("open engine");
    let q = BatchQuery::KnMatch {
        query: vec![0.5; 4],
        k: 2,
        n: 2,
    };
    let direct = expected_wire(
        EngineConfig {
            workers: 1,
            backend: Backend::Memory,
            planner: None,
            ..EngineConfig::default()
        }
        .open(&csv)
        .expect("open")
        .run(std::slice::from_ref(&q)),
    );

    with_event_server(engine, ServerConfig::default(), |addr| {
        let mut client = Client::connect(addr).expect("connect");
        for binary in [false, true, false, true] {
            client.set_binary(binary);
            client.ping().expect("ping");
            let got = client.query(&q).expect("query").expect("answer");
            match &direct[0] {
                Ok(want) => assert_eq!(&got, want, "binary={binary}"),
                Err(_) => panic!("healthy query failed"),
            }
            let reply = client.run_batch(std::slice::from_ref(&q)).expect("batch");
            assert_eq!(reply.ok, 1);
        }
        // Empty batches stay legal in both encodings.
        for binary in [false, true] {
            client.set_binary(binary);
            let reply = client.run_batch(&[]).expect("empty batch");
            assert_eq!((reply.ok, reply.failed), (0, 0));
        }
        client.quit().expect("quit");
    });
}

/// STATS grows the reactor extras (satellite 4): peak connections,
/// deepest pipeline, and binary frame count all travel the text wire.
#[test]
fn stats_extras_report_reactor_counters() {
    let (_dir, csv) = temp_csv("extras");
    let engine = EngineConfig {
        workers: 1,
        backend: Backend::Memory,
        planner: None,
        ..EngineConfig::default()
    }
    .open(&csv)
    .expect("open engine");
    let queries: Vec<BatchQuery> = (0..16)
        .map(|i| BatchQuery::KnMatch {
            query: vec![0.1 + 0.05 * i as f64; 4],
            k: 2,
            n: 2,
        })
        .collect();

    with_event_server(engine, ServerConfig::default(), |addr| {
        let mut other = Client::connect(addr).expect("connect other");
        other.ping().expect("ping");
        let mut client = Client::connect(addr).expect("connect");
        client.set_binary(true);
        let answers = client.run_pipelined(&queries, 8).expect("pipelined");
        assert_eq!(answers.len(), queries.len());
        let (conn, server, _plans, extras) = client.stats_full().expect("stats");
        assert_eq!(conn.queries, 16);
        assert!(server.queries >= 16);
        let extras = extras.expect("event server reports extras");
        assert!(extras.conns_peak >= 2, "two clients were connected");
        // The 16 queries went out in an 8-deep burst; the reactor parses
        // the whole burst before executors can drain it.
        assert!(
            extras.pipeline_depth_max >= 4,
            "burst should pipeline, got depth {}",
            extras.pipeline_depth_max
        );
        // 16 query frames + the STATS frame itself, at least.
        assert!(extras.frames_binary >= 17, "got {}", extras.frames_binary);
        // The reactor counters travel too: a resolved backend, at least
        // one wait round, events for our traffic, vectored flushes.
        assert_ne!(extras.reactor_backend, ReactorKind::None);
        assert!(extras.poll_iterations >= 1);
        assert!(extras.events_dispatched >= 1);
        assert!(extras.writev_calls >= 1);
        other.quit().expect("quit other");
        client.quit().expect("quit");
    });
}

/// Satellite 2: shutdown wakes every connection immediately — the drain
/// completes in under 10ms even with idle pipelined clients parked on
/// the server (the blocking server needed a `poll_interval` round trip
/// per handler).
#[test]
fn graceful_drain_completes_under_ten_ms() {
    let (_dir, csv) = temp_csv("drain");
    for reactor in backends() {
        let engine = EngineConfig {
            workers: 1,
            backend: Backend::Memory,
            planner: None,
            ..EngineConfig::default()
        }
        .open(&csv)
        .expect("open engine");
        let cfg = ServerConfig {
            reactor,
            ..ServerConfig::default()
        };
        let server = EventServer::bind(engine, "127.0.0.1:0", cfg).expect("bind");
        let addr = server.local_addr();
        let handle = server.handle();
        thread::scope(|s| {
            let serving = s.spawn(|| server.serve().expect("serve"));
            let mut idle: Vec<Client> = (0..8)
                .map(|_| {
                    let mut c = Client::connect(addr).expect("connect");
                    c.ping().expect("ping");
                    c
                })
                .collect();
            let t0 = Instant::now();
            handle.shutdown();
            serving.join().expect("server thread");
            let drained = t0.elapsed();
            assert!(
                drained < Duration::from_millis(10),
                "drain took {drained:?} under {reactor}"
            );
            // Every parked client got the ERR shutdown farewell.
            for c in idle.iter_mut() {
                match c.recv_response().expect("farewell") {
                    Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Shutdown),
                    other => panic!("expected ERR shutdown, got {other:?}"),
                }
            }
        });
    }
}

/// Over-limit connections get `ERR busy` and a close, like the blocking
/// server.
#[test]
fn connection_limit_rejects_with_busy() {
    let (_dir, csv) = temp_csv("busy");
    let engine = EngineConfig {
        workers: 1,
        backend: Backend::Memory,
        planner: None,
        ..EngineConfig::default()
    }
    .open(&csv)
    .expect("open engine");
    let stats = with_event_server(
        engine,
        ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        },
        |addr| {
            let mut first = Client::connect(addr).expect("connect");
            first.ping().expect("ping");
            let mut second = Client::connect(addr).expect("connect");
            match second.recv_response().expect("busy line") {
                Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Busy),
                other => panic!("expected ERR busy, got {other:?}"),
            }
            drop(second);
            first.ping().expect("ping after reject");
            first.quit().expect("quit");
        },
    );
    assert_eq!(stats.connections, 1, "the rejected socket is not counted");
}

/// A SHUTDOWN verb drains the server from the wire, and in-flight work
/// still completes before the farewell.
#[test]
fn shutdown_verb_drains_from_the_wire() {
    let (_dir, csv) = temp_csv("wire-shutdown");
    let engine = EngineConfig {
        workers: 1,
        backend: Backend::Memory,
        planner: None,
        ..EngineConfig::default()
    }
    .open(&csv)
    .expect("open engine");
    let server = EventServer::bind(engine, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    thread::scope(|s| {
        let serving = s.spawn(|| server.serve().expect("serve"));
        let client = Client::connect(addr).expect("connect");
        client.shutdown_server().expect("shutdown handshake");
        serving.join().expect("server thread");
    });
}

/// One self-delimiting request per unit: every workload query as a text
/// line and as a binary frame, the whole workload as one batch in each
/// encoding, a PING, and the closing QUIT. Deterministic byte-for-byte
/// (STATS, whose counters vary, stays out).
fn request_units(queries: &[BatchQuery]) -> Vec<Vec<u8>> {
    let mut units = Vec::new();
    for q in queries {
        units.push(format!("{}\n", format_query(q)).into_bytes());
    }
    for q in queries {
        let mut frame = Vec::new();
        encode_query_frame(q, &mut frame);
        units.push(frame);
    }
    let mut batch = Vec::new();
    encode_batch_frame(queries, &mut batch);
    units.push(batch);
    let mut text_batch = format!("BATCH {}\n", queries.len()).into_bytes();
    for q in queries {
        text_batch.extend_from_slice(format!("{}\n", format_query(q)).as_bytes());
    }
    units.push(text_batch);
    units.push(b"PING\n".to_vec());
    units.push(b"QUIT\n".to_vec());
    units
}

/// Writes each chunk, opportunistically draining whatever response
/// bytes are already available (so deeper chunks exercise deeper
/// pipelines), then reads to EOF after the final QUIT. The returned
/// capture is the connection's entire response stream in order.
fn capture_stream(addr: SocketAddr, chunks: &[Vec<u8>]) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_nodelay(true).ok();
    s.set_read_timeout(Some(Duration::from_millis(2)))
        .expect("read timeout");
    let mut captured = Vec::new();
    let mut buf = [0u8; 4096];
    for chunk in chunks {
        s.write_all(chunk).expect("send chunk");
        loop {
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => captured.extend_from_slice(&buf[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    break
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("read: {e}"),
            }
        }
    }
    s.set_read_timeout(None).expect("read timeout off");
    loop {
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => captured.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => panic!("read to EOF: {e}"),
        }
    }
    captured
}

/// The tentpole's bit-identity claim: the same pipelined request stream
/// through `--reactor poll` and `--reactor epoll` produces the same
/// response bytes — across worker counts 1/2/4 and pipeline depths
/// 1/8/64 (requests per write burst).
#[test]
fn poll_and_epoll_produce_byte_identical_streams() {
    if !cfg!(target_os = "linux") {
        return; // nothing to cross-check without an epoll backend
    }
    let (_dir, csv) = temp_csv("bitident");
    let queries = workload(4);
    let units = request_units(&queries);
    for workers in [1, 2, 4] {
        for depth in [1usize, 8, 64] {
            let chunks: Vec<Vec<u8>> = units.chunks(depth).map(|c| c.concat()).collect();
            let mut streams: Vec<Vec<u8>> = Vec::new();
            for reactor in [ReactorChoice::Poll, ReactorChoice::Epoll] {
                let engine = EngineConfig {
                    workers,
                    backend: Backend::Memory,
                    planner: None,
                    ..EngineConfig::default()
                }
                .open(&csv)
                .expect("open engine");
                let cfg = ServerConfig {
                    executors: 2,
                    reactor,
                    ..ServerConfig::default()
                };
                let mut captured = Vec::new();
                with_event_server(engine, cfg, |addr| {
                    captured = capture_stream(addr, &chunks);
                });
                streams.push(captured);
            }
            assert!(!streams[0].is_empty(), "poll produced no bytes");
            assert_eq!(
                streams[0], streams[1],
                "poll and epoll response streams diverged at workers={workers} depth={depth}"
            );
        }
    }
}

/// The O(ready) claim behind the epoll backend: with 512 idle
/// connections parked and 8 clients active, events dispatched per wait
/// round track the active set, not the connection count.
#[test]
fn epoll_dispatch_tracks_active_set_not_connection_count() {
    if !cfg!(target_os = "linux") {
        return;
    }
    let (_dir, csv) = temp_csv("dispatch");
    let engine = EngineConfig {
        workers: 1,
        backend: Backend::Memory,
        planner: None,
        ..EngineConfig::default()
    }
    .open(&csv)
    .expect("open engine");
    let cfg = ServerConfig {
        max_connections: 600,
        executors: 2,
        reactor: ReactorChoice::Epoll,
        ..ServerConfig::default()
    };
    with_event_server(engine, cfg, |addr| {
        // Park 512 idle connections (the ping proves each is accepted
        // and registered before the measurement starts).
        let mut idle: Vec<Client> = (0..512)
            .map(|_| {
                let mut c = Client::connect(addr).expect("connect idle");
                c.ping().expect("ping idle");
                c
            })
            .collect();
        let mut probe = Client::connect(addr).expect("connect probe");
        let (_, _, _, extras) = probe.stats_full().expect("stats before");
        let before = extras.expect("event server reports extras");
        assert_eq!(before.reactor_backend, ReactorKind::Epoll);

        let queries: Vec<BatchQuery> = (0..64)
            .map(|i| BatchQuery::KnMatch {
                query: vec![0.1 + 0.01 * i as f64; 4],
                k: 2,
                n: 2,
            })
            .collect();
        thread::scope(|s| {
            for _ in 0..8 {
                let queries = &queries;
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect active");
                    c.set_binary(true);
                    for _ in 0..4 {
                        let answers = c.run_pipelined(queries, 16).expect("pipelined");
                        assert_eq!(answers.len(), queries.len());
                    }
                    c.quit().expect("quit active");
                });
            }
        });

        let (_, _, _, extras) = probe.stats_full().expect("stats after");
        let after = extras.expect("event server reports extras");
        let iters = after.poll_iterations - before.poll_iterations;
        let events = after.events_dispatched - before.events_dispatched;
        assert!(iters > 0, "the active phase must spin the reactor");
        assert!(
            after.writev_calls > before.writev_calls,
            "responses flush through writev"
        );
        let per_iter = events as f64 / iters as f64;
        assert!(
            per_iter <= 64.0,
            "events/iteration {per_iter:.1} should track the ~9 active \
             connections, not the 512 idle ones"
        );
        for c in idle.iter_mut() {
            c.ping().expect("idle conns still serviceable");
        }
    });
}
