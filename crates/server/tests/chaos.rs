//! Chaos harness: concurrent retrying clients against a fault-injected
//! event server must still get answers bit-identical to direct engine
//! runs, at every fault rate × readiness backend × worker count in the
//! matrix — and the server must drain with zero leaked pooled buffers
//! (asserted inside `EventServer::serve` itself) while its overload
//! protections (shedding, idle eviction, deadline cancellation) kick in
//! exactly when provoked.
#![cfg(unix)]

use std::net::SocketAddr;
use std::thread;
use std::time::Duration;

use knmatch_core::{BatchEngine, BatchOutcome, BatchQuery, KnMatchError};
use knmatch_data::uniform;
use knmatch_server::protocol::{format_query, retry_after_ms};
use knmatch_server::{
    Backend, Client, EngineConfig, ErrorKind, EventServer, NetFaultConfig, ReactorChoice, Response,
    RetryPolicy, RetryingClient, ServerConfig, ServerExtras, StatsSnapshot,
};

/// The readiness backends this host can run: `poll` everywhere, plus
/// `epoll` on Linux.
fn backends() -> Vec<ReactorChoice> {
    if cfg!(target_os = "linux") {
        vec![ReactorChoice::Poll, ReactorChoice::Epoll]
    } else {
        vec![ReactorChoice::Poll]
    }
}

struct ShutdownGuard(knmatch_server::ShutdownHandle);

impl Drop for ShutdownGuard {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Binds an ephemeral-port event server over `engine`, runs `f` against
/// it, shuts down, and returns the final counters plus the event-loop
/// extras. `serve` itself asserts the buffer-pool leak ledger balances
/// after the drain, so every test here checks "zero leaks" for free.
fn with_event_server<E, F>(engine: E, cfg: ServerConfig, f: F) -> (StatsSnapshot, ServerExtras)
where
    E: BatchEngine + Sync,
    F: FnOnce(SocketAddr),
{
    let server = EventServer::bind(engine, "127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    thread::scope(|s| {
        let serving = s.spawn(|| server.serve().expect("serve"));
        {
            let _guard = ShutdownGuard(handle);
            f(addr);
        }
        serving.join().expect("server thread");
    });
    (server.stats(), server.extras())
}

fn temp_csv(tag: &str) -> (TempDir, String) {
    let dir = std::env::temp_dir().join(format!("knmatch-chaos-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ds = uniform(200, 4, 0x5EED);
    let csv = dir.join("data.csv");
    knmatch_data::save_dataset(&csv, &ds).expect("write csv");
    (TempDir(dir.clone()), csv.to_string_lossy().into_owned())
}

struct TempDir(std::path::PathBuf);

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The chaos workload: all three query kinds plus two invalid slots, so
/// error answers have to survive the faults bit-identically too.
fn workload(dims: usize) -> Vec<BatchQuery> {
    let mut queries = Vec::new();
    for i in 0..4 {
        let v = 0.15 + 0.2 * i as f64;
        queries.push(BatchQuery::KnMatch {
            query: vec![v; dims],
            k: 3,
            n: 2,
        });
        queries.push(BatchQuery::Frequent {
            query: vec![1.0 - v; dims],
            k: 2,
            n0: 1,
            n1: dims,
        });
        queries.push(BatchQuery::EpsMatch {
            query: vec![v; dims],
            eps: 0.05,
            n: 2,
        });
    }
    queries.push(BatchQuery::KnMatch {
        query: vec![0.5; dims + 1],
        k: 1,
        n: 1,
    });
    queries.push(BatchQuery::EpsMatch {
        query: vec![0.5; dims],
        eps: -1.0,
        n: 1,
    });
    queries
}

fn expected_wire<O: BatchOutcome>(
    direct: Vec<Result<O, KnMatchError>>,
) -> Vec<Result<knmatch_core::BatchAnswer, (ErrorKind, String)>> {
    direct
        .into_iter()
        .map(|r| match r {
            Ok(o) => Ok(o.into_answer()),
            Err(e) => Err((ErrorKind::of_error(&e), e.to_string())),
        })
        .collect()
}

/// The tentpole's core claim: at fault rates 1% / 10% / 30%, on every
/// readiness backend, at engine workers 1 / 2 / 4, three concurrent
/// retrying clients (mixed text and binary framing) get batch answers
/// bit-identical to a direct engine run — torn frames, short writes,
/// stalls and injected resets notwithstanding — and the server drains
/// leak-free afterwards.
#[test]
fn chaos_matrix_bit_identical_under_faults() {
    let (_dir, csv) = temp_csv("matrix");
    let queries = workload(4);
    for backend in backends() {
        for (ri, rate) in [0.01, 0.1, 0.3].into_iter().enumerate() {
            for workers in [1usize, 2, 4] {
                let cfg = EngineConfig {
                    workers,
                    backend: Backend::Memory,
                    planner: None,
                    ..EngineConfig::default()
                };
                let engine = cfg.open(&csv).expect("open engine");
                let expected = expected_wire(engine.run(&queries));
                let scfg = ServerConfig {
                    reactor: backend,
                    executors: 2,
                    fault: Some(NetFaultConfig::mixed(
                        0xC0FF_EE00 ^ (ri as u64) ^ ((workers as u64) << 8),
                        rate,
                    )),
                    ..ServerConfig::default()
                };
                let label = format!("{backend:?} rate={rate} workers={workers}");
                with_event_server(engine, scfg, |addr| {
                    thread::scope(|s| {
                        for c in 0..3u64 {
                            let expected = &expected;
                            let queries = &queries;
                            let label = &label;
                            s.spawn(move || {
                                let policy = RetryPolicy {
                                    retries: 24,
                                    timeout: Some(Duration::from_secs(10)),
                                    backoff_base: Duration::from_millis(1),
                                    backoff_cap: Duration::from_millis(20),
                                    seed: 0xBAD5EED + c,
                                };
                                let mut client =
                                    RetryingClient::connect(addr, policy).expect("resolve");
                                client.set_binary(c % 2 == 1);
                                for round in 0..2 {
                                    let reply = client.run_batch(queries).unwrap_or_else(|e| {
                                        panic!("{label} client {c} round {round}: {e}")
                                    });
                                    assert_eq!(
                                        reply.answers.len(),
                                        expected.len(),
                                        "{label} client {c} round {round}: answer count"
                                    );
                                    for (i, (got, want)) in
                                        reply.answers.iter().zip(expected).enumerate()
                                    {
                                        match (got, want) {
                                            (Ok(a), Ok(b)) => assert_eq!(
                                                a, b,
                                                "{label} client {c} round {round} slot {i}"
                                            ),
                                            (Err(e), Err((kind, msg))) => {
                                                assert_eq!(&e.kind, kind, "{label} slot {i}");
                                                assert_eq!(&e.message, msg, "{label} slot {i}");
                                            }
                                            other => panic!(
                                                "{label} client {c} slot {i}: \
                                                 Ok/Err mismatch {other:?}"
                                            ),
                                        }
                                    }
                                }
                                client.close();
                            });
                        }
                    });
                });
            }
        }
    }
}

/// Satellite 1: with no work and no deadlines pending, the reactor
/// parks in its wait call instead of ticking — an idle server with one
/// parked connection burns a bounded handful of loop iterations, not
/// one per `poll_interval`.
#[test]
fn adaptive_wait_keeps_idle_reactor_quiet() {
    let (_dir, csv) = temp_csv("idlecpu");
    for backend in backends() {
        let engine = EngineConfig::default().open(&csv).expect("open engine");
        let scfg = ServerConfig {
            reactor: backend,
            executors: 1,
            ..ServerConfig::default()
        };
        let (_stats, extras) = with_event_server(engine, scfg, |addr| {
            let mut c = Client::connect(addr).expect("connect");
            c.ping().expect("ping");
            // Park: nothing in flight, no idle timeout armed, so the
            // reactor should sleep in poll/epoll_wait the whole time.
            thread::sleep(Duration::from_millis(400));
            c.ping().expect("ping after park");
            c.quit().expect("quit");
        });
        // Connect + two pings + quit + shutdown cost a few iterations
        // each; a 50ms ticker would burn ≥ 8 during the park alone.
        assert!(
            extras.poll_iterations <= 30,
            "{backend:?}: idle reactor ticked {} times",
            extras.poll_iterations
        );
    }
}

/// Satellite 1b + tentpole: a peer idle past `--idle-timeout-ms` is
/// evicted (slow-loris defence), counted, and the wait timeout wakes
/// the reactor for it without a busy tick.
#[test]
fn idle_peers_are_evicted() {
    let (_dir, csv) = temp_csv("evict");
    for backend in backends() {
        let engine = EngineConfig::default().open(&csv).expect("open engine");
        let scfg = ServerConfig {
            reactor: backend,
            executors: 1,
            idle_timeout: Some(Duration::from_millis(50)),
            ..ServerConfig::default()
        };
        let (_stats, extras) = with_event_server(engine, scfg, |addr| {
            let mut c = Client::connect(addr).expect("connect");
            c.ping().expect("ping");
            thread::sleep(Duration::from_millis(300));
            // The server should have closed us long ago.
            let gone = c.ping().is_err();
            assert!(gone, "{backend:?}: idle connection survived the timeout");
        });
        assert_eq!(extras.conns_evicted, 1, "{backend:?}: eviction not counted");
    }
}

/// Tentpole: past the in-flight budget the server sheds queries with
/// `ERR overloaded` *before* parsing them, keeps the connection usable,
/// hands the client a `retry-after-ms` hint, and counts every shed.
#[test]
fn overload_sheds_with_retry_after_hint() {
    let (_dir, csv) = temp_csv("shed");
    for backend in backends() {
        let engine = EngineConfig::default().open(&csv).expect("open engine");
        let scfg = ServerConfig {
            reactor: backend,
            executors: 1,
            max_inflight: 1,
            retry_after: Duration::from_millis(7),
            ..ServerConfig::default()
        };
        let q = BatchQuery::KnMatch {
            query: vec![0.4; 4],
            k: 2,
            n: 2,
        };
        let burst: String = (0..8).map(|_| format_query(&q) + "\n").collect();
        let (_stats, extras) = with_event_server(engine, scfg, |addr| {
            let mut c = Client::connect(addr).expect("connect");
            // One write carrying 8 pipelined queries: the reactor admits
            // work until the budget (1) is full, then sheds the rest of
            // the burst without touching the engine.
            c.send_raw(burst.as_bytes()).expect("send burst");
            let mut ok = 0u64;
            let mut shed = 0u64;
            for i in 0..8 {
                match c.recv_response().expect("response") {
                    Response::Answer(_) => ok += 1,
                    Response::Error { kind, message } => {
                        assert_eq!(kind, ErrorKind::Overloaded, "slot {i}: {message}");
                        assert_eq!(
                            retry_after_ms(&message),
                            Some(7),
                            "slot {i}: missing retry-after hint in {message:?}"
                        );
                        shed += 1;
                    }
                    other => panic!("slot {i}: unexpected {other:?}"),
                }
            }
            assert!(ok >= 1, "budget of 1 admitted nothing");
            assert!(shed >= 1, "nothing shed past the budget");
            // The connection is still usable after being shed on.
            c.ping().expect("ping after shed");
            c.quit().expect("quit");
        });
        assert!(extras.queries_shed >= 1, "{backend:?}: sheds not counted");
        assert!(
            extras.retries_observed >= extras.queries_shed,
            "{backend:?}: shed replies must count as retry prompts"
        );
    }
}

/// Tentpole: `ERR busy` (connection limit) carries the retry-after hint
/// and a [`RetryingClient`] rides it out — backing off until the seat
/// frees up, then getting the real answer.
#[test]
fn busy_reject_backs_off_and_wins_a_seat() {
    let (_dir, csv) = temp_csv("busy");
    for backend in backends() {
        let cfg = EngineConfig::default();
        let engine = cfg.open(&csv).expect("open engine");
        let q = BatchQuery::KnMatch {
            query: vec![0.3; 4],
            k: 2,
            n: 2,
        };
        let expected = expected_wire(engine.run(std::slice::from_ref(&q)));
        let scfg = ServerConfig {
            reactor: backend,
            executors: 1,
            max_connections: 1,
            retry_after: Duration::from_millis(5),
            ..ServerConfig::default()
        };
        with_event_server(engine, scfg, |addr| {
            let mut seat = Client::connect(addr).expect("connect seat-holder");
            seat.ping().expect("seat-holder ping");
            thread::scope(|s| {
                let contender = s.spawn(move || {
                    let policy = RetryPolicy {
                        retries: 60,
                        timeout: Some(Duration::from_secs(5)),
                        backoff_base: Duration::from_millis(2),
                        backoff_cap: Duration::from_millis(20),
                        seed: 11,
                    };
                    let mut c = RetryingClient::connect(addr, policy).expect("resolve");
                    let got = c.query(&q).expect("query through busy rejects");
                    let used = c.retries_used();
                    c.close();
                    (got, used)
                });
                // Hold the only seat long enough that the contender is
                // rejected busy at least once, then release it.
                thread::sleep(Duration::from_millis(100));
                seat.quit().expect("release seat");
                let (got, used) = contender.join().expect("contender");
                match (&got, &expected[0]) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "{backend:?}: answer differs"),
                    other => panic!("{backend:?}: unexpected {other:?}"),
                }
                assert!(used > 0, "{backend:?}: contender never had to retry");
            });
        });
    }
}

/// Tentpole: the `DEADLINE` budget propagates into queued jobs as an
/// absolute instant, so work that expires while waiting behind a slow
/// queue is cancelled at pickup (counted, answered `ERR timeout`)
/// instead of burning an executor on a doomed query.
#[test]
fn deadline_cancels_skip_doomed_queries() {
    // Big enough that a single query costs real work in release mode:
    // 512 of these behind one executor take tens of milliseconds, so the
    // tail of the burst is guaranteed to outlive its 1ms budget no matter
    // how fast the host is.
    let ds = uniform(100_000, 8, 0x00DD_BA11);
    for backend in backends() {
        let engine = EngineConfig::default().build_in_memory(&ds);
        let scfg = ServerConfig {
            reactor: backend,
            executors: 1,
            ..ServerConfig::default()
        };
        let q = BatchQuery::KnMatch {
            query: vec![0.6; 8],
            k: 3,
            n: 2,
        };
        let burst: String = (0..512).map(|_| format_query(&q) + "\n").collect();
        let (_stats, extras) = with_event_server(engine, scfg, |addr| {
            let mut c = Client::connect(addr).expect("connect");
            c.set_deadline_ms(1).expect("deadline");
            c.send_raw(burst.as_bytes()).expect("send burst");
            let mut answered = 0u64;
            let mut timed_out = 0u64;
            for i in 0..512 {
                match c.recv_response().expect("response") {
                    Response::Answer(_) => answered += 1,
                    Response::Error { kind, message } => {
                        assert_eq!(kind, ErrorKind::Timeout, "slot {i}: {message}");
                        timed_out += 1;
                    }
                    other => panic!("slot {i}: unexpected {other:?}"),
                }
            }
            assert_eq!(answered + timed_out, 512);
            assert!(
                timed_out > 0,
                "512 one-ms queries behind one executor never timed out"
            );
            c.quit().expect("quit");
        });
        assert!(
            extras.deadline_cancels > 0,
            "{backend:?}: expired queued jobs were not cancelled at pickup"
        );
    }
}
