//! Live ingestion end to end: the `INSERT`/`DELETE`/`EPOCH`/`SEAL`
//! verbs against both front-ends, over both encodings, with queries
//! interleaved — writes become visible to later queries, epochs grow
//! monotonically, background maintenance keeps the run list bounded,
//! and read-only servers reject every write verb.

use std::net::SocketAddr;
use std::thread;
use std::time::Duration;

use knmatch_core::{BatchAnswer, BatchEngine, BatchQuery};
use knmatch_data::uniform;
use knmatch_server::{Client, EngineConfig, ErrorKind, Server, ServerConfig, StatsSnapshot};

struct ShutdownGuard(knmatch_server::ShutdownHandle);

impl Drop for ShutdownGuard {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Binds an ephemeral-port blocking server over `engine`, runs `f`
/// against it, shuts down, and returns the final counters.
fn with_server<E, F>(engine: E, f: F) -> StatsSnapshot
where
    E: BatchEngine + Sync,
    F: FnOnce(SocketAddr),
{
    let server = Server::bind(engine, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    thread::scope(|s| {
        let serving = s.spawn(|| server.serve().expect("serve"));
        {
            let _guard = ShutdownGuard(handle);
            f(addr);
        }
        serving.join().expect("server thread");
    });
    server.stats()
}

/// A mutable engine over a small uniform dataset, sealing every
/// `threshold` delta rows.
fn mutable_engine(rows: usize, threshold: usize) -> (knmatch_server::AnyEngine, usize) {
    let ds = uniform(rows, 4, 0x5EED);
    let cfg = EngineConfig::builder()
        .workers(2)
        .mutable(true)
        .merge_threshold(threshold)
        .build()
        .expect("valid config");
    (cfg.build_in_memory(&ds), ds.dims())
}

/// One k-1-match probe at `at` whose top answer must be `want`.
fn probe(client: &mut Client, dims: usize, at: f64, want: u32) {
    let q = BatchQuery::KnMatch {
        query: vec![at; dims],
        k: 1,
        n: dims,
    };
    let answer = client.query(&q).expect("query").expect("served");
    match answer {
        BatchAnswer::KnMatch(r) => assert_eq!(r.ids(), vec![want]),
        other => panic!("expected a KNM answer, got {other:?}"),
    }
}

/// The write verbs round-trip on the blocking server, writes are
/// visible to the very next query, and the version counters track them.
/// (The blocking front-end is text-only; the binary encoding is
/// exercised against the event server below.)
#[test]
fn write_verbs_blocking_server() {
    let (engine, dims) = mutable_engine(120, 1024);
    with_server(engine, |addr| {
        let mut c = Client::connect(addr).expect("connect");

        let info = c.epoch().expect("epoch").expect("served");
        assert_eq!(info.live, 120);
        let start_epoch = info.epoch;

        // An insert far outside the [0,1] cube is the unambiguous
        // nearest neighbour of a probe at its location.
        let e1 = c
            .insert(900, &vec![5.0; dims])
            .expect("insert")
            .expect("served");
        assert!(e1 > start_epoch, "insert must bump the epoch");
        probe(&mut c, dims, 5.0, 900);

        // Upsert: same key, new location; old location must lose.
        let e2 = c
            .insert(900, &vec![9.0; dims])
            .expect("insert")
            .expect("served");
        assert!(e2 > e1);
        probe(&mut c, dims, 9.0, 900);

        let sealed = c.seal().expect("seal").expect("served");
        assert!(sealed >= e2);
        let info = c.epoch().expect("epoch").expect("served");
        assert_eq!(info.live, 121);
        assert_eq!(info.delta, 0, "seal must empty the delta");
        assert!(info.runs >= 1);

        // Delete after the seal: a tombstone, not a delta edit.
        let e3 = c.delete(900).expect("delete").expect("served");
        assert!(e3 > sealed);
        let info = c.epoch().expect("epoch").expect("served");
        assert_eq!(info.live, 120);

        // Deleting a dead key is a served error, not a transport one.
        let err = c.delete(900).expect("delete").expect_err("dead key");
        assert_eq!(err.kind, ErrorKind::Query);
        assert!(err.message.contains("900"), "message: {}", err.message);

        // The STATS version group mirrors what EPOCH reported.
        let report = c.stats_report().expect("stats");
        let v = report.version.expect("mutable engine reports version");
        assert_eq!(v.live, 120);
        assert_eq!(v.writes, 3, "2 inserts/upserts + 1 delete");
        assert!(v.tombstones >= 1);
        c.quit().expect("quit");
    });
}

/// Read-only engines answer every write verb with `ERR query` and stay
/// fully functional afterwards.
#[test]
fn read_only_server_rejects_writes() {
    let ds = uniform(50, 4, 0x5EED);
    let engine = EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    }
    .build_in_memory(&ds);
    with_server(engine, |addr| {
        let mut c = Client::connect(addr).expect("connect");
        for verb in ["INSERT 7 1,2,3,4", "DELETE 7", "EPOCH", "SEAL"] {
            c.send_raw(format!("{verb}\n").as_bytes()).expect("send");
            match c.recv_response().expect("recv") {
                knmatch_server::Response::Error { kind, message } => {
                    assert_eq!(kind, ErrorKind::Query, "verb {verb}");
                    assert!(message.contains("immutable"), "verb {verb}: {message}");
                }
                other => panic!("verb {verb}: expected ERR, got {other:?}"),
            }
        }
        // The connection still answers reads.
        c.ping().expect("ping");
        assert!(c.stats_report().expect("stats").version.is_none());
        c.quit().expect("quit");
    });
}

/// A writer streaming inserts/deletes while readers query concurrently:
/// every reader answer is exact for *some* epoch (k=1 probes at write
/// targets never see torn state), and enough churn passes through the
/// small seal threshold to drive background compaction.
#[test]
fn concurrent_writes_and_reads_blocking_server() {
    let (engine, dims) = mutable_engine(100, 8);
    with_server(engine, |addr| {
        thread::scope(|s| {
            // Writer: 150 upserts over 10 hot keys moving outward, with
            // periodic deletes; the threshold of 8 forces ~18 seals and
            // with that, inline maintenance merges.
            s.spawn(move || {
                let mut w = Client::connect(addr).expect("connect writer");
                let mut last = 0;
                for i in 0..150u32 {
                    let key = 500 + (i % 10);
                    let at = 3.0 + f64::from(i % 10);
                    let e = w
                        .insert(key, &vec![at; dims])
                        .expect("insert")
                        .expect("served");
                    assert!(e > last, "epochs must grow");
                    last = e;
                    if i % 30 == 29 {
                        let key = 500 + ((i + 5) % 10);
                        let e = w.delete(key).expect("delete").expect("served");
                        assert!(e > last, "delete must bump the epoch");
                        last = w
                            .insert(key, &vec![3.0 + f64::from((i + 5) % 10); dims])
                            .expect("reinsert")
                            .expect("served");
                    }
                }
                w.quit().expect("quit writer");
            });
            // Two readers hammer a probe at 3.0: key 500 is upserted
            // there first and never moves, so once visible it stays the
            // top answer at every later epoch.
            for _ in 0..2 {
                s.spawn(move || {
                    let mut r = Client::connect(addr).expect("connect reader");
                    let q = BatchQuery::KnMatch {
                        query: vec![3.0; dims],
                        k: 1,
                        n: dims,
                    };
                    let mut seen_inserted = false;
                    for _ in 0..60 {
                        let reply = r.run_batch(std::slice::from_ref(&q)).expect("batch");
                        let answer = reply.answers[0].as_ref().expect("served");
                        if let BatchAnswer::KnMatch(res) = answer {
                            if seen_inserted {
                                assert_eq!(res.ids(), vec![500], "visible writes never revert");
                            } else if res.ids() == vec![500] {
                                seen_inserted = true;
                            }
                        }
                    }
                    r.quit().expect("quit reader");
                });
            }
        });

        // Quiescent: all writer traffic acknowledged. Maintenance ran
        // inline on the writer's connection, so the run list is bounded
        // and merges were counted.
        let mut c = Client::connect(addr).expect("connect");
        let v = c
            .stats_report()
            .expect("stats")
            .version
            .expect("version group");
        assert!(v.merges >= 1, "expected at least one compaction: {v:?}");
        assert!(v.runs <= 10, "run list must stay bounded: {v:?}");
        assert_eq!(v.live, 110, "100 seeded + 10 hot keys");
        c.quit().expect("quit");
    });
}

#[cfg(unix)]
mod event_loop {
    use super::*;
    use knmatch_server::{EventServer, ReactorChoice};

    fn backends() -> Vec<ReactorChoice> {
        if cfg!(target_os = "linux") {
            vec![ReactorChoice::Poll, ReactorChoice::Epoll]
        } else {
            vec![ReactorChoice::Poll]
        }
    }

    fn with_event_server<E, F>(engine: E, cfg: ServerConfig, f: F)
    where
        E: BatchEngine + Sync,
        F: FnOnce(SocketAddr),
    {
        let server = EventServer::bind(engine, "127.0.0.1:0", cfg).expect("bind");
        let addr = server.local_addr();
        let handle = server.handle();
        thread::scope(|s| {
            let serving = s.spawn(|| server.serve().expect("serve"));
            {
                let _guard = ShutdownGuard(handle);
                f(addr);
            }
            serving.join().expect("server thread");
        });
    }

    /// The same verb conversation as the blocking test, on the event
    /// loop, for every reactor backend and both encodings.
    #[test]
    fn write_verbs_event_server() {
        for reactor in backends() {
            for binary in [false, true] {
                let (engine, dims) = mutable_engine(120, 1024);
                let cfg = ServerConfig {
                    reactor,
                    ..ServerConfig::default()
                };
                with_event_server(engine, cfg, |addr| {
                    let mut c = Client::connect(addr).expect("connect");
                    c.set_binary(binary);
                    let start = c.epoch().expect("epoch").expect("served");
                    assert_eq!(start.live, 120);
                    let e1 = c
                        .insert(900, &vec![5.0; dims])
                        .expect("insert")
                        .expect("served");
                    assert!(e1 > start.epoch);
                    probe(&mut c, dims, 5.0, 900);
                    let sealed = c.seal().expect("seal").expect("served");
                    assert!(sealed >= e1);
                    let e2 = c.delete(900).expect("delete").expect("served");
                    assert!(e2 > sealed);
                    let v = c
                        .stats_report()
                        .expect("stats")
                        .version
                        .expect("version group");
                    assert_eq!(v.live, 120);
                    assert_eq!(v.writes, 2);
                    c.quit().expect("quit");
                });
            }
        }
    }

    /// Writer churn with a tiny seal threshold drives the executor-side
    /// maintenance jobs; readers pipeline queries concurrently and the
    /// run list ends bounded.
    #[test]
    fn concurrent_ingest_event_server() {
        let (engine, dims) = mutable_engine(100, 8);
        let cfg = ServerConfig {
            executors: 2,
            ..ServerConfig::default()
        };
        with_event_server(engine, cfg, |addr| {
            thread::scope(|s| {
                s.spawn(move || {
                    let mut w = Client::connect(addr).expect("connect writer");
                    let mut last = 0;
                    for i in 0..150u32 {
                        let e = w
                            .insert(500 + (i % 10), &vec![3.0 + f64::from(i % 10); dims])
                            .expect("insert")
                            .expect("served");
                        assert!(e > last);
                        last = e;
                    }
                    w.quit().expect("quit writer");
                });
                for _ in 0..2 {
                    s.spawn(move || {
                        let mut r = Client::connect(addr).expect("connect reader");
                        let queries: Vec<BatchQuery> = (0..8)
                            .map(|i| BatchQuery::KnMatch {
                                query: vec![0.1 * f64::from(i); dims],
                                k: 3,
                                n: dims,
                            })
                            .collect();
                        for _ in 0..20 {
                            let answers = r.run_pipelined(&queries, 4).expect("pipelined");
                            for a in answers {
                                a.expect("served");
                            }
                        }
                        r.quit().expect("quit reader");
                    });
                }
            });

            // Maintenance jobs ride the executor queue; poll briefly for
            // the last one to land before asserting the bounds.
            let mut c = Client::connect(addr).expect("connect");
            let mut v = None;
            for _ in 0..100 {
                let got = c
                    .stats_report()
                    .expect("stats")
                    .version
                    .expect("version group");
                if got.merges >= 1 && got.runs <= 10 {
                    v = Some(got);
                    break;
                }
                thread::sleep(Duration::from_millis(20));
            }
            let v = v.expect("maintenance must compact the run list");
            assert_eq!(v.live, 110);
            c.quit().expect("quit");
        });
    }
}
