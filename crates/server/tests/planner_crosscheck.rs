//! Randomized cross-check of the pruning backends and the cost-based
//! planner against the sequential oracle.
//!
//! Every backend the planner can route to — VA-file, IGrid, kernel scan,
//! AD — and the planner itself under every mode must answer the exact
//! query kinds **bit-identically** to the naive sequential scan, across
//! dimensionalities, cardinalities, n-ranges, and worker counts. The
//! sweeps are seeded, so a failure reproduces deterministically.

use std::sync::Arc;

use knmatch_core::{
    BatchAnswer, BatchEngine, BatchOptions, BatchQuery, Dataset, PlannerMode, ScanEngine,
};
use knmatch_data::rng::Rng64;
use knmatch_igrid::IGridEngine;
use knmatch_server::PlannedEngine;
use knmatch_vafile::VaEngine;

fn random_dataset(rng: &mut Rng64, c: usize, d: usize) -> Dataset {
    let rows: Vec<Vec<f64>> = (0..c)
        .map(|_| (0..d).map(|_| rng.next_f64()).collect())
        .collect();
    Dataset::from_rows(&rows).unwrap()
}

/// Low-entropy values (a small grid) so differences collide constantly
/// and only the canonical `(diff, pid)` tie-break yields a unique answer.
fn quantised_dataset(rng: &mut Rng64, c: usize, d: usize) -> Dataset {
    let rows: Vec<Vec<f64>> = (0..c)
        .map(|_| {
            (0..d)
                .map(|_| rng.range_usize(0..5) as f64 * 0.25)
                .collect()
        })
        .collect();
    Dataset::from_rows(&rows).unwrap()
}

/// A random batch covering every query kind and a spread of n-ranges,
/// including the extremes n = 1 and n = d where the Figure 12 crossover
/// flips backends.
fn random_batch(rng: &mut Rng64, d: usize, queries: usize) -> Vec<BatchQuery> {
    (0..queries)
        .map(|i| {
            let query: Vec<f64> = (0..d).map(|_| rng.next_f64()).collect();
            let k = rng.range_usize(1..12);
            let n = match i % 4 {
                0 => 1,
                1 => d,
                _ => rng.range_usize(1..d + 1),
            };
            match i % 3 {
                0 => BatchQuery::KnMatch { query, k, n },
                1 => {
                    let n1 = rng.range_usize(n..d + 1);
                    BatchQuery::Frequent {
                        query,
                        k,
                        n0: n,
                        n1,
                    }
                }
                _ => BatchQuery::EpsMatch {
                    query,
                    eps: rng.range_f64(0.0, 0.3),
                    n,
                },
            }
        })
        .collect()
}

/// The oracle: the kernel scan with one worker, itself pinned bitwise to
/// the naive per-algorithm scans by the core test suite.
fn oracle(ds: &Dataset, batch: &[BatchQuery]) -> Vec<BatchAnswer> {
    ScanEngine::with_workers(Arc::new(ds.clone()), 1)
        .run(batch)
        .into_iter()
        .map(|r| r.unwrap().0)
        .collect()
}

#[test]
fn backends_match_oracle_across_the_grid() {
    let mut rng = Rng64::new(0x5eed_cafe);
    for &(c, d) in &[(300usize, 4usize), (300, 12), (2000, 4), (2000, 12)] {
        let ds = random_dataset(&mut rng, c, d);
        let batch = random_batch(&mut rng, d, 24);
        let want = oracle(&ds, &batch);
        let data = Arc::new(ds.clone());
        for workers in [1usize, 3] {
            let va = VaEngine::with_workers(Arc::clone(&data), workers);
            let ig = IGridEngine::new(Arc::clone(&data));
            let scan = ScanEngine::with_workers(Arc::clone(&data), workers);
            for (name, got) in [
                ("vafile", va.run(&batch)),
                ("igrid", ig.run(&batch)),
                ("scan", scan.run(&batch)),
            ] {
                for (i, (r, w)) in got.into_iter().zip(&want).enumerate() {
                    assert_eq!(
                        &r.unwrap().0,
                        w,
                        "{name} diverged: c={c} d={d} workers={workers} query #{i}"
                    );
                }
            }
        }
    }
}

#[test]
fn planner_matches_oracle_in_every_mode() {
    let mut rng = Rng64::new(0x91a2);
    for &(c, d) in &[(300usize, 4usize), (2000, 12)] {
        let ds = random_dataset(&mut rng, c, d);
        let batch = random_batch(&mut rng, d, 20);
        let want = oracle(&ds, &batch);
        for workers in [1usize, 3] {
            let engine = PlannedEngine::with_workers(&ds, workers, PlannerMode::Auto);
            for mode in [
                PlannerMode::Auto,
                PlannerMode::Ad,
                PlannerMode::VaFile,
                PlannerMode::Scan,
                PlannerMode::IGrid,
            ] {
                let opts = BatchOptions {
                    planner: Some(mode),
                    ..BatchOptions::default()
                };
                for (i, (r, w)) in engine
                    .run_with(&batch, &opts)
                    .into_iter()
                    .zip(&want)
                    .enumerate()
                {
                    assert_eq!(
                        &r.unwrap().0,
                        w,
                        "planner diverged: mode={mode} c={c} d={d} workers={workers} query #{i}"
                    );
                }
            }
        }
    }
}

#[test]
fn tie_heavy_data_resolves_canonically_everywhere() {
    let mut rng = Rng64::new(77);
    let ds = quantised_dataset(&mut rng, 500, 6);
    let batch = random_batch(&mut rng, 6, 18);
    let want = oracle(&ds, &batch);
    let data = Arc::new(ds.clone());
    let engines: Vec<(&str, Vec<_>)> = vec![
        (
            "vafile",
            VaEngine::with_workers(Arc::clone(&data), 2).run(&batch),
        ),
        ("igrid", IGridEngine::new(Arc::clone(&data)).run(&batch)),
        (
            "planner",
            PlannedEngine::with_workers(&ds, 2, PlannerMode::Auto).run(&batch),
        ),
    ];
    for (name, got) in engines {
        for (i, (r, w)) in got.into_iter().zip(&want).enumerate() {
            assert_eq!(&r.unwrap().0, w, "{name} diverged on ties at query #{i}");
        }
    }
}

#[test]
fn planner_tally_is_consistent_with_its_own_cost_model() {
    let mut rng = Rng64::new(0xabcd);
    let ds = random_dataset(&mut rng, 1500, 8);
    let batch = random_batch(&mut rng, 8, 30);
    let engine = PlannedEngine::with_workers(&ds, 2, PlannerMode::Auto);
    // Predict every route first: planning is a pure function of the data
    // and the query, so re-planning must reproduce the execution tally.
    let mut want = knmatch_core::PlanTally::default();
    for q in &batch {
        match engine.plan_for(q).unwrap().backend {
            knmatch_storage::BackendChoice::Ad => want.ad += 1,
            knmatch_storage::BackendChoice::VaFile => want.vafile += 1,
            knmatch_storage::BackendChoice::Scan => want.scan += 1,
        }
    }
    for r in engine.run(&batch) {
        r.unwrap();
    }
    assert_eq!(engine.plan_counts(), Some(want));
    assert_eq!(want.total(), batch.len() as u64);
}
