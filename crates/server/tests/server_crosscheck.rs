//! Served answers are bit-identical to direct engine calls, for every
//! backend, at every worker count, under concurrent clients.
//!
//! The text protocol renders floats with Rust's shortest round-trip
//! `Display`, so equality here is exact `BatchAnswer == BatchAnswer` —
//! no tolerance.

use std::net::SocketAddr;
use std::thread;

use knmatch_core::{BatchEngine, BatchOutcome, BatchQuery, KnMatchError};
use knmatch_data::uniform;
use knmatch_server::{
    Backend, Client, EngineConfig, ErrorKind, Server, ServerConfig, StatsSnapshot,
};
use knmatch_storage::DiskDatabase;

/// Fires shutdown when dropped, so an assertion failure inside a test
/// closure unblocks the scoped server thread instead of deadlocking the
/// `thread::scope` join.
struct ShutdownGuard(knmatch_server::ShutdownHandle);

impl Drop for ShutdownGuard {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Binds an ephemeral-port server over `engine`, runs `f` against it,
/// shuts down, and returns the server's final counters.
fn with_server<E, F>(engine: E, f: F) -> StatsSnapshot
where
    E: BatchEngine + Sync,
    F: FnOnce(SocketAddr),
{
    let server = Server::bind(engine, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    thread::scope(|s| {
        let serving = s.spawn(|| server.serve().expect("serve"));
        {
            let _guard = ShutdownGuard(handle);
            f(addr);
        }
        serving.join().expect("server thread");
    });
    server.stats()
}

/// A mixed workload: all three query kinds plus two invalid slots (a
/// dimension mismatch and a negative epsilon).
fn workload(dims: usize) -> Vec<BatchQuery> {
    let mut queries = Vec::new();
    for i in 0..4 {
        let v = 0.15 + 0.2 * i as f64;
        queries.push(BatchQuery::KnMatch {
            query: vec![v; dims],
            k: 3,
            n: 2,
        });
        queries.push(BatchQuery::Frequent {
            query: vec![1.0 - v; dims],
            k: 2,
            n0: 1,
            n1: dims,
        });
        queries.push(BatchQuery::EpsMatch {
            query: vec![v; dims],
            eps: 0.05,
            n: 2,
        });
    }
    queries.push(BatchQuery::KnMatch {
        query: vec![0.5; dims + 1],
        k: 1,
        n: 1,
    });
    queries.push(BatchQuery::EpsMatch {
        query: vec![0.5; dims],
        eps: -1.0,
        n: 1,
    });
    queries
}

/// What the wire must carry for each direct-run slot.
fn expected_wire<O: BatchOutcome>(
    direct: Vec<Result<O, KnMatchError>>,
) -> Vec<Result<knmatch_core::BatchAnswer, (ErrorKind, String)>> {
    direct
        .into_iter()
        .map(|r| match r {
            Ok(o) => Ok(o.into_answer()),
            Err(e) => Err((ErrorKind::of_error(&e), e.to_string())),
        })
        .collect()
}

fn check_backend(backend: Backend, path: &str) {
    let queries = workload(4);
    for workers in [1, 2, 4] {
        let cfg = EngineConfig {
            workers,
            backend,
            planner: None,
            ..EngineConfig::default()
        };
        let engine = cfg.open(path).expect("open engine");
        let expected = expected_wire(engine.run(&queries));

        let stats = with_server(engine, |addr| {
            // Three concurrent clients, each submitting the whole batch
            // twice; all must see the direct-run answers bit-for-bit.
            thread::scope(|s| {
                for _ in 0..3 {
                    let queries = &queries;
                    let expected = &expected;
                    s.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        client.ping().expect("ping");
                        for _ in 0..2 {
                            let reply = client.run_batch(queries).expect("batch");
                            assert_eq!(reply.answers.len(), expected.len());
                            assert_eq!(reply.ok, 12, "backend {backend:?} x{workers}");
                            assert_eq!(reply.failed, 2);
                            for (got, want) in reply.answers.iter().zip(expected) {
                                match (got, want) {
                                    (Ok(a), Ok(b)) => assert_eq!(a, b, "answer diverged"),
                                    (Err(e), Err((kind, msg))) => {
                                        assert_eq!(e.kind, *kind);
                                        assert_eq!(&e.message, msg);
                                    }
                                    other => panic!("slot shape diverged: {other:?}"),
                                }
                            }
                        }
                        client.quit().expect("quit");
                    });
                }
            });
        });
        assert_eq!(stats.connections, 3);
        assert_eq!(stats.queries, 3 * 2 * queries.len() as u64);
        assert_eq!(stats.errors, 3 * 2 * 2, "two invalid slots per batch");
    }
}

#[test]
fn memory_backend_bit_identical_over_the_wire() {
    let (_dir, csv, _db) = temp_files("mem");
    check_backend(Backend::Memory, &csv);
}

#[test]
fn sharded_backend_bit_identical_over_the_wire() {
    let (_dir, csv, _db) = temp_files("shard");
    check_backend(Backend::Sharded(3), &csv);
}

#[test]
fn planned_backend_bit_identical_over_the_wire() {
    let (_dir, csv, _db) = temp_files("plan");
    let queries = workload(4);
    for workers in [1, 2] {
        let cfg = EngineConfig {
            workers,
            backend: Backend::Memory,
            planner: Some(knmatch_core::PlannerMode::Auto),
            ..EngineConfig::default()
        };
        let engine = cfg.open(&csv).expect("open engine");
        let expected = expected_wire(engine.run(&queries));
        with_server(engine, |addr| {
            let mut client = Client::connect(addr).expect("connect");
            for mode in [
                knmatch_core::PlannerMode::Auto,
                knmatch_core::PlannerMode::Ad,
                knmatch_core::PlannerMode::VaFile,
                knmatch_core::PlannerMode::Scan,
                knmatch_core::PlannerMode::IGrid,
            ] {
                client.set_planner(mode).expect("set planner");
                let reply = client.run_batch(&queries).expect("batch");
                for (got, want) in reply.answers.iter().zip(&expected) {
                    match (got, want) {
                        (Ok(a), Ok(b)) => assert_eq!(a, b, "mode {mode} diverged"),
                        (Err(e), Err((kind, _))) => assert_eq!(e.kind, *kind),
                        other => panic!("slot shape diverged: {other:?}"),
                    }
                }
            }
            // The tally travelled back through STATS: the direct baseline
            // run plus five served modes, 12 valid queries each (invalid
            // slots never reach a backend).
            let (_, _, plans) = client.stats_with_plans().expect("stats");
            let plans = plans.expect("planned engine reports plans");
            assert_eq!(plans.total(), 6 * 12, "workers={workers}");
            assert!(plans.scan >= 12, "forced scan pass must be tallied");
            assert!(plans.igrid >= 12, "forced igrid pass must be tallied");
            client.quit().expect("quit");
        });
    }
}

#[test]
fn planless_engines_report_no_plans_over_the_wire() {
    let (_dir, csv, _db) = temp_files("noplan");
    let engine = EngineConfig {
        workers: 1,
        backend: Backend::Memory,
        planner: None,
        ..EngineConfig::default()
    }
    .open(&csv)
    .expect("open engine");
    with_server(engine, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        // The verb is accepted (connection-scoped option) even though the
        // engine ignores it, and STATS carries no plan counters.
        client
            .set_planner(knmatch_core::PlannerMode::Scan)
            .expect("set planner");
        let (_, _, plans) = client.stats_with_plans().expect("stats");
        assert_eq!(plans, None);
        client.quit().expect("quit");
    });
}

#[test]
fn disk_backend_bit_identical_over_the_wire() {
    let (_dir, _csv, db) = temp_files("disk");
    check_backend(
        Backend::Disk {
            pool_pages: 64,
            verify: knmatch_storage::VerifyMode::FirstRead,
        },
        &db,
    );
}

/// Writes the shared 200 x 4 uniform dataset as both a CSV and a `.knm`
/// database under a per-test temp dir; the guard removes it on drop.
fn temp_files(tag: &str) -> (TempDir, String, String) {
    let dir = std::env::temp_dir().join(format!(
        "knmatch-server-xcheck-{tag}-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ds = uniform(200, 4, 0x5EED);
    let csv = dir.join("data.csv");
    knmatch_data::save_dataset(&csv, &ds).expect("write csv");
    let db = dir.join("data.knm");
    DiskDatabase::create_file(&db, &ds, 64).expect("write db");
    (
        TempDir(dir.clone()),
        csv.to_string_lossy().into_owned(),
        db.to_string_lossy().into_owned(),
    )
}

struct TempDir(std::path::PathBuf);

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn deadline_and_fail_fast_travel_the_wire() {
    let (_dir, csv, _db) = temp_files("opts");
    let cfg = EngineConfig {
        workers: 2,
        backend: Backend::Memory,
        planner: None,
        ..EngineConfig::default()
    };
    let engine = cfg.open(&csv).expect("open engine");
    let queries = workload(4);
    let healthy = expected_wire(engine.run(&queries));

    with_server(engine, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        // A generous deadline changes nothing: bit-identical answers.
        client.set_deadline_ms(60_000).expect("deadline");
        let reply = client.run_batch(&queries).expect("batch");
        for (got, want) in reply.answers.iter().zip(&healthy) {
            match (got, want) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(e), Err((kind, _))) => assert_eq!(e.kind, *kind),
                other => panic!("slot shape diverged: {other:?}"),
            }
        }
        // Clearing it (DEADLINE 0) keeps working.
        client.set_deadline_ms(0).expect("clear deadline");
        // Fail-fast toggles per connection; with every query valid the
        // flag is invisible (bit-identical again).
        client.set_fail_fast(true).expect("fail fast");
        let valid: Vec<_> = queries[..6].to_vec();
        let want = expected_wire(
            EngineConfig {
                workers: 2,
                backend: Backend::Memory,
                planner: None,
                ..EngineConfig::default()
            }
            .open(&csv)
            .expect("open")
            .run(&valid),
        );
        let reply = client.run_batch(&valid).expect("batch");
        assert_eq!(reply.failed, 0);
        for (got, want) in reply.answers.iter().zip(&want) {
            match (got, want) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                other => panic!("slot shape diverged: {other:?}"),
            }
        }
        client.quit().expect("quit");
    });
}

#[test]
fn stats_verb_reports_both_scopes() {
    let (_dir, csv, _db) = temp_files("stats");
    let engine = EngineConfig {
        workers: 1,
        backend: Backend::Memory,
        planner: None,
        ..EngineConfig::default()
    }
    .open(&csv)
    .expect("open engine");

    with_server(engine, |addr| {
        let mut a = Client::connect(addr).expect("connect a");
        let mut b = Client::connect(addr).expect("connect b");
        let q = BatchQuery::KnMatch {
            query: vec![0.5; 4],
            k: 2,
            n: 2,
        };
        a.query(&q).expect("query").expect("answer");
        b.query(&q).expect("query").expect("answer");
        b.query(&q).expect("query").expect("answer");
        let (conn, server) = b.stats().expect("stats");
        assert_eq!(conn.queries, 2);
        assert_eq!(conn.connections, 1);
        assert_eq!(server.queries, 3);
        assert_eq!(server.connections, 2);
        assert!(server.bytes_in > 0 && server.bytes_out > 0);
        a.quit().expect("quit");
        b.quit().expect("quit");
    });
}

#[test]
fn connection_limit_rejects_with_busy() {
    let (_dir, csv, _db) = temp_files("busy");
    let engine = EngineConfig {
        workers: 1,
        backend: Backend::Memory,
        planner: None,
        ..EngineConfig::default()
    }
    .open(&csv)
    .expect("open engine");
    let server = Server::bind(
        engine,
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    thread::scope(|s| {
        let serving = s.spawn(|| server.serve().expect("serve"));
        let _guard = ShutdownGuard(handle);
        let mut first = Client::connect(addr).expect("connect");
        first.ping().expect("ping");
        // The second connection is over the limit: it gets ERR busy and
        // an immediate close.
        let mut second = Client::connect(addr).expect("connect");
        match second.recv_response().expect("busy line") {
            knmatch_server::Response::Error { kind, .. } => {
                assert_eq!(kind, ErrorKind::Busy)
            }
            other => panic!("expected ERR busy, got {other:?}"),
        }
        drop(second);
        // The first connection is unaffected.
        first.ping().expect("ping after reject");
        first.quit().expect("quit");
        drop(_guard);
        serving.join().expect("server thread");
    });
}
