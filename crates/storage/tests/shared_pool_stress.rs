//! Concurrency stress test for [`SharedBufferPool`]: many threads hammer
//! one pool over a real [`FileStore`] with a capacity far below the
//! working set, so every shard churns through evictions while other
//! threads read. Each page carries a recognisable pattern derived from
//! its page number; any torn read, wrong-frame copy, or eviction race
//! surfaces as a byte mismatch.
//!
//! Run in CI as a dedicated `--release` step: the tighter timing of
//! optimised builds widens the interleaving space the test explores.

use std::sync::atomic::{AtomicU64, Ordering};

use knmatch_storage::{FileStore, PageStore, ReadSession, SharedBufferPool, PAGE_SIZE};

const PAGES: usize = 97;
const THREADS: usize = 8;
const READS_PER_THREAD: usize = 4000;
/// Far below `PAGES`, so the pool constantly evicts.
const CAPACITY: usize = 8;

/// Deterministic recognisable content for page `no`.
fn fill_page(no: usize, buf: &mut [u8; PAGE_SIZE]) {
    let tag = (no as u64).wrapping_mul(0x9E3779B97F4A7C15);
    for (i, b) in buf.iter_mut().enumerate() {
        *b = (tag.rotate_left((i % 64) as u32) as u8).wrapping_add(i as u8);
    }
}

fn check_page(no: usize, buf: &[u8; PAGE_SIZE]) {
    let mut want = [0u8; PAGE_SIZE];
    fill_page(no, &mut want);
    assert!(
        buf == &want,
        "page {no}: bytes do not match the written pattern"
    );
}

/// A tiny per-thread xorshift so every thread walks its own page sequence.
fn next(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn concurrent_readers_always_see_correct_bytes() {
    let dir = std::env::temp_dir().join(format!("knmatch-pool-stress-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pages.bin");

    let mut store = FileStore::create(&path).unwrap();
    let mut buf = [0u8; PAGE_SIZE];
    for no in 0..PAGES {
        fill_page(no, &mut buf);
        store.append_page(&buf);
    }

    let pool = SharedBufferPool::new(store, CAPACITY);
    let hits = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let pool = &pool;
            let hits = &hits;
            scope.spawn(move || {
                let mut state = 0x1234_5678_9ABC_DEF0u64 ^ (t as u64) << 32 | 1;
                let mut session = ReadSession::new(CAPACITY);
                let mut page = [0u8; PAGE_SIZE];
                let mut local_hits = 0u64;
                for i in 0..READS_PER_THREAD {
                    // Mix of access shapes: short sequential runs (streams),
                    // point lookups, and revisits of a small hot set.
                    let no = match i % 4 {
                        0 | 1 => (next(&mut state) % PAGES as u64) as usize,
                        2 => (next(&mut state) % 8) as usize, // hot set
                        _ => (i / 4) % PAGES,                 // slow scan
                    };
                    let group = (no % 5) as u32;
                    if pool.read_in(no, group, &mut session, &mut page).unwrap() {
                        local_hits += 1;
                    }
                    check_page(no, &page);
                }
                hits.fetch_add(local_hits, Ordering::Relaxed);
            });
        }
    });

    // Coherence of the shard counters: every read was either a hit or a
    // classified miss, and the pool never exceeds its frame budget.
    let stats = pool.stats();
    let total = (THREADS * READS_PER_THREAD) as u64;
    assert_eq!(stats.hits + stats.page_accesses(), total);
    assert!(stats.hits > 0, "a {CAPACITY}-frame pool must score hits");
    assert!(
        stats.page_accesses() > 0,
        "a {CAPACITY}-frame pool over {PAGES} pages must miss"
    );
    assert!(pool.cached_pages() <= CAPACITY);
    // True hit count (from return values) matches the shard counters.
    assert_eq!(stats.hits, hits.load(Ordering::Relaxed));

    drop(pool);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn single_frame_shards_under_contention() {
    // capacity == shard count lower bound: with one frame per shard the
    // pool still serves correct bytes while threads fight over frames.
    let dir = std::env::temp_dir().join(format!("knmatch-pool-stress1-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pages.bin");

    let mut store = FileStore::create(&path).unwrap();
    let mut buf = [0u8; PAGE_SIZE];
    for no in 0..16 {
        fill_page(no, &mut buf);
        store.append_page(&buf);
    }
    let pool = SharedBufferPool::with_shards(store, 2, 2);

    std::thread::scope(|scope| {
        for t in 0..4 {
            let pool = &pool;
            scope.spawn(move || {
                let mut state = (t as u64 + 1) * 0x9E37;
                let mut page = [0u8; PAGE_SIZE];
                for _ in 0..2000 {
                    let no = (next(&mut state) % 16) as usize;
                    pool.read(no, &mut page).unwrap();
                    check_page(no, &page);
                }
            });
        }
    });
    assert!(pool.cached_pages() <= 2);

    drop(pool);
    std::fs::remove_dir_all(&dir).unwrap();
}
