//! Fault-injection matrix for the disk batch engine (DESIGN.md §10).
//!
//! Three invariants are asserted here, end to end through the real stack
//! (`FaultStore` → `SharedBufferPool` retries → `SharedDiskColumns` →
//! `DiskQueryEngine` panic isolation):
//!
//! 1. **Recovered faults are invisible.** At every (worker count, pool
//!    capacity, transient rate) combination, a mixed batch of all three
//!    query kinds returns answers, `AdStats`, and modelled `IoStats`
//!    bit-identical to the fault-free run — injected faults heal on retry
//!    and the retry budget absorbs them.
//! 2. **Unrecoverable faults are isolated.** A page that fails every read
//!    exhausts the retry budget and fails exactly the queries that touch
//!    it; every other slot of the batch completes normally.
//! 3. **Panics are isolated and the pool survives.** A query that panics
//!    mid-read fails only its own slot (poisoning and recovering its
//!    shard lock along the way); the same engine then serves the next
//!    batch correctly.

use std::collections::HashSet;

use knmatch_core::{BatchEngine, BatchQuery, Dataset, KnMatchError};
use knmatch_storage::{
    DiskDatabase, DiskLayout, DiskQueryEngine, FaultConfig, FaultStore, MemStore,
};

/// A deterministic 3-dim dataset big enough that its column pages exceed
/// the small pool capacities below, forcing evictions and store reads.
fn dataset() -> Dataset {
    let rows: Vec<[f64; 3]> = (0..1000)
        .map(|i| {
            let x = i as f64;
            [x, (x * 7.0 + 13.0) % 1000.0, (x * 31.0 + 5.0) % 1000.0]
        })
        .collect();
    Dataset::from_rows(&rows).unwrap()
}

/// A mixed batch exercising all three query kinds at several positions.
fn mixed_batch() -> Vec<BatchQuery> {
    let mut batch = Vec::new();
    for v in [3.0, 250.0, 499.0, 750.0, 997.0] {
        batch.push(BatchQuery::KnMatch {
            query: vec![v, v, v],
            k: 5,
            n: 2,
        });
        batch.push(BatchQuery::Frequent {
            query: vec![v, v, v],
            k: 3,
            n0: 1,
            n1: 3,
        });
        batch.push(BatchQuery::EpsMatch {
            query: vec![v, v, v],
            eps: 4.0,
            n: 2,
        });
    }
    batch
}

fn engine_with_faults(
    ds: &Dataset,
    config: FaultConfig,
    pool_pages: usize,
    workers: usize,
) -> DiskQueryEngine<FaultStore<MemStore>> {
    let mut store = MemStore::new();
    let DiskLayout { columns, .. } = DiskDatabase::<MemStore>::build(ds, &mut store);
    DiskQueryEngine::with_workers(FaultStore::new(store, config), columns, pool_pages, workers)
        .unwrap()
}

#[test]
fn transient_fault_matrix_is_bit_identical_to_fault_free() {
    let ds = dataset();
    let batch = mixed_batch();
    for pool_pages in [4usize, 16] {
        // The reference outcome: no faults, one worker.
        let baseline = engine_with_faults(&ds, FaultConfig::default(), pool_pages, 1).run(&batch);
        assert!(baseline.iter().all(Result::is_ok));
        for workers in [1usize, 2, 4] {
            for rate in [0.0f64, 0.01, 0.05] {
                let engine =
                    engine_with_faults(&ds, FaultConfig::transient(42, rate), pool_pages, workers);
                let got = engine.run(&batch);
                assert_eq!(
                    got, baseline,
                    "workers={workers} pool_pages={pool_pages} rate={rate}"
                );
            }
        }
    }
}

#[test]
fn certain_faults_on_every_read_are_fully_absorbed_by_retries() {
    // transient_rate = 1.0: every fresh read faults once and heals, so the
    // retry budget (3 attempts) recovers every single store read. Answers
    // must still be bit-identical, and the retry counters must show the
    // recovery actually happened.
    let ds = dataset();
    let batch = mixed_batch();
    let baseline = engine_with_faults(&ds, FaultConfig::default(), 8, 1).run(&batch);
    for workers in [1usize, 4] {
        let engine = engine_with_faults(&ds, FaultConfig::transient(7, 1.0), 8, workers);
        let got = engine.run(&batch);
        assert_eq!(got, baseline, "workers={workers}");
        let (store, _) = engine.into_parts();
        assert!(store.injected() > 0, "rate 1.0 must inject");
    }
    let engine = engine_with_faults(&ds, FaultConfig::transient(7, 1.0), 8, 1);
    let _ = engine.run(&batch);
    let retries = engine.pool().stats().retries;
    assert!(retries > 0, "every store read needs one retry, got 0");
}

/// A 1000-point single-dimension dataset: its sorted column spans three
/// pages (341 entries each), so a query at value `v` touches only the
/// page holding `v`'s neighbourhood — which makes per-slot failure
/// placement fully predictable.
fn line_dataset() -> Dataset {
    let rows: Vec<[f64; 1]> = (0..1000).map(|i| [i as f64]).collect();
    Dataset::from_rows(&rows).unwrap()
}

fn line_query(v: f64) -> BatchQuery {
    BatchQuery::KnMatch {
        query: vec![v],
        k: 3,
        n: 1,
    }
}

#[test]
fn always_failing_page_fails_only_the_queries_that_touch_it() {
    let ds = line_dataset();
    let mut store = MemStore::new();
    let DiskLayout { columns, .. } = DiskDatabase::<MemStore>::build(&ds, &mut store);
    // Poison the third (last) column page: values ≈ 682..999 live there.
    let bad_page = columns.base_page() + 2;
    let config = FaultConfig {
        fail_pages: [bad_page].into_iter().collect::<HashSet<_>>(),
        ..FaultConfig::default()
    };
    let batch = vec![
        line_query(5.0),   // first column page only
        line_query(900.0), // the poisoned page
        line_query(120.0), // first column page only
        line_query(990.0), // the poisoned page
    ];
    for workers in [1usize, 2] {
        let engine = DiskQueryEngine::with_workers(
            FaultStore::new(MemStore::clone(&store), config.clone()),
            columns.clone(),
            4,
            workers,
        )
        .unwrap();
        let results = engine.run(&batch);
        assert!(results[0].is_ok(), "workers={workers}");
        assert!(results[2].is_ok(), "workers={workers}");
        for slot in [1usize, 3] {
            match &results[slot] {
                Err(KnMatchError::Storage { message }) => {
                    assert!(
                        message.contains("after 3 attempts"),
                        "retry budget should be spent first: {message}"
                    );
                }
                other => panic!("slot {slot} should fail with Storage, got {other:?}"),
            }
        }
        // The retry loop burned attempts on the poisoned page.
        assert!(engine.pool().stats().retries > 0);
        // The healthy slots match a fault-free run.
        let clean = DiskQueryEngine::with_workers(MemStore::clone(&store), columns.clone(), 4, 1)
            .unwrap()
            .run(&batch);
        assert_eq!(results[0], clean[0]);
        assert_eq!(results[2], clean[2]);
    }
}

#[test]
fn panicking_query_fails_its_slot_and_the_pool_survives() {
    let ds = line_dataset();
    let mut store = MemStore::new();
    let DiskLayout { columns, .. } = DiskDatabase::<MemStore>::build(&ds, &mut store);
    let bad_page = columns.base_page() + 2;
    let config = FaultConfig {
        panic_on_page: Some(bad_page),
        ..FaultConfig::default()
    };
    let engine = DiskQueryEngine::with_workers(
        FaultStore::new(MemStore::clone(&store), config),
        columns.clone(),
        4,
        1,
    )
    .unwrap();
    let batch = vec![line_query(5.0), line_query(900.0), line_query(120.0)];
    let results = engine.run(&batch);
    assert!(results[0].is_ok());
    assert!(results[2].is_ok(), "slots after the panic must complete");
    match &results[1] {
        Err(KnMatchError::Panicked { message }) => {
            assert!(message.contains("injected fault: panic"), "{message}");
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    // The panic unwound through a held shard lock; the pool must have
    // recovered it. The one-shot panic is spent, so the same engine now
    // answers the full batch, matching a fault-free engine.
    let again = engine.run(&batch);
    let clean = DiskQueryEngine::with_workers(MemStore::clone(&store), columns, 4, 1)
        .unwrap()
        .run(&batch);
    assert_eq!(again, clean);
}
