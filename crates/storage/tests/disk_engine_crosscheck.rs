//! Randomized cross-check of the parallel [`DiskQueryEngine`] against the
//! sequential [`DiskDatabase`] path.
//!
//! The engine's contract is bit-identical results at any worker count:
//! answers, `AdStats`, and the *modelled* per-query `IoStats` must all
//! equal what the sequential path produces on a cold pool of the same
//! capacity (`invalidate_all` before each query, which also makes the
//! sequential run order-independent). Capacities sweep down to a single
//! frame, where the modelled LRU churns on every access — the harshest
//! test of the session's pool simulation.

use knmatch_core::{AdStats, BatchAnswer, BatchEngine, BatchQuery};
use knmatch_storage::{DiskDatabase, IoStats, MemStore};

/// Mixed workload over `ds`: every query type, parameters varied by a
/// seeded xoshiro stream.
fn mixed_batch(ds: &knmatch_core::Dataset, count: usize, seed: u64) -> Vec<BatchQuery> {
    let mut rng = knmatch_data::rng::seeded(seed);
    let d = ds.dims();
    (0..count)
        .map(|i| {
            let pid = (rng.next_u64() % ds.len() as u64) as u32;
            let mut query = ds.point(pid).to_vec();
            // Perturb so queries are near but not on data points.
            for v in &mut query {
                *v += rng.next_f64() * 0.02 - 0.01;
            }
            let k = 1 + (rng.next_u64() % 8) as usize;
            let n = 1 + (rng.next_u64() % d as u64) as usize;
            match i % 3 {
                0 => BatchQuery::KnMatch { query, k, n },
                1 => {
                    let n1 = n.max(2);
                    let n0 = 1 + (rng.next_u64() % n1 as u64) as usize;
                    BatchQuery::Frequent { query, k, n0, n1 }
                }
                _ => BatchQuery::EpsMatch {
                    query,
                    eps: rng.next_f64() * 0.05,
                    n,
                },
            }
        })
        .collect()
}

/// Runs `q` through the sequential path on a cold pool and returns the
/// (answer, ad, io) triple in the engine's shape.
fn sequential_oracle(
    db: &mut DiskDatabase<MemStore>,
    q: &BatchQuery,
) -> (BatchAnswer, AdStats, IoStats) {
    db.pool_mut().invalidate_all();
    match q {
        BatchQuery::KnMatch { query, k, n } => {
            let out = db.k_n_match(query, *k, *n).unwrap();
            (BatchAnswer::KnMatch(out.result), out.ad, out.io)
        }
        BatchQuery::Frequent { query, k, n0, n1 } => {
            let out = db.frequent_k_n_match(query, *k, *n0, *n1).unwrap();
            (BatchAnswer::Frequent(out.result), out.ad, out.io)
        }
        BatchQuery::EpsMatch { query, eps, n } => {
            let out = db.eps_n_match(query, *eps, *n).unwrap();
            (BatchAnswer::EpsMatch(out.result), out.ad, out.io)
        }
    }
}

fn crosscheck(cardinality: usize, dims: usize, pool_pages: usize, seed: u64) {
    let ds = knmatch_data::uniform(cardinality, dims, seed);
    let batch = mixed_batch(&ds, 24, seed ^ 0x9E3779B97F4A7C15);

    // Sequential oracle: one query at a time, cold pool per query.
    let mut db = DiskDatabase::build_in_memory(&ds, pool_pages);
    let oracle: Vec<_> = batch
        .iter()
        .map(|q| sequential_oracle(&mut db, q))
        .collect();

    for workers in [1usize, 2, 4, 8] {
        let engine = DiskDatabase::build_in_memory(&ds, pool_pages).into_engine(workers);
        let results = engine.run(&batch);
        let mut total_accesses = 0u64;
        for (i, (res, (answer, ad, io))) in results.iter().zip(&oracle).enumerate() {
            let got = res.as_ref().unwrap_or_else(|e| panic!("query {i}: {e}"));
            assert_eq!(
                &got.answer, answer,
                "answer diverged: query {i}, workers {workers}, pool {pool_pages}"
            );
            assert_eq!(
                &got.ad, ad,
                "AdStats diverged: query {i}, workers {workers}, pool {pool_pages}"
            );
            assert_eq!(
                &got.io, io,
                "IoStats diverged: query {i}, workers {workers}, pool {pool_pages}"
            );
            total_accesses += got.io.page_accesses();
        }
        let want_total: u64 = oracle.iter().map(|(_, _, io)| io.page_accesses()).sum();
        assert_eq!(total_accesses, want_total, "workers {workers}");
    }
}

#[test]
fn crosscheck_roomy_pool() {
    crosscheck(1200, 5, 64, 42);
}

#[test]
fn crosscheck_tight_pool() {
    // Smaller than one query's working set: constant modelled eviction.
    crosscheck(1200, 5, 4, 7);
}

#[test]
fn crosscheck_single_frame_pool() {
    // The minimum legal pool: every modelled access past the first of a
    // page is a fresh miss unless immediately repeated.
    crosscheck(600, 3, 1, 1234);
}

#[test]
fn crosscheck_high_dims() {
    crosscheck(500, 12, 32, 99);
}
