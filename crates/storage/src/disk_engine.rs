//! Parallel batch execution of matching queries over a disk-resident
//! database.
//!
//! The in-memory `QueryEngine` (PR 1) parallelises trivially because
//! `SortedColumns` is immutable. The disk path could not: [`crate::BufferPool`]
//! takes `&mut self`, so the paper's headline I/O workloads (Section 4.1)
//! ran one query at a time. [`DiskQueryEngine`] removes that wall: `W`
//! workers claim queries from the shared claim-chunk executor
//! ([`knmatch_core::run_batch`]) and every worker drives the generic AD
//! engine over its own [`SharedDiskColumns`] view — a private
//! [`crate::ReadSession`] plus per-dimension copy-out slots — into one
//! [`SharedBufferPool`], so hot fence and column pages are fetched once
//! for the whole batch instead of once per worker.
//!
//! **Determinism contract.** Answers and `AdStats` come out of the exact
//! same `execute_batch_query` loop as every other entry point, and the
//! per-query [`IoStats`] are *modelled* against a private cold pool of the
//! configured capacity (see [`crate::ReadSession`]) — so all three are
//! bit-identical to the sequential [`DiskDatabase`] path (with
//! `invalidate_all` + `reset_stats` between queries) at any worker count
//! and any scheduling. The shared pool's *actual* I/O (what the batch
//! really cost, with cross-query sharing) is reported separately via
//! [`DiskQueryEngine::pool_stats`].

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};

use knmatch_core::{
    execute_batch_query, note_outcome, panic_message, run_batch, AdStats, BatchAnswer, BatchEngine,
    BatchOptions, BatchOutcome, BatchQuery, KnMatchError, Result, Scratch,
};

use crate::buffer::IoStats;
use crate::column_file::{SharedDiskColumns, SortedColumnFile};
use crate::error::StorageError;
use crate::shared_pool::SharedBufferPool;
use crate::store::SharedPageStore;

/// Converts a panic caught at the disk-query boundary into a
/// [`KnMatchError`]. A [`StorageError`] smuggled across the infallible
/// `SortedAccessSource` trait via `panic_any` (see
/// [`SharedDiskColumns`]'s page reads) becomes
/// [`KnMatchError::Storage`]; any other payload is a genuine panic and
/// becomes [`KnMatchError::Panicked`].
fn unwind_to_error(payload: Box<dyn std::any::Any + Send>) -> KnMatchError {
    match payload.downcast::<StorageError>() {
        Ok(e) => KnMatchError::Storage {
            message: e.to_string(),
        },
        Err(payload) => KnMatchError::Panicked {
            message: panic_message(payload.as_ref()),
        },
    }
}

/// Outcome of one query of a disk batch: the answer plus both cost views.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskBatchOutcome {
    /// The query answer, mirroring the [`BatchQuery`] variant.
    pub answer: BatchAnswer,
    /// Attribute-level AD counters.
    pub ad: AdStats,
    /// Modelled per-query page I/O: what this query alone would cost on a
    /// cold private pool of the engine's capacity. Deterministic at any
    /// worker count.
    pub io: IoStats,
}

impl BatchOutcome for DiskBatchOutcome {
    fn answer(&self) -> &BatchAnswer {
        &self.answer
    }

    fn ad_stats(&self) -> AdStats {
        self.ad
    }

    fn into_answer(self) -> BatchAnswer {
        self.answer
    }
}

/// Executes batches of matching queries in parallel against a
/// disk-resident sorted-column file behind one [`SharedBufferPool`].
///
/// # Examples
///
/// ```
/// use knmatch_core::{BatchEngine, BatchQuery};
/// use knmatch_storage::{DiskDatabase, MemStore};
///
/// let ds = knmatch_core::paper::fig3_dataset();
/// let engine = DiskDatabase::build_in_memory(&ds, 16).into_engine(4);
/// let batch = vec![BatchQuery::KnMatch { query: vec![3.0, 7.0, 4.0], k: 2, n: 2 }];
/// let out = engine.run(&batch).pop().unwrap().unwrap();
/// let knmatch_core::BatchAnswer::KnMatch(res) = out.answer else { unreachable!() };
/// assert_eq!(res.ids(), vec![2, 1]);
/// assert!(out.io.page_accesses() > 0);
/// ```
#[derive(Debug)]
pub struct DiskQueryEngine<S> {
    pool: SharedBufferPool<S>,
    columns: SortedColumnFile,
    pool_pages: usize,
    workers: usize,
}

impl<S: SharedPageStore> DiskQueryEngine<S> {
    /// An engine over the column file laid out in `store`, with a shared
    /// cache of `pool_pages` frames (also the modelled per-query pool
    /// capacity) and one worker per available CPU.
    ///
    /// # Errors
    ///
    /// Rejects `pool_pages == 0` as `InvalidInput`.
    pub fn new(store: S, columns: SortedColumnFile, pool_pages: usize) -> io::Result<Self> {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::with_workers(store, columns, pool_pages, workers)
    }

    /// An engine with an explicit worker count (clamped to ≥ 1).
    ///
    /// # Errors
    ///
    /// Rejects `pool_pages == 0` as `InvalidInput`.
    pub fn with_workers(
        store: S,
        columns: SortedColumnFile,
        pool_pages: usize,
        workers: usize,
    ) -> io::Result<Self> {
        if pool_pages == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "buffer pool needs at least one frame (pool_pages == 0)",
            ));
        }
        Ok(DiskQueryEngine {
            pool: SharedBufferPool::new(store, pool_pages),
            columns,
            pool_pages,
            workers: workers.max(1),
        })
    }

    /// Reconfigures the worker count (clamped to ≥ 1), keeping the warm
    /// cache — useful for worker-sweep benchmarks.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// The sorted-column file handle.
    pub fn columns(&self) -> &SortedColumnFile {
        &self.columns
    }

    /// The shared buffer pool (e.g. to invalidate after store mutation).
    pub fn pool(&self) -> &SharedBufferPool<S> {
        &self.pool
    }

    /// Actual shared-cache traffic accumulated so far (merged per-shard
    /// counters): the real I/O the batch cost, with cross-query sharing.
    pub fn pool_stats(&self) -> IoStats {
        self.pool.stats()
    }

    /// Modelled per-query pool capacity.
    pub fn pool_pages(&self) -> usize {
        self.pool_pages
    }

    /// Executes one query on the calling thread against caller-provided
    /// state. [`run`](Self::run) is a parallel loop over exactly this, so
    /// cross-checking the two paths needs no test-only hooks.
    ///
    /// The query body runs under `catch_unwind`: a storage failure that
    /// exhausted its retries (surfacing as a [`StorageError`] panic from
    /// the page reader) becomes [`KnMatchError::Storage`], any other
    /// panic becomes [`KnMatchError::Panicked`] — in both cases only this
    /// query's result slot fails and `src`/`scratch` remain usable (their
    /// per-query state is reset by the next `begin_query`/reseed).
    ///
    /// # Errors
    ///
    /// Per-query parameter validation; see
    /// [`KnMatchError`](knmatch_core::KnMatchError).
    pub fn execute(
        &self,
        query: &BatchQuery,
        src: &mut SharedDiskColumns<'_, S>,
        scratch: &mut Scratch,
    ) -> Result<DiskBatchOutcome> {
        src.begin_query();
        let run = catch_unwind(AssertUnwindSafe(|| {
            execute_batch_query(src, query, scratch)
        }));
        let (answer, ad) = match run {
            Ok(r) => r?,
            Err(payload) => return Err(unwind_to_error(payload)),
        };
        Ok(DiskBatchOutcome {
            answer,
            ad,
            io: src.session_stats(),
        })
    }

    /// Unwraps the engine into its store and column handle.
    pub fn into_parts(self) -> (S, SortedColumnFile) {
        (self.pool.into_store(), self.columns)
    }
}

impl<S: SharedPageStore> BatchEngine for DiskQueryEngine<S> {
    type Outcome = DiskBatchOutcome;

    fn workers(&self) -> usize {
        self.workers
    }

    /// Invalid, failing, or panicking queries yield an `Err` in their own
    /// slot without affecting the rest of the batch. Answers, `AdStats`,
    /// and modelled `IoStats` are identical at every worker count.
    fn run_with(
        &self,
        queries: &[BatchQuery],
        opts: &BatchOptions,
    ) -> Vec<Result<DiskBatchOutcome>> {
        let control = opts.arm();
        run_batch(
            self.workers,
            queries.len(),
            || {
                (
                    SharedDiskColumns::new(&self.columns, &self.pool, self.pool_pages),
                    control.scratch(),
                )
            },
            |(src, scratch), i| {
                let out = self.execute(&queries[i], src, scratch);
                note_outcome(&control, &out);
                out
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DiskDatabase;
    use crate::store::MemStore;

    fn fig3_engine(workers: usize) -> DiskQueryEngine<MemStore> {
        DiskDatabase::build_in_memory(&knmatch_core::paper::fig3_dataset(), 16).into_engine(workers)
    }

    /// Match-or-fail: the `KnMatch` payload, or a failure naming the
    /// variant actually returned.
    fn expect_kn(answer: &BatchAnswer) -> &knmatch_core::KnMatchResult {
        match answer {
            BatchAnswer::KnMatch(r) => r,
            other => panic!("expected a KnMatch answer, got {other:?}"),
        }
    }

    /// Match-or-fail: the `Frequent` payload, or a failure naming the
    /// variant actually returned.
    fn expect_frequent(answer: &BatchAnswer) -> &knmatch_core::FrequentResult {
        match answer {
            BatchAnswer::Frequent(r) => r,
            other => panic!("expected a Frequent answer, got {other:?}"),
        }
    }

    fn batch() -> Vec<BatchQuery> {
        vec![
            BatchQuery::KnMatch {
                query: vec![3.0, 7.0, 4.0],
                k: 2,
                n: 2,
            },
            BatchQuery::Frequent {
                query: vec![3.0, 7.0, 4.0],
                k: 2,
                n0: 1,
                n1: 3,
            },
            BatchQuery::EpsMatch {
                query: vec![3.0, 7.0, 4.0],
                eps: 1.6,
                n: 2,
            },
        ]
    }

    #[test]
    fn matches_sequential_disk_database_per_query() {
        for workers in [1, 2, 4] {
            let engine = fig3_engine(workers);
            let results = engine.run(&batch());

            let mut db = DiskDatabase::build_in_memory(&knmatch_core::paper::fig3_dataset(), 16);
            db.pool_mut().invalidate_all();
            let want = db.k_n_match(&[3.0, 7.0, 4.0], 2, 2).unwrap();
            let got = results[0].as_ref().unwrap();
            let r = expect_kn(&got.answer);
            assert_eq!(r, &want.result);
            assert_eq!(got.ad, want.ad);
            assert_eq!(got.io, want.io, "workers {workers}");

            db.pool_mut().invalidate_all();
            let want = db.frequent_k_n_match(&[3.0, 7.0, 4.0], 2, 1, 3).unwrap();
            let got = results[1].as_ref().unwrap();
            let r = expect_frequent(&got.answer);
            assert_eq!(r, &want.result);
            assert_eq!(got.io, want.io);
        }
    }

    #[test]
    fn invalid_queries_fail_individually() {
        let engine = fig3_engine(2);
        let mut queries = batch();
        queries.push(BatchQuery::KnMatch {
            query: vec![1.0],
            k: 1,
            n: 1,
        });
        let results = engine.run(&queries);
        assert!(results[..3].iter().all(Result::is_ok));
        assert!(results[3].is_err());
    }

    #[test]
    fn rejects_zero_pool_pages() {
        let ds = knmatch_core::paper::fig3_dataset();
        let mut store = MemStore::new();
        let layout = DiskDatabase::<MemStore>::build(&ds, &mut store);
        let err = DiskQueryEngine::new(store, layout.columns, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn deadlines_and_generous_options_behave() {
        let engine = fig3_engine(2);
        let opts = BatchOptions {
            deadline: Some(std::time::Duration::ZERO),
            ..BatchOptions::default()
        };
        for r in engine.run_with(&batch(), &opts) {
            assert_eq!(r, Err(KnMatchError::DeadlineExceeded));
        }
        let opts = BatchOptions {
            deadline: Some(std::time::Duration::from_secs(3600)),
            fail_fast: true,
            ..BatchOptions::default()
        };
        assert_eq!(engine.run_with(&batch(), &opts), engine.run(&batch()));
    }

    #[test]
    fn shared_pool_accumulates_hits_across_queries() {
        let engine = fig3_engine(1);
        let b = batch();
        let _ = engine.run(&b);
        let cold = engine.pool_stats();
        let _ = engine.run(&b);
        let warm = engine.pool_stats();
        // Second run of the same batch is served from the shared cache.
        assert_eq!(warm.page_accesses(), cold.page_accesses());
        assert!(warm.hits > cold.hits);
    }

    #[test]
    fn accessors() {
        let mut engine = fig3_engine(3);
        assert_eq!(engine.workers(), 3);
        engine.set_workers(0);
        assert_eq!(engine.workers(), 1);
        assert_eq!(engine.pool_pages(), 16);
        assert_eq!(engine.columns().dims(), 3);
        assert!(engine.run(&[]).is_empty());
        let (store, columns) = engine.into_parts();
        assert_eq!(
            crate::PageStore::page_count(&store),
            columns.total_pages() + 1
        );
    }
}
