//! A shard-locked buffer pool shared by concurrent readers.
//!
//! [`crate::BufferPool`] demands `&mut` exclusive access, which is exactly
//! right for the paper's single-query cost model but serialises a batch of
//! queries behind one lock. [`SharedBufferPool`] is the concurrent
//! counterpart: the page cache is split into `page_no`-hashed shards, each
//! an independently locked LRU, over a [`SharedPageStore`] whose read path
//! takes `&self` (positioned `read_at` reads for [`crate::FileStore`]), so
//! concurrent misses on different shards proceed fully in parallel and
//! even misses on one shard never contend on a file cursor.
//!
//! **Copy-out, not pinning.** A hit copies the 4 KiB page into the
//! caller's buffer instead of handing out a reference. At this page size a
//! copy is a few hundred nanoseconds of streaming memcpy, far cheaper than
//! the bookkeeping (and failure modes) of a pin/unpin protocol, and it
//! means the shard lock is held only for the duration of the copy — no
//! reader can block eviction while it parses a page.
//!
//! **Accounting.** Two layers, with different jobs:
//!
//! * Each shard counts the traffic it actually served ([`IoStats`]:
//!   hits, and misses split sequential/random); [`SharedBufferPool::stats`]
//!   merges them on demand. This measures *real* I/O saved by sharing the
//!   cache across queries — the hit-ratio column of the disk benches.
//! * A [`ReadSession`] gives each worker the *per-query modelled* stats of
//!   `buffer.rs`: the same per-group stream tails classify misses as
//!   sequential or random, and a simulated private LRU of the configured
//!   capacity decides hit vs miss exactly as a dedicated [`BufferPool`]
//!   would on a cold pool. Session stats are therefore bit-identical to
//!   the sequential disk path at any worker count and any interleaving —
//!   the determinism the cross-check suite asserts.
//!
//! **Stream classification under sharding.** The sequential-vs-random
//! verdict never lives in a shard: consecutive pages of one scan hash to
//! *different* shards, so shard-local tails could not see a run. Instead
//! the caller's [`ReadSession`] owns the per-group tails (mirroring
//! per-open-file readahead state, as in `buffer.rs`) and the shard is
//! simply told the verdict when it has to fetch. Merged pool stats
//! therefore preserve the group semantics even though pages scatter.
//!
//! [`BufferPool`]: crate::BufferPool

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use crate::buffer::IoStats;
use crate::error::{StorageError, StorageResult};
use crate::page::{empty_page, PageBuf};
use crate::store::SharedPageStore;

/// Doubly-linked-list node indices for the LRU chains.
const NIL: usize = usize::MAX;

/// Streams remembered per group, as in `buffer.rs`: one group is one
/// "open file", and the AD algorithm runs an up and a down cursor against
/// each dimension file.
const TAILS_PER_GROUP: usize = 2;

/// Default shard count: enough that 8 workers rarely collide on a shard
/// lock, small enough that a tiny pool still has ≥ 1 frame per shard.
pub const DEFAULT_SHARDS: usize = 8;

/// Bounded retry-with-backoff for transient read failures (DESIGN.md
/// §10). A fetch that fails with a [transient](StorageError::is_transient)
/// error is retried up to `attempts` total tries, sleeping
/// `backoff × attempt` between tries (linear backoff); non-transient
/// errors and exhausted budgets surface immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total tries per fetch, including the first (minimum 1).
    pub attempts: u32,
    /// Base sleep between tries; try `n` waits `backoff × n`.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    /// Three tries with a 100 µs base backoff: enough to absorb
    /// interrupted syscalls and one torn transfer without stalling the
    /// shard for a visible amount of time.
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            backoff: Duration::from_micros(100),
        }
    }
}

#[derive(Debug)]
struct Frame {
    page_no: usize,
    buf: Box<PageBuf>,
    prev: usize,
    next: usize,
}

/// One independently locked LRU over the pages that hash to it.
#[derive(Debug)]
struct Shard {
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<usize, usize>,
    head: usize,
    tail: usize,
    stats: IoStats,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            capacity,
            frames: Vec::with_capacity(capacity),
            map: HashMap::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            stats: IoStats::default(),
        }
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.frames[idx].prev, self.frames[idx].next);
        if prev != NIL {
            self.frames[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.frames[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        self.frames[idx].prev = NIL;
        self.frames[idx].next = self.head;
        if self.head != NIL {
            self.frames[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.detach(idx);
        self.attach_front(idx);
    }

    /// Frame to read page `no` into: a fresh one while below capacity,
    /// otherwise the recycled LRU tail. The frame is already at the front
    /// of the chain and in the map when this returns.
    fn frame_for(&mut self, no: usize) -> usize {
        let idx = if self.frames.len() < self.capacity {
            let idx = self.frames.len();
            self.frames.push(Frame {
                page_no: no,
                buf: Box::new(empty_page()),
                prev: NIL,
                next: NIL,
            });
            self.attach_front(idx);
            idx
        } else {
            let idx = self.tail;
            let old = self.frames[idx].page_no;
            self.map.remove(&old);
            self.frames[idx].page_no = no;
            self.touch(idx);
            idx
        };
        self.map.insert(no, idx);
        idx
    }
}

/// A fixed-capacity page cache over a [`SharedPageStore`], shared by any
/// number of threads: `page_no`-hashed shards, one `Mutex`-guarded LRU
/// per shard, copy-out reads.
///
/// # Examples
///
/// ```
/// use knmatch_storage::{page::empty_page, MemStore, PageStore, SharedBufferPool};
///
/// let mut store = MemStore::new();
/// let mut p = empty_page();
/// p[0] = 7;
/// store.append_page(&p);
///
/// let pool = SharedBufferPool::new(store, 4);
/// let mut out = empty_page();
/// assert!(!pool.read(0, &mut out).unwrap()); // miss: fetched from the store
/// assert_eq!(out[0], 7);
/// assert!(pool.read(0, &mut out).unwrap()); // hit
/// assert_eq!(pool.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct SharedBufferPool<S> {
    store: S,
    shards: Box<[Mutex<Shard>]>,
    capacity: usize,
    retry: RetryPolicy,
}

impl<S: SharedPageStore> SharedBufferPool<S> {
    /// Wraps `store` with a cache of `capacity` pages split over
    /// [`DEFAULT_SHARDS`] shards (fewer when `capacity` is smaller).
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`, matching [`crate::BufferPool::new`].
    pub fn new(store: S, capacity: usize) -> Self {
        Self::with_shards(store, capacity, DEFAULT_SHARDS)
    }

    /// Wraps `store` with an explicit shard count (clamped to
    /// `1..=capacity` so every shard owns at least one frame).
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn with_shards(store: S, capacity: usize, shards: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        let n = shards.clamp(1, capacity);
        // Split the frame budget as evenly as the shard count allows; the
        // first `capacity % n` shards carry the remainder.
        let shards: Vec<Mutex<Shard>> = (0..n)
            .map(|i| Mutex::new(Shard::new(capacity / n + usize::from(i < capacity % n))))
            .collect();
        SharedBufferPool {
            store,
            shards: shards.into_boxed_slice(),
            capacity,
            retry: RetryPolicy::default(),
        }
    }

    /// Replaces the transient-read [`RetryPolicy`] (defaults to three
    /// tries with 100 µs linear backoff).
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = RetryPolicy {
            attempts: retry.attempts.max(1),
            ..retry
        };
    }

    /// The active transient-read retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    fn shard_of(&self, no: usize) -> &Mutex<Shard> {
        &self.shards[no % self.shards.len()]
    }

    /// Locks a shard, recovering from poison instead of propagating it.
    ///
    /// A shard mutex is poisoned when a reader panics mid-fetch (fault
    /// injection does this deliberately; see [`crate::FaultStore`]).
    /// Cached frames are conservatively discarded — recovery assumes
    /// nothing about how far the panicking reader got — while the served
    /// counters are kept (they are plain totals; the worst a panic can
    /// do is leave one access uncounted). The pool stays usable for
    /// every later query.
    fn lock_shard<'a>(&self, shard: &'a Mutex<Shard>) -> MutexGuard<'a, Shard> {
        match shard.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                let capacity = guard.capacity;
                let stats = guard.stats;
                *guard = Shard::new(capacity);
                guard.stats = stats;
                shard.clear_poison();
                guard
            }
        }
    }

    /// Reads page `no` into `out`, with the miss (if any) pre-classified
    /// by the caller: `sequential == true` charges the shard a streamed
    /// read, otherwise a seek. Returns `Ok(true)` on a cache hit.
    ///
    /// The classification verdict comes from outside because stream state
    /// is per-reader, not per-shard — see the module docs and
    /// [`ReadSession`].
    ///
    /// # Errors
    ///
    /// A store read that still fails after the [`RetryPolicy`]'s budget
    /// of transient retries. A failed fetch leaves the shard's map and
    /// LRU chain exactly as they were — no frame ever holds bytes that
    /// did not verify.
    pub fn read_classified(
        &self,
        no: usize,
        sequential: bool,
        out: &mut PageBuf,
    ) -> StorageResult<bool> {
        let mut shard = self.lock_shard(self.shard_of(no));
        if let Some(&idx) = shard.map.get(&no) {
            shard.stats.hits += 1;
            shard.touch(idx);
            out.copy_from_slice(&shard.frames[idx].buf[..]);
            return Ok(true);
        }
        // Fetch into the caller's buffer first; the frame is claimed and
        // filled only once the bytes are known good. The store read
        // happens under the shard lock: `read_page_at` is `&self` so
        // other shards proceed, and holding the lock means two racing
        // readers of one page never fetch it twice (which also keeps
        // FaultStore's heal-on-retry per-page ordering race-free). The
        // backoff sleeps are likewise under the lock — a store in
        // trouble is already degraded, and simplicity wins over shard
        // throughput during a fault burst.
        self.fetch_with_retry(no, &mut shard, out)?;
        if sequential {
            shard.stats.sequential_reads += 1;
        } else {
            shard.stats.random_reads += 1;
        }
        let idx = shard.frame_for(no);
        shard.frames[idx].buf.copy_from_slice(out);
        Ok(false)
    }

    /// One store fetch under the shard lock, retrying transient errors
    /// per the pool's [`RetryPolicy`] and counting each extra try in the
    /// shard's [`IoStats::retries`].
    fn fetch_with_retry(
        &self,
        no: usize,
        shard: &mut Shard,
        out: &mut PageBuf,
    ) -> StorageResult<()> {
        let mut attempt: u32 = 1;
        loop {
            match self.store.read_page_at(no, out) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() && attempt < self.retry.attempts => {
                    shard.stats.retries += 1;
                    if !self.retry.backoff.is_zero() {
                        std::thread::sleep(self.retry.backoff * attempt);
                    }
                    attempt += 1;
                }
                Err(e) if attempt > 1 => {
                    return Err(StorageError::RetriesExhausted {
                        page: no,
                        attempts: attempt,
                        last: Box::new(e),
                    })
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Point-lookup read (a miss is always a seek). Returns `Ok(true)`
    /// on a cache hit.
    ///
    /// # Errors
    ///
    /// As [`SharedBufferPool::read_classified`].
    pub fn read(&self, no: usize, out: &mut PageBuf) -> StorageResult<bool> {
        self.read_classified(no, false, out)
    }

    /// Reads page `no` on behalf of `session`'s stream group `group`:
    /// the session records its modelled per-query stats (hit/sequential/
    /// random exactly as a private cold [`crate::BufferPool`] would) and
    /// classifies the shard-level miss, then the shared cache serves the
    /// bytes. Returns `Ok(true)` when the shared cache had the page.
    ///
    /// The session books the access *before* the fetch can fail, so a
    /// retried-and-recovered read leaves the modelled stats exactly as a
    /// fault-free run would — the bit-identical-answers invariant.
    ///
    /// # Errors
    ///
    /// As [`SharedBufferPool::read_classified`].
    pub fn read_in(
        &self,
        no: usize,
        group: u32,
        session: &mut ReadSession,
        out: &mut PageBuf,
    ) -> StorageResult<bool> {
        let sequential = session.account(no, group).is_sequential();
        self.read_classified(no, sequential, out)
    }

    /// Counters of the traffic the shared cache actually served, merged
    /// over all shards on demand.
    pub fn stats(&self) -> IoStats {
        let mut total = IoStats::default();
        for shard in self.shards.iter() {
            total.merge(self.lock_shard(shard).stats);
        }
        total
    }

    /// Zeroes every shard's counters without dropping cached pages.
    pub fn reset_stats(&self) {
        for shard in self.shards.iter() {
            self.lock_shard(shard).stats = IoStats::default();
        }
    }

    /// Drops every cached page (required after mutating the store
    /// directly).
    pub fn invalidate_all(&self) {
        for shard in self.shards.iter() {
            let mut s = self.lock_shard(shard);
            let cap = s.capacity;
            *s = Shard::new(cap);
        }
    }

    /// Number of frames currently cached across all shards.
    pub fn cached_pages(&self) -> usize {
        self.shards
            .iter()
            .map(|s| self.lock_shard(s).frames.len())
            .sum()
    }

    /// Total frame budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to the wrapped store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Unwraps the pool.
    pub fn into_store(self) -> S {
        self.store
    }
}

/// How a [`ReadSession`] booked one page request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Access {
    /// Modelled as served by the private cache.
    Hit,
    /// Modelled as a fetch, already classified.
    Miss {
        /// Whether the fetch extends one of the group's scan streams.
        sequential: bool,
    },
}

impl Access {
    /// Whether a shard-level fetch for this request should be charged as
    /// streamed. A modelled hit that the shared pool nevertheless misses
    /// is a re-fetch after eviction — a seek.
    pub(crate) fn is_sequential(self) -> bool {
        matches!(self, Access::Miss { sequential: true })
    }
}

/// Slot-table sentinel: page currently not in the modelled cache.
const NO_FRAME: u32 = u32::MAX;

/// A capacity-bounded LRU over page *numbers* only: the eviction logic of
/// [`crate::BufferPool`] with the data removed, used by [`ReadSession`] to
/// model per-query hits and misses deterministically.
///
/// This runs once per *attribute* access, so instead of `BufferPool`'s
/// `HashMap` it keeps a direct-indexed slot table (page numbers are dense
/// and bounded by the store size) with per-slot epochs for O(1) clearing —
/// the lookup is one array load, no hashing.
#[derive(Debug)]
struct SimLru {
    capacity: usize,
    /// `slot[page_no]` = frame index holding that page, valid only when
    /// the stamp matches the current epoch; grown on demand.
    slot: Vec<(u32, u32)>,
    epoch: u32,
    // Parallel arrays forming the same doubly-linked chain as BufferPool's
    // frames, so eviction order matches it exactly.
    page_no: Vec<usize>,
    prev: Vec<usize>,
    next: Vec<usize>,
    head: usize,
    tail: usize,
}

impl SimLru {
    fn new(capacity: usize) -> Self {
        SimLru {
            capacity,
            slot: Vec::new(),
            epoch: 1,
            page_no: Vec::with_capacity(capacity),
            prev: Vec::with_capacity(capacity),
            next: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
        }
    }

    fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: stale stamps could collide, so really reset.
            self.slot.clear();
            self.epoch = 1;
        }
        self.page_no.clear();
        self.prev.clear();
        self.next.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn detach(&mut self, idx: usize) {
        let (p, n) = (self.prev[idx], self.next[idx]);
        if p != NIL {
            self.next[p] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n] = p;
        } else {
            self.tail = p;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        self.prev[idx] = NIL;
        self.next[idx] = self.head;
        if self.head != NIL {
            self.prev[self.head] = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.detach(idx);
        self.attach_front(idx);
    }

    /// Accesses page `no`: returns `true` on a (modelled) hit, promoting
    /// it; on a miss, inserts it, evicting the LRU page when full —
    /// exactly [`crate::BufferPool::get_in`]'s cache behaviour.
    fn access(&mut self, no: usize) -> bool {
        if no >= self.slot.len() {
            self.slot.resize(no + 1, (NO_FRAME, 0));
        }
        let (frame, stamp) = self.slot[no];
        if stamp == self.epoch && frame != NO_FRAME {
            self.touch(frame as usize);
            return true;
        }
        let idx = if self.page_no.len() < self.capacity {
            let idx = self.page_no.len();
            self.page_no.push(no);
            self.prev.push(NIL);
            self.next.push(NIL);
            self.attach_front(idx);
            idx
        } else {
            let idx = self.tail;
            let old = self.page_no[idx];
            self.slot[old] = (NO_FRAME, self.epoch);
            self.page_no[idx] = no;
            self.touch(idx);
            idx
        };
        self.slot[no] = (idx as u32, self.epoch);
        false
    }
}

/// Per-reader modelled I/O accounting over a [`SharedBufferPool`].
///
/// One session belongs to one worker and models what *this query alone*
/// would have cost on a cold, private [`crate::BufferPool`] of the given
/// capacity: the same per-group stream tails classify misses, and a
/// page-number-only LRU of identical eviction behaviour decides hit vs
/// miss. Because the model never looks at the shared cache, its
/// [`IoStats`] are a pure function of the query's page-request sequence —
/// deterministic at any worker count, and bit-identical to running the
/// query sequentially through [`crate::DiskDatabase`] on an invalidated
/// pool.
///
/// Call [`begin_query`](ReadSession::begin_query) before each query, as
/// the sequential path's `reset_stats` + `invalidate_all` would.
#[derive(Debug)]
pub struct ReadSession {
    streams: HashMap<u32, Vec<usize>>,
    sim: SimLru,
    stats: IoStats,
}

impl ReadSession {
    /// A session modelling a private pool of `capacity` frames.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`, matching [`crate::BufferPool::new`].
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        ReadSession {
            streams: HashMap::new(),
            sim: SimLru::new(capacity),
            stats: IoStats::default(),
        }
    }

    /// Starts a fresh query: zeroes the counters, forgets the scan
    /// streams, and empties the modelled cache.
    pub fn begin_query(&mut self) {
        self.streams.clear();
        self.sim.clear();
        self.stats = IoStats::default();
    }

    /// The modelled per-query counters accumulated since the last
    /// [`begin_query`](ReadSession::begin_query).
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Books one page request: modelled hit/miss from the private LRU,
    /// misses classified by the group's stream tails exactly as
    /// `BufferPool::get_in` does.
    pub(crate) fn account(&mut self, no: usize, group: u32) -> Access {
        if self.sim.access(no) {
            self.stats.hits += 1;
            return Access::Hit;
        }
        if group == u32::MAX {
            self.stats.random_reads += 1;
            return Access::Miss { sequential: false };
        }
        let tails = self.streams.entry(group).or_default();
        let adjacent = tails
            .iter()
            .any(|&t| t == no.wrapping_sub(1) || t == no.wrapping_add(1));
        if adjacent {
            self.stats.sequential_reads += 1;
        } else {
            self.stats.random_reads += 1;
        }
        // The matched tail is kept: two cursors launched from adjacent
        // seed pages (AD's up/down pair) must each keep their stream.
        // Truncation ages stale tails out.
        tails.insert(0, no);
        tails.truncate(TAILS_PER_GROUP + 1);
        Access::Miss {
            sequential: adjacent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::store::{MemStore, PageStore};

    fn store_with(n: usize) -> MemStore {
        let mut s = MemStore::new();
        for i in 0..n {
            let mut p = empty_page();
            p[0] = i as u8;
            s.append_page(&p);
        }
        s
    }

    #[test]
    fn read_misses_then_hits() {
        let pool = SharedBufferPool::new(store_with(4), 2);
        let mut out = empty_page();
        assert!(!pool.read(1, &mut out).unwrap());
        assert_eq!(out[0], 1);
        assert!(pool.read(1, &mut out).unwrap());
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.page_accesses(), 1);
        assert_eq!(s.retries, 0);
    }

    #[test]
    fn shard_split_covers_capacity() {
        for (cap, shards) in [(1, 8), (3, 8), (8, 8), (13, 4), (64, 8)] {
            let pool = SharedBufferPool::with_shards(store_with(1), cap, shards);
            let per_shard: usize = (0..pool.shard_count())
                .map(|i| pool.shards[i].lock().unwrap().capacity)
                .sum();
            assert_eq!(per_shard, cap, "cap {cap} shards {shards}");
            assert!(pool.shard_count() <= cap.max(1));
            assert!((0..pool.shard_count()).all(|i| pool.shards[i].lock().unwrap().capacity >= 1));
        }
    }

    #[test]
    fn eviction_is_per_shard_lru() {
        // 2 shards × 1 frame: pages 0,2 share shard 0; 1 shares shard 1.
        let pool = SharedBufferPool::with_shards(store_with(4), 2, 2);
        let mut out = empty_page();
        pool.read(0, &mut out).unwrap();
        pool.read(1, &mut out).unwrap();
        pool.read(2, &mut out).unwrap(); // evicts 0 (same shard), not 1
        assert!(
            pool.read(1, &mut out).unwrap(),
            "page 1 must survive in its shard"
        );
        assert!(!pool.read(0, &mut out).unwrap(), "page 0 was evicted");
        assert_eq!(pool.cached_pages(), 2);
    }

    #[test]
    fn session_stats_match_private_buffer_pool() {
        // The modelled session accounting must replicate BufferPool
        // bit-for-bit on an arbitrary access pattern, including evictions
        // and the stream-tails rules.
        let accesses: Vec<(usize, u32)> = vec![
            (0, 0),
            (1, 0),
            (2, 0),
            (9, u32::MAX),
            (3, 0),
            (2, 0),
            (7, 1),
            (8, 1),
            (0, 0),
            (9, 1),
            (5, u32::MAX),
            (4, 0),
            (9, 1),
            (1, 0),
        ];
        for capacity in [1, 2, 3, 8] {
            let mut reference = BufferPool::new(store_with(10), capacity);
            let shared = SharedBufferPool::new(store_with(10), capacity);
            let mut session = ReadSession::new(capacity);
            let mut out = empty_page();
            for &(no, group) in &accesses {
                let want = reference.get_in(no, group)[0];
                shared.read_in(no, group, &mut session, &mut out).unwrap();
                assert_eq!(out[0], want);
            }
            assert_eq!(
                session.stats(),
                reference.stats(),
                "capacity {capacity}: modelled session diverged from BufferPool"
            );
        }
    }

    #[test]
    fn begin_query_resets_the_model() {
        let shared = SharedBufferPool::new(store_with(4), 4);
        let mut session = ReadSession::new(4);
        let mut out = empty_page();
        shared.read_in(0, 0, &mut session, &mut out).unwrap();
        shared.read_in(1, 0, &mut session, &mut out).unwrap();
        session.begin_query();
        assert_eq!(session.stats(), IoStats::default());
        // Page 0 is still in the *shared* cache but the modelled query
        // starts cold: a modelled miss, an actual hit.
        let before = shared.stats().hits;
        shared.read_in(0, 0, &mut session, &mut out).unwrap();
        assert_eq!(session.stats().page_accesses(), 1);
        assert_eq!(shared.stats().hits, before + 1);
    }

    #[test]
    fn invalidate_all_drops_pages() {
        let pool = SharedBufferPool::new(store_with(3), 4);
        let mut out = empty_page();
        pool.read(0, &mut out).unwrap();
        pool.read(1, &mut out).unwrap();
        assert_eq!(pool.cached_pages(), 2);
        pool.invalidate_all();
        assert_eq!(pool.cached_pages(), 0);
        pool.reset_stats();
        assert!(!pool.read(0, &mut out).unwrap());
    }

    #[test]
    fn transient_errors_are_retried_and_counted() {
        use crate::fault::{FaultConfig, FaultStore};
        // Rate 1.0 means every first read of a page faults, and the
        // heal-on-retry rule makes the second try succeed.
        let store = FaultStore::new(store_with(4), FaultConfig::transient(11, 1.0));
        let pool = SharedBufferPool::new(store, 4);
        let mut out = empty_page();
        for no in 0..4 {
            assert!(!pool.read(no, &mut out).unwrap());
            assert_eq!(out[0], no as u8);
        }
        let s = pool.stats();
        assert_eq!(s.retries, 4, "one retry per first-touch page");
        assert_eq!(s.page_accesses(), 4);
        // Hits bypass the store entirely: no further faults or retries.
        assert!(pool.read(0, &mut out).unwrap());
        assert_eq!(pool.stats().retries, 4);
    }

    #[test]
    fn exhausted_retries_surface_and_leave_no_frame() {
        use crate::fault::{FaultConfig, FaultStore};
        let cfg = FaultConfig {
            fail_pages: [2usize].into_iter().collect(),
            ..FaultConfig::default()
        };
        let pool = SharedBufferPool::new(FaultStore::new(store_with(4), cfg), 4);
        let mut out = empty_page();
        match pool.read(2, &mut out) {
            Err(StorageError::RetriesExhausted {
                page: 2, attempts, ..
            }) => {
                assert_eq!(attempts, RetryPolicy::default().attempts);
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        // The failed fetch claimed no frame and corrupted no state.
        assert_eq!(pool.cached_pages(), 0);
        assert!(!pool.read(1, &mut out).unwrap());
        assert_eq!(out[0], 1);
        let s = pool.stats();
        assert_eq!(s.retries, u64::from(RetryPolicy::default().attempts - 1));
        assert_eq!(
            s.page_accesses(),
            1,
            "only the successful miss was classified"
        );
    }

    #[test]
    fn poisoned_shard_is_rebuilt_and_usable() {
        use crate::fault::{FaultConfig, FaultStore};
        let cfg = FaultConfig {
            panic_on_page: Some(1),
            ..FaultConfig::default()
        };
        let pool = SharedBufferPool::with_shards(FaultStore::new(store_with(4), cfg), 4, 2);
        let mut out = empty_page();
        pool.read(3, &mut out).unwrap(); // cache something in page 1's shard
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut buf = empty_page();
            let _ = pool.read(1, &mut buf);
        }));
        assert!(caught.is_err(), "injected panic must propagate");
        // The poisoned shard recovers: its frames were dropped, reads work.
        assert!(!pool.read(1, &mut out).unwrap());
        assert_eq!(out[0], 1);
        assert!(
            !pool.read(3, &mut out).unwrap(),
            "frame was discarded in recovery"
        );
        assert_eq!(out[0], 3);
        assert!(pool.read(3, &mut out).unwrap());
    }

    #[test]
    fn capacity_accessors() {
        let pool = SharedBufferPool::with_shards(store_with(1), 10, 3);
        assert_eq!(pool.capacity(), 10);
        assert_eq!(pool.shard_count(), 3);
        assert_eq!(PageStore::page_count(pool.store()), 1);
        let store = pool.into_store();
        assert_eq!(PageStore::page_count(&store), 1);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_panics() {
        let _ = SharedBufferPool::new(MemStore::new(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_session_panics() {
        let _ = ReadSession::new(0);
    }
}
