//! A cost-based access-path choice: AD algorithm or sequential scan.
//!
//! Figure 12 of the paper shows the crossover this planner navigates: the
//! AD algorithm's cost grows with `n1` (and with k), and near `n1 = d` on
//! uniform data it approaches — and can exceed — the scan's. A system
//! should therefore *estimate* the AD cost before committing. The
//! estimator samples a few points, computes their n1-match differences to
//! the query, estimates the answer threshold ε as the appropriate sample
//! quantile, and from it the attribute volume AD would retrieve (the
//! attributes within ε of the query in each dimension, counted via the
//! column fences at page granularity). Both plans are then priced with the
//! pool's [`CostModel`] and the cheaper one runs.

use knmatch_core::{sorted_differences_with_buf, FrequentResult, Result};

use crate::buffer::CostModel;
use crate::db::{DiskDatabase, DiskQueryOutcome};
use crate::page::COLUMN_ENTRIES_PER_PAGE;
use crate::store::PageStore;

/// Which access path the planner chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plan {
    /// The disk-based AD algorithm.
    Ad,
    /// The sequential heap-file scan.
    Scan,
}

/// The planner's decision with its cost estimates (milliseconds under the
/// supplied [`CostModel`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanChoice {
    /// The chosen path.
    pub plan: Plan,
    /// Estimated AD response time.
    pub ad_estimate_ms: f64,
    /// Estimated (exact, in pages) scan response time.
    pub scan_estimate_ms: f64,
    /// The ε estimated from the sample (the k-th smallest n1-match
    /// difference, extrapolated).
    pub estimated_epsilon: f64,
}

/// How many points the estimator samples (evenly spaced by pid; reading
/// them costs a handful of heap pages, charged to the query like any
/// other I/O).
pub const PLANNER_SAMPLE: usize = 64;

impl<S: PageStore> DiskDatabase<S> {
    /// Estimates both plans for a frequent k-n-match query and returns the
    /// choice without running it.
    ///
    /// # Errors
    ///
    /// Validates parameters like the query itself.
    pub fn plan_frequent_k_n_match(
        &mut self,
        query: &[f64],
        k: usize,
        n0: usize,
        n1: usize,
        model: CostModel,
    ) -> Result<PlanChoice> {
        knmatch_core::ad::validate_params(query, self.dims(), self.len(), k, n0, n1)?;
        let c = self.len();
        let d = self.dims();

        // Sample evenly spaced points and collect their n1-match diffs.
        let sample_n = PLANNER_SAMPLE.min(c);
        let step = (c / sample_n).max(1);
        let mut diffs: Vec<f64> = Vec::with_capacity(sample_n);
        let mut buf = Vec::with_capacity(d);
        let heap = self.heap();
        let mut row = vec![0.0f64; d];
        for i in 0..sample_n {
            let pid = ((i * step) % c) as u32;
            heap.point(self.pool_mut(), pid, &mut row);
            sorted_differences_with_buf(&row, query, &mut buf);
            diffs.push(buf[n1 - 1]);
        }
        diffs.sort_unstable_by(f64::total_cmp);
        // ε ≈ the q-th quantile of n1-match differences with q = k / c,
        // read off the sample (clamped to its smallest observation when the
        // quantile falls below the sample's resolution).
        let q = k as f64 / c as f64;
        let idx = ((q * sample_n as f64).ceil() as usize).clamp(1, sample_n) - 1;
        let eps = diffs[idx];

        // AD retrieves, per dimension, the attributes within ε of the query
        // value. Count them at page granularity with the in-memory fences
        // (no extra I/O).
        let columns = self.columns().clone();
        let mut pages_ad = 0u64;
        for (dim, &qv) in query.iter().enumerate() {
            let lo = columns.locate_fences_only(dim, qv - eps);
            let hi = columns.locate_fences_only(dim, qv + eps);
            let entries = hi.saturating_sub(lo).max(1);
            pages_ad += (entries as u64).div_ceil(COLUMN_ENTRIES_PER_PAGE as u64) + 1;
        }
        // AD's walks are sequential within a dimension; charge one seek per
        // cursor pair plus streamed pages.
        let ad_ms = d as f64 * model.random_ms
            + pages_ad.saturating_sub(d as u64) as f64 * model.sequential_ms;
        let scan_pages = self.heap().total_pages() as f64;
        let scan_ms = model.random_ms + (scan_pages - 1.0).max(0.0) * model.sequential_ms;

        Ok(PlanChoice {
            plan: if ad_ms <= scan_ms {
                Plan::Ad
            } else {
                Plan::Scan
            },
            ad_estimate_ms: ad_ms,
            scan_estimate_ms: scan_ms,
            estimated_epsilon: eps,
        })
    }

    /// Plans and runs a frequent k-n-match query on the cheaper path.
    /// Returns the answer (identical either way), the I/O it cost, and the
    /// plan taken.
    ///
    /// # Errors
    ///
    /// Validates parameters like the query itself.
    pub fn frequent_k_n_match_auto(
        &mut self,
        query: &[f64],
        k: usize,
        n0: usize,
        n1: usize,
        model: CostModel,
    ) -> Result<(DiskQueryOutcome<FrequentResult>, PlanChoice)> {
        let choice = self.plan_frequent_k_n_match(query, k, n0, n1, model)?;
        let out = match choice.plan {
            Plan::Ad => self.frequent_k_n_match(query, k, n0, n1)?,
            Plan::Scan => self.scan_frequent_k_n_match(query, k, n0, n1)?,
        };
        Ok((out, choice))
    }
}

/// Which in-memory backend the request-time planner chose for one query.
///
/// This is the live, per-batch-element counterpart of the disk planner's
/// [`Plan`]: the server's planned engine evaluates [`plan_in_memory`] for
/// every query and dispatches to the winner. All three backends answer
/// exactly, so the choice changes cost, never answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendChoice {
    /// The AD algorithm over sorted columns.
    Ad,
    /// The VA-file band filter plus exact refine.
    VaFile,
    /// The kernel-unrolled full scan.
    Scan,
}

/// Tunable per-unit costs of the in-memory backends. Units are arbitrary
/// (only ratios matter); the defaults were calibrated against the
/// `planner_crossover` bench on the development host, with
/// `scan_per_attr = 1` as the yardstick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemCostModel {
    /// Cost per attribute the AD algorithm retrieves **at full width**
    /// (`ad_attrs = cardinality × dims`). AD's measured cost is strongly
    /// superlinear in the fraction of attributes its frontier touches —
    /// wider bands mean deeper heaps, more duplicate-point bookkeeping,
    /// and colder cache per pop — so [`plan_in_memory`] prices AD as
    /// `ad_attrs × ad_per_attr × frac²` (a cubic law overall), which is
    /// what the `planner_crossover` bench measures across n-levels.
    pub ad_per_attr: f64,
    /// Cost per attribute the full scan visits (the yardstick unit).
    pub scan_per_attr: f64,
    /// Cost per (point, dimension) byte compare of the band filter — the
    /// vectorised kernel makes this a small fraction of a scan touch.
    pub filter_per_cell: f64,
    /// Cost per attribute refined after the filter (row gather plus
    /// selection; slightly worse locality than the pure scan).
    pub refine_per_attr: f64,
}

impl Default for MemCostModel {
    fn default() -> Self {
        MemCostModel {
            ad_per_attr: 22.0,
            scan_per_attr: 1.0,
            filter_per_cell: 0.15,
            refine_per_attr: 1.5,
        }
    }
}

/// Per-query quantities the in-memory model prices. The caller measures
/// them cheaply at request time: `ad_attrs` from the sorted-column fences
/// at `q ± ε̂` (two binary searches per dimension), `candidate_fraction`
/// from the band filter over a small strided sample.
///
/// The per-point refine work of a frequent query (one sort plus one offer
/// per n-level) hits the scan and VA-file paths identically and is already
/// folded into `ad_attrs` for AD (ε̂ is estimated at `n1`), so the model
/// needs no explicit n-range input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemPlanInputs {
    /// Dataset cardinality.
    pub cardinality: usize,
    /// Dataset dimensionality.
    pub dims: usize,
    /// Estimated attributes the AD algorithm would retrieve before
    /// completing (all dimensions combined).
    pub ad_attrs: u64,
    /// Estimated fraction of points surviving the band filter (phase-two
    /// volume of the VA-file path), in `[0, 1]`.
    pub candidate_fraction: f64,
}

/// The in-memory planner's decision with the three cost estimates (model
/// units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemPlanChoice {
    /// The cheapest backend (ties break AD → VA-file → scan, the order in
    /// which estimation error is least harmful).
    pub backend: BackendChoice,
    /// Estimated AD cost.
    pub ad_cost: f64,
    /// Estimated VA-file filter-plus-refine cost.
    pub vafile_cost: f64,
    /// Estimated full-scan cost.
    pub scan_cost: f64,
}

/// Prices the three in-memory backends for one query and returns the
/// cheapest — the Figure 12 crossover, evaluated live per batch element.
pub fn plan_in_memory(inputs: &MemPlanInputs, model: &MemCostModel) -> MemPlanChoice {
    let attrs = inputs.cardinality as f64 * inputs.dims as f64;
    // Superlinear AD law (see [`MemCostModel::ad_per_attr`]): per-attr
    // cost scales with the square of the touched fraction, so AD is
    // near-free at small n and prohibitive as the band nears full width.
    let frac = (inputs.ad_attrs as f64 / attrs.max(1.0)).clamp(0.0, 1.0);
    let ad_cost = inputs.ad_attrs as f64 * model.ad_per_attr * frac * frac;
    let scan_cost = attrs * model.scan_per_attr;
    let vafile_cost = attrs * model.filter_per_cell
        + inputs.candidate_fraction.clamp(0.0, 1.0) * attrs * model.refine_per_attr;
    let backend = if ad_cost <= vafile_cost && ad_cost <= scan_cost {
        BackendChoice::Ad
    } else if vafile_cost <= scan_cost {
        BackendChoice::VaFile
    } else {
        BackendChoice::Scan
    };
    MemPlanChoice {
        backend,
        ad_cost,
        vafile_cost,
        scan_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use knmatch_core::Dataset;

    fn uniformish(c: usize, d: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..c)
            .map(|i| {
                (0..d)
                    .map(|j| ((i * 31 + j * 17) as f64 * 0.6180339887) % 1.0)
                    .collect()
            })
            .collect();
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn planner_prefers_ad_for_small_n1_and_scan_near_d() {
        // Genuinely uniform data: near n1 = d the answer threshold ε is
        // large (Figure 12's crossover), so the scan must win there. (The
        // lattice-like `uniformish` data is full of near-duplicates and AD
        // legitimately wins at every n1 on it.)
        let ds = knmatch_data::uniform(20_000, 16, 7);
        let mut db = DiskDatabase::<MemStore>::build_in_memory(&ds, 256);
        let q = ds.point(5).to_vec();
        let model = CostModel::default();
        let small = db.plan_frequent_k_n_match(&q, 20, 4, 6, model).unwrap();
        assert_eq!(small.plan, Plan::Ad, "{small:?}");
        let large = db.plan_frequent_k_n_match(&q, 20, 4, 16, model).unwrap();
        assert_eq!(large.plan, Plan::Scan, "{large:?}");
        assert!(large.estimated_epsilon > small.estimated_epsilon);
    }

    #[test]
    fn auto_runs_the_chosen_plan_and_answers_exactly() {
        let ds = uniformish(5_000, 8);
        let mut db = DiskDatabase::<MemStore>::build_in_memory(&ds, 256);
        let q = ds.point(77).to_vec();
        let model = CostModel::default();
        for (n0, n1) in [(2usize, 4usize), (4, 8)] {
            let (out, choice) = db.frequent_k_n_match_auto(&q, 10, n0, n1, model).unwrap();
            let oracle = knmatch_core::frequent_k_n_match_scan(&ds, &q, 10, n0, n1).unwrap();
            assert_eq!(out.result.ids(), oracle.ids(), "plan {:?}", choice.plan);
        }
    }

    #[test]
    fn estimates_are_positive_and_ordered_sanely() {
        let ds = uniformish(3_000, 6);
        let mut db = DiskDatabase::<MemStore>::build_in_memory(&ds, 64);
        let q = ds.point(1).to_vec();
        let choice = db
            .plan_frequent_k_n_match(&q, 5, 2, 4, CostModel::default())
            .unwrap();
        assert!(choice.ad_estimate_ms > 0.0);
        assert!(choice.scan_estimate_ms > 0.0);
        assert!(choice.estimated_epsilon > 0.0);
    }

    #[test]
    fn in_memory_model_tracks_its_inputs() {
        let model = MemCostModel::default();
        let base = MemPlanInputs {
            cardinality: 10_000,
            dims: 8,
            ad_attrs: 2_000,
            candidate_fraction: 0.05,
        };
        // Few AD attributes → AD wins.
        assert_eq!(plan_in_memory(&base, &model).backend, BackendChoice::Ad);
        // AD forced to touch nearly everything, filter selective → VA-file.
        let va = MemPlanInputs {
            ad_attrs: 60_000,
            ..base
        };
        assert_eq!(plan_in_memory(&va, &model).backend, BackendChoice::VaFile);
        // Filter keeps everything too → the plain scan is cheapest.
        let scan = MemPlanInputs {
            ad_attrs: 60_000,
            candidate_fraction: 1.0,
            ..base
        };
        assert_eq!(plan_in_memory(&scan, &model).backend, BackendChoice::Scan);
        // Costs are monotone in their drivers.
        let c = plan_in_memory(&base, &model);
        let c2 = plan_in_memory(
            &MemPlanInputs {
                ad_attrs: base.ad_attrs * 2,
                ..base
            },
            &model,
        );
        assert!(c2.ad_cost > c.ad_cost);
        assert_eq!(c2.scan_cost, c.scan_cost);
    }

    #[test]
    fn in_memory_model_breaks_ties_toward_ad() {
        // A model where everything costs the same per attribute and inputs
        // that make all three estimates equal.
        let model = MemCostModel {
            ad_per_attr: 1.0,
            scan_per_attr: 1.0,
            filter_per_cell: 0.5,
            refine_per_attr: 0.5,
        };
        let inputs = MemPlanInputs {
            cardinality: 100,
            dims: 10,
            ad_attrs: 1_000,
            candidate_fraction: 1.0,
        };
        let choice = plan_in_memory(&inputs, &model);
        assert_eq!(choice.ad_cost, choice.scan_cost);
        assert_eq!(choice.vafile_cost, choice.scan_cost);
        assert_eq!(choice.backend, BackendChoice::Ad);
    }

    #[test]
    fn validates_parameters() {
        let ds = uniformish(100, 4);
        let mut db = DiskDatabase::<MemStore>::build_in_memory(&ds, 16);
        let model = CostModel::default();
        assert!(db
            .plan_frequent_k_n_match(&[0.0; 3], 5, 1, 4, model)
            .is_err());
        assert!(db
            .plan_frequent_k_n_match(&[0.0; 4], 0, 1, 4, model)
            .is_err());
        assert!(db
            .plan_frequent_k_n_match(&[0.0; 4], 5, 3, 2, model)
            .is_err());
    }
}
