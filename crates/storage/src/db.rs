//! A disk-resident k-n-match database: sorted-column file + heap file
//! behind one buffer pool, with the paper's two disk algorithms —
//! the disk-based AD algorithm (Section 4.1) and the sequential-scan
//! baseline — exposed with per-query I/O statistics.

use knmatch_core::{
    eps_n_match_ad, frequent_k_n_match_ad, k_n_match_ad, AdStats, Dataset, FrequentResult,
    KnMatchResult, Result,
};

use crate::buffer::{BufferPool, IoStats};
use crate::column_file::{DiskColumns, SortedColumnFile};
use crate::disk_engine::DiskQueryEngine;
use crate::heap_file::HeapFile;
use crate::store::{MemStore, PageStore, SharedPageStore};

/// Outcome of one disk query: the answer plus what it cost.
#[derive(Debug, Clone)]
pub struct DiskQueryOutcome<R> {
    /// The query answer.
    pub result: R,
    /// Page-level I/O incurred by this query.
    pub io: IoStats,
    /// Attribute-level AD counters (zeroed for scan-based queries' probes).
    pub ad: AdStats,
}

/// A dataset materialised on "disk" (any [`PageStore`]): a heap file in pid
/// order plus a sorted-column file, sharing one LRU buffer pool.
#[derive(Debug)]
pub struct DiskDatabase<S: PageStore> {
    pool: BufferPool<S>,
    columns: SortedColumnFile,
    heap: HeapFile,
}

impl DiskDatabase<MemStore> {
    /// Builds both files in a fresh in-memory store (the deterministic
    /// experiment substrate).
    ///
    /// # Panics
    ///
    /// Panics when `pool_pages == 0` (use [`DiskLayout::attach`] for a
    /// fallible path).
    pub fn build_in_memory(ds: &Dataset, pool_pages: usize) -> Self {
        let mut store = MemStore::new();
        Self::build(ds, &mut store)
            .attach(store, pool_pages)
            .expect("pool_pages must be at least one")
    }
}

/// Layout handles produced by [`DiskDatabase::build`]; attach them to the
/// store they were built into.
#[derive(Debug, Clone)]
pub struct DiskLayout {
    /// Sorted-dimension file handle.
    pub columns: SortedColumnFile,
    /// Full-record heap file handle.
    pub heap: HeapFile,
}

impl DiskLayout {
    /// Binds the layout to its store behind a pool of `pool_pages` frames.
    ///
    /// # Errors
    ///
    /// Rejects `pool_pages == 0` as `InvalidInput` (a pool needs at least
    /// one frame); validated here, up front, so no caller ever reaches the
    /// panic inside [`BufferPool::new`].
    pub fn attach<S: PageStore>(
        self,
        store: S,
        pool_pages: usize,
    ) -> std::io::Result<DiskDatabase<S>> {
        if pool_pages == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "buffer pool needs at least one frame (pool_pages == 0)",
            ));
        }
        Ok(DiskDatabase {
            pool: BufferPool::new(store, pool_pages),
            columns: self.columns,
            heap: self.heap,
        })
    }
}

impl<S: PageStore> DiskDatabase<S> {
    /// Writes the heap file then the column file into `store`.
    pub fn build(ds: &Dataset, store: &mut impl PageStore) -> DiskLayout {
        let heap = HeapFile::build(store, ds);
        let columns = SortedColumnFile::build(store, ds);
        DiskLayout { columns, heap }
    }

    /// The sorted-column file handle.
    pub fn columns(&self) -> &SortedColumnFile {
        &self.columns
    }

    /// The heap file handle.
    pub fn heap(&self) -> HeapFile {
        self.heap
    }

    /// The shared buffer pool.
    pub fn pool_mut(&mut self) -> &mut BufferPool<S> {
        &mut self.pool
    }

    /// Cardinality `c`.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Dimensionality `d`.
    pub fn dims(&self) -> usize {
        self.heap.dims()
    }

    /// Disk-based AD k-n-match (Section 4.1).
    ///
    /// # Errors
    ///
    /// Propagates core parameter validation.
    pub fn k_n_match(
        &mut self,
        query: &[f64],
        k: usize,
        n: usize,
    ) -> Result<DiskQueryOutcome<KnMatchResult>> {
        self.pool.reset_stats();
        let mut src = DiskColumns::new(&self.columns, &mut self.pool);
        let (result, ad) = k_n_match_ad(&mut src, query, k, n)?;
        Ok(DiskQueryOutcome {
            result,
            io: self.pool.stats(),
            ad,
        })
    }

    /// Disk-based AD frequent k-n-match (Section 4.1).
    ///
    /// # Errors
    ///
    /// Propagates core parameter validation.
    pub fn frequent_k_n_match(
        &mut self,
        query: &[f64],
        k: usize,
        n0: usize,
        n1: usize,
    ) -> Result<DiskQueryOutcome<FrequentResult>> {
        self.pool.reset_stats();
        let mut src = DiskColumns::new(&self.columns, &mut self.pool);
        let (result, ad) = frequent_k_n_match_ad(&mut src, query, k, n0, n1)?;
        Ok(DiskQueryOutcome {
            result,
            io: self.pool.stats(),
            ad,
        })
    }

    /// Disk-based AD eps-n-match: all points matching the query in at
    /// least `n` dimensions within `eps`.
    ///
    /// # Errors
    ///
    /// Propagates core parameter validation.
    pub fn eps_n_match(
        &mut self,
        query: &[f64],
        eps: f64,
        n: usize,
    ) -> Result<DiskQueryOutcome<KnMatchResult>> {
        self.pool.reset_stats();
        let mut src = DiskColumns::new(&self.columns, &mut self.pool);
        let (result, ad) = eps_n_match_ad(&mut src, query, eps, n)?;
        Ok(DiskQueryOutcome {
            result,
            io: self.pool.stats(),
            ad,
        })
    }

    /// Sequential-scan k-n-match baseline: streams the heap file, computing
    /// every point's n-match difference (the paper's "scan" competitor).
    ///
    /// # Errors
    ///
    /// Propagates core parameter validation.
    pub fn scan_k_n_match(
        &mut self,
        query: &[f64],
        k: usize,
        n: usize,
    ) -> Result<DiskQueryOutcome<KnMatchResult>> {
        let out = self.scan_frequent_k_n_match(query, k, n, n)?;
        Ok(DiskQueryOutcome {
            result: out.result.per_n.into_iter().next().expect("single n"),
            io: out.io,
            ad: out.ad,
        })
    }

    /// Sequential-scan frequent k-n-match baseline.
    ///
    /// # Errors
    ///
    /// Propagates core parameter validation.
    pub fn scan_frequent_k_n_match(
        &mut self,
        query: &[f64],
        k: usize,
        n0: usize,
        n1: usize,
    ) -> Result<DiskQueryOutcome<FrequentResult>> {
        knmatch_core::ad::validate_params(query, self.dims(), self.len(), k, n0, n1)?;
        self.pool.reset_stats();
        let mut tops: Vec<knmatch_core::topk::TopK> = (n0..=n1)
            .map(|_| knmatch_core::topk::TopK::new(k))
            .collect();
        let mut buf: Vec<f64> = Vec::with_capacity(self.dims());
        let heap = self.heap;
        heap.for_each(&mut self.pool, |pid, row| {
            knmatch_core::sorted_differences_with_buf(row, query, &mut buf);
            for (i, top) in tops.iter_mut().enumerate() {
                top.offer(pid, buf[n0 + i - 1]);
            }
        });
        let per_n: Vec<KnMatchResult> = tops
            .into_iter()
            .enumerate()
            .map(|(i, t)| t.into_result(n0 + i))
            .collect();
        let mut counts: Vec<u32> = vec![0; self.len()];
        for res in &per_n {
            for e in &res.entries {
                counts[e.pid as usize] += 1;
            }
        }
        let pairs: Vec<(knmatch_core::PointId, u32)> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(pid, &c)| (pid as knmatch_core::PointId, c))
            .collect();
        let entries = knmatch_core::result::rank_frequent(&pairs, k);
        Ok(DiskQueryOutcome {
            result: FrequentResult {
                range: (n0, n1),
                entries,
                per_n,
            },
            io: self.pool.stats(),
            ad: AdStats::default(),
        })
    }

    /// Fetches one point by id (through the pool; counts as I/O).
    pub fn fetch_point(&mut self, pid: knmatch_core::PointId) -> Vec<f64> {
        let mut out = vec![0.0; self.dims()];
        let heap = self.heap;
        heap.point(&mut self.pool, pid, &mut out);
        out
    }

    /// Converts this sequential database into a parallel
    /// [`DiskQueryEngine`] with `workers` workers, carrying over the store
    /// and the pool capacity (the engine's shared cache starts cold).
    pub fn into_engine(self, workers: usize) -> DiskQueryEngine<S>
    where
        S: SharedPageStore,
    {
        let pool_pages = self.pool.capacity();
        DiskQueryEngine::with_workers(self.pool.into_store(), self.columns, pool_pages, workers)
            .expect("capacity was already validated")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_db() -> DiskDatabase<MemStore> {
        DiskDatabase::build_in_memory(&knmatch_core::paper::fig3_dataset(), 16)
    }

    #[test]
    fn disk_ad_matches_paper_running_example() {
        let mut db = fig3_db();
        let out = db.k_n_match(&[3.0, 7.0, 4.0], 2, 2).unwrap();
        assert_eq!(out.result.ids(), vec![2, 1]);
        assert_eq!(out.result.epsilon(), 1.5);
        assert!(out.io.page_accesses() > 0);
        assert!(out.ad.attributes_retrieved > 0);
    }

    #[test]
    fn scan_and_ad_agree() {
        let mut db = fig3_db();
        let q = [3.0, 7.0, 4.0];
        for n in 1..=3 {
            for k in [1, 3, 5] {
                let ad = db.k_n_match(&q, k, n).unwrap();
                let scan = db.scan_k_n_match(&q, k, n).unwrap();
                assert_eq!(ad.result.ids(), scan.result.ids(), "k={k} n={n}");
            }
        }
    }

    #[test]
    fn frequent_disk_matches_in_memory() {
        let ds = knmatch_core::paper::fig3_dataset();
        let mut db = DiskDatabase::build_in_memory(&ds, 16);
        let q = [3.0, 7.0, 4.0];
        let disk = db.frequent_k_n_match(&q, 2, 1, 3).unwrap();
        let mem = knmatch_core::frequent_k_n_match_scan(&ds, &q, 2, 1, 3).unwrap();
        assert_eq!(disk.result.ids(), mem.ids());
        for (a, b) in disk.result.per_n.iter().zip(&mem.per_n) {
            assert_eq!(a.ids(), b.ids());
        }
    }

    #[test]
    fn scan_reads_whole_heap_sequentially() {
        let rows: Vec<Vec<f64>> = (0..5000)
            .map(|i| vec![(i % 97) as f64, (i % 31) as f64])
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut db = DiskDatabase::build_in_memory(&ds, 4);
        let out = db.scan_k_n_match(&[3.0, 4.0], 10, 1).unwrap();
        assert_eq!(out.io.page_accesses() as usize, db.heap().total_pages());
        assert_eq!(out.io.random_reads, 1);
    }

    #[test]
    fn fetch_point_roundtrip() {
        let mut db = fig3_db();
        assert_eq!(db.fetch_point(4), vec![3.5, 1.5, 8.0]);
    }

    #[test]
    fn io_stats_isolated_per_query() {
        let mut db = fig3_db();
        let first = db.k_n_match(&[3.0, 7.0, 4.0], 1, 1).unwrap();
        let second = db.k_n_match(&[3.0, 7.0, 4.0], 1, 1).unwrap();
        // Second run hits the warm pool: fewer or equal accesses.
        assert!(second.io.page_accesses() <= first.io.page_accesses());
    }
}

/// A structural problem found by [`DiskDatabase::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Corruption {
    /// A sorted column has entries out of order.
    UnsortedColumn {
        /// The offending dimension.
        dim: usize,
        /// Rank at which order breaks.
        rank: usize,
    },
    /// A dimension does not list every point exactly once.
    BadPidMultiset {
        /// The offending dimension.
        dim: usize,
    },
    /// A column entry's value disagrees with the heap file's coordinate.
    ValueMismatch {
        /// The offending dimension.
        dim: usize,
        /// The point whose value disagrees.
        pid: knmatch_core::PointId,
    },
}

impl std::fmt::Display for Corruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Corruption::UnsortedColumn { dim, rank } => {
                write!(f, "dimension {dim} is out of order at rank {rank}")
            }
            Corruption::BadPidMultiset { dim } => {
                write!(f, "dimension {dim} does not list every point exactly once")
            }
            Corruption::ValueMismatch { dim, pid } => {
                write!(
                    f,
                    "dimension {dim}: column value for point {pid} disagrees with the heap"
                )
            }
        }
    }
}

impl<S: PageStore> DiskDatabase<S> {
    /// Full structural verification: every sorted column must be in
    /// ascending order, list every point exactly once, and agree value-
    /// for-value with the heap file. Returns all problems found (empty =
    /// healthy). Reads every page once.
    pub fn verify(&mut self) -> Vec<Corruption> {
        let c = self.len();
        let d = self.dims();
        let mut problems = Vec::new();
        // Materialise the heap once for cross-checking.
        let heap = self.heap;
        let reference = heap.to_dataset(&mut self.pool);
        let columns = self.columns.clone();
        for dim in 0..d {
            let mut seen = vec![false; c];
            let mut prev = f64::NEG_INFINITY;
            let mut dup_or_missing = false;
            for rank in 0..c {
                let e = columns.entry(&mut self.pool, dim, rank);
                if e.value < prev {
                    problems.push(Corruption::UnsortedColumn { dim, rank });
                    prev = e.value;
                } else {
                    prev = e.value;
                }
                let idx = e.pid as usize;
                if idx >= c || seen[idx] {
                    dup_or_missing = true;
                } else {
                    seen[idx] = true;
                    if reference.coord(e.pid, dim) != e.value {
                        problems.push(Corruption::ValueMismatch { dim, pid: e.pid });
                    }
                }
            }
            if dup_or_missing || !seen.iter().all(|&s| s) {
                problems.push(Corruption::BadPidMultiset { dim });
            }
        }
        problems
    }
}

#[cfg(test)]
mod verify_tests {
    use super::*;
    use crate::page::{write_column_entry, COLUMN_ENTRIES_PER_PAGE};

    fn sample_db() -> DiskDatabase<MemStore> {
        let rows: Vec<Vec<f64>> = (0..700)
            .map(|i| vec![(i as f64 * 0.37) % 1.0, (i as f64 * 0.73) % 1.0])
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        DiskDatabase::build_in_memory(&ds, 64)
    }

    #[test]
    fn healthy_database_verifies_clean() {
        let mut db = sample_db();
        assert!(db.verify().is_empty());
    }

    #[test]
    fn detects_unsorted_column() {
        let mut db = sample_db();
        // Swap two distinct-valued entries of dimension 0's first column
        // page (adjacent slots can legitimately hold equal values).
        let page_no = db.columns().base_page();
        let mut buf = crate::page::empty_page();
        db.pool_mut().store_mut().read_page(page_no, &mut buf);
        let a = crate::page::read_column_entry(&buf, 10);
        let b = crate::page::read_column_entry(&buf, 200);
        assert_ne!(a.1, b.1, "test needs distinct values");
        write_column_entry(&mut buf, 10, b.0, b.1);
        write_column_entry(&mut buf, 200, a.0, a.1);
        db.pool_mut().store_mut().write_page(page_no, &buf);
        db.pool_mut().invalidate_all();
        let problems = db.verify();
        assert!(
            problems
                .iter()
                .any(|p| matches!(p, Corruption::UnsortedColumn { dim: 0, .. })),
            "{problems:?}"
        );
    }

    #[test]
    fn detects_value_mismatch() {
        let mut db = sample_db();
        // Corrupt one value in dimension 1's column region.
        let page_no = db.columns().base_page() + db.columns().pages_per_dim();
        let mut buf = crate::page::empty_page();
        db.pool_mut().store_mut().read_page(page_no, &mut buf);
        let (pid, v) = crate::page::read_column_entry(&buf, 5);
        write_column_entry(&mut buf, 5, pid, v + 1e-6);
        db.pool_mut().store_mut().write_page(page_no, &buf);
        db.pool_mut().invalidate_all();
        let problems = db.verify();
        assert!(
            problems
                .iter()
                .any(|p| matches!(p, Corruption::ValueMismatch { dim: 1, pid: q } if *q == pid)),
            "{problems:?}"
        );
    }

    #[test]
    fn detects_duplicated_pid() {
        let mut db = sample_db();
        let page_no = db.columns().base_page();
        let mut buf = crate::page::empty_page();
        db.pool_mut().store_mut().read_page(page_no, &mut buf);
        let (_, v) = crate::page::read_column_entry(&buf, 3);
        let (other_pid, _) = crate::page::read_column_entry(&buf, 4);
        write_column_entry(&mut buf, 3, other_pid, v); // pid 4's id now appears twice
        db.pool_mut().store_mut().write_page(page_no, &buf);
        db.pool_mut().invalidate_all();
        let problems = db.verify();
        assert!(
            problems
                .iter()
                .any(|p| matches!(p, Corruption::BadPidMultiset { dim: 0 })),
            "{problems:?}"
        );
        let _ = COLUMN_ENTRIES_PER_PAGE;
    }
}
