//! A heap file of full records, stored row-major in pid order.
//!
//! The sequential-scan baseline streams it; the VA-file's refinement phase
//! fetches individual points from it by pid (the random accesses the paper
//! blames for the VA-file adaptation's poor showing in Figure 10).

use knmatch_core::{Dataset, PointId};

use crate::buffer::BufferPool;
use crate::page::{empty_page, pages_needed, read_row, rows_per_page, write_row};
use crate::store::PageStore;

/// Stream group used by whole-file scans ([`HeapFile::for_each`] and the
/// VA-file approximation scan). Point fetches ([`HeapFile::point`]) carry
/// no stream and classify as random, as the paper observes for the
/// VA-file's refinement phase.
pub const SCAN_GROUP: u32 = u32::MAX - 1;

/// Layout metadata of a heap file inside a page store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapFile {
    dims: usize,
    len: usize,
    rows_per_page: usize,
    base_page: usize,
}

impl HeapFile {
    /// Appends every point of `ds` to `store` in pid order.
    pub fn build<S: PageStore>(store: &mut S, ds: &Dataset) -> Self {
        let dims = ds.dims();
        let rpp = rows_per_page(dims);
        let base_page = store.page_count();
        let mut page = empty_page();
        let mut slot = 0usize;
        for (_, row) in ds.iter() {
            write_row(&mut page, slot, row);
            slot += 1;
            if slot == rpp {
                store.append_page(&page);
                page = empty_page();
                slot = 0;
            }
        }
        if slot > 0 {
            store.append_page(&page);
        }
        HeapFile {
            dims,
            len: ds.len(),
            rows_per_page: rpp,
            base_page,
        }
    }

    /// Reconstructs a handle to an existing heap file from its layout
    /// parameters (the layout is fully determined by them).
    ///
    /// # Panics
    ///
    /// Panics when a `dims`-dimensional row cannot fit one page.
    pub fn open(dims: usize, len: usize, base_page: usize) -> Self {
        HeapFile {
            dims,
            len,
            rows_per_page: rows_per_page(dims),
            base_page,
        }
    }

    /// Dimensionality of the stored rows.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the file holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pages occupied.
    pub fn total_pages(&self) -> usize {
        pages_needed(self.len, self.rows_per_page)
    }

    /// First page inside the store.
    pub fn base_page(&self) -> usize {
        self.base_page
    }

    /// Page number holding `pid`.
    pub fn page_of(&self, pid: PointId) -> usize {
        self.base_page + pid as usize / self.rows_per_page
    }

    /// Reads point `pid` into `out` through `pool`.
    ///
    /// # Panics
    ///
    /// Panics when `pid` is out of range or `out.len() != dims`.
    pub fn point<S: PageStore>(&self, pool: &mut BufferPool<S>, pid: PointId, out: &mut [f64]) {
        assert!((pid as usize) < self.len, "pid {pid} out of range");
        assert_eq!(out.len(), self.dims, "output buffer dimensionality");
        let page = pool.get(self.page_of(pid));
        read_row(page, pid as usize % self.rows_per_page, out);
    }

    /// Streams every `(pid, row)` in pid order (sequential page reads),
    /// invoking `f` per point.
    pub fn for_each<S: PageStore>(
        &self,
        pool: &mut BufferPool<S>,
        mut f: impl FnMut(PointId, &[f64]),
    ) {
        let mut row = vec![0.0f64; self.dims];
        let total_pages = self.total_pages();
        let mut pid = 0usize;
        for p in 0..total_pages {
            let rows_here = self.rows_per_page.min(self.len - pid);
            // Copy the page out so the borrow on the pool ends before `f`
            // (which may want to use other structures).
            let page = *pool.get_in(self.base_page + p, SCAN_GROUP);
            for slot in 0..rows_here {
                read_row(&page, slot, &mut row);
                f(pid as PointId, &row);
                pid += 1;
            }
        }
        debug_assert_eq!(pid, self.len);
    }

    /// Reconstructs the whole dataset (test / debugging aid).
    pub fn to_dataset<S: PageStore>(&self, pool: &mut BufferPool<S>) -> Dataset {
        let mut ds = Dataset::with_capacity(self.dims, self.len).expect("dims >= 1");
        self.for_each(pool, |_, row| {
            ds.push(row).expect("stored rows are valid");
        });
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn sample(n: usize, d: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..d).map(|j| (i * d + j) as f64 * 0.5).collect())
            .collect();
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn roundtrip_small() {
        let ds = sample(7, 3);
        let mut store = MemStore::new();
        let hf = HeapFile::build(&mut store, &ds);
        let mut pool = BufferPool::new(store, 4);
        assert_eq!(hf.to_dataset(&mut pool), ds);
    }

    #[test]
    fn point_fetch_matches() {
        let ds = sample(1000, 5);
        let mut store = MemStore::new();
        let hf = HeapFile::build(&mut store, &ds);
        assert_eq!(hf.total_pages(), pages_needed(1000, rows_per_page(5)));
        let mut pool = BufferPool::new(store, 8);
        let mut out = vec![0.0; 5];
        for pid in [0u32, 101, 499, 999] {
            hf.point(&mut pool, pid, &mut out);
            assert_eq!(out.as_slice(), ds.point(pid));
        }
    }

    #[test]
    fn scan_is_sequential() {
        let ds = sample(1000, 4);
        let mut store = MemStore::new();
        let hf = HeapFile::build(&mut store, &ds);
        let mut pool = BufferPool::new(store, 2);
        let mut count = 0usize;
        hf.for_each(&mut pool, |pid, row| {
            assert_eq!(row, ds.point(pid));
            count += 1;
        });
        assert_eq!(count, 1000);
        let stats = pool.stats();
        assert_eq!(stats.page_accesses() as usize, hf.total_pages());
        // All but the first page read continue the run.
        assert_eq!(stats.random_reads, 1);
        assert_eq!(stats.sequential_reads as usize, hf.total_pages() - 1);
    }

    #[test]
    fn partial_last_page() {
        let ds = sample(rows_per_page(2) + 1, 2);
        let mut store = MemStore::new();
        let hf = HeapFile::build(&mut store, &ds);
        assert_eq!(hf.total_pages(), 2);
        let mut pool = BufferPool::new(store, 2);
        let mut out = vec![0.0; 2];
        hf.point(&mut pool, (rows_per_page(2)) as u32, &mut out);
        assert_eq!(out.as_slice(), ds.point(rows_per_page(2) as u32));
    }

    #[test]
    fn page_of_maps_rows() {
        let ds = sample(100, 512); // 1 row per page
        let mut store = MemStore::new();
        let hf = HeapFile::build(&mut store, &ds);
        assert_eq!(hf.page_of(0), hf.base_page());
        assert_eq!(hf.page_of(99), hf.base_page() + 99);
    }
}
