//! Single-file persistence for a [`DiskDatabase`]: a header page followed
//! by the heap file and the sorted-column file.
//!
//! Layout (all little-endian):
//!
//! ```text
//! page 0            header: magic, version, dims, cardinality, header CRC
//! pages 1..=H       heap file (H = ceil(c / rows_per_page))
//! pages H+1..       sorted-column file (d × ceil(c / entries_per_page))
//! (checksum trailer: per-page CRC32 table + footer — see `store.rs`)
//! ```
//!
//! The page layout is fully determined by `(dims, cardinality)`, so the
//! header carries only those; the column fences are re-read on open. The
//! header additionally carries a CRC32 of its own first 24 bytes so
//! header corruption is reported as such even on legacy files without a
//! checksum trailer; [`DiskDatabase::create_file`] seals the finished
//! file so every page is verified at open time and on every read
//! (DESIGN.md §10).

use std::io;
use std::path::Path;

use knmatch_core::Dataset;

use crate::column_file::SortedColumnFile;
use crate::db::{DiskDatabase, DiskLayout};
use crate::heap_file::HeapFile;
use crate::page::{empty_page, rows_per_page, PageBuf};
use crate::store::{FileStore, PageStore};

/// Magic bytes identifying a knmatch database file.
pub const MAGIC: &[u8; 8] = b"KNMATCH\x01";

/// On-disk format version. Version 2 added the header self-CRC (bytes
/// 24..28) and the checksum trailer written by [`FileStore::seal`].
pub const FORMAT_VERSION: u32 = 2;

fn write_header(buf: &mut PageBuf, dims: usize, cardinality: usize) {
    buf[..8].copy_from_slice(MAGIC);
    buf[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf[12..16].copy_from_slice(&(dims as u32).to_le_bytes());
    buf[16..24].copy_from_slice(&(cardinality as u64).to_le_bytes());
    let crc = crate::checksum::crc32(&buf[..24]);
    buf[24..28].copy_from_slice(&crc.to_le_bytes());
}

fn read_header(buf: &PageBuf) -> io::Result<(usize, usize)> {
    if &buf[..8] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a knmatch database file",
        ));
    }
    // Version before CRC: a future version may lay the header out (and
    // checksum it) differently, so only a version we understand gets its
    // CRC validated.
    let version = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported format version {version}"),
        ));
    }
    let stored = u32::from_le_bytes(buf[24..28].try_into().expect("4 bytes"));
    let computed = crate::checksum::crc32(&buf[..24]);
    if stored != computed {
        return Err(crate::error::StorageError::BadHeader {
            reason: format!(
                "header CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
        .into());
    }
    let dims = u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")) as usize;
    let cardinality = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes")) as usize;
    if dims == 0 || dims * 8 > crate::page::PAGE_SIZE {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "corrupt header: bad dims",
        ));
    }
    Ok((dims, cardinality))
}

impl DiskDatabase<FileStore> {
    /// Materialises `ds` into a new database file at `path` (truncating any
    /// existing file) and returns the ready database.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create_file<P: AsRef<Path>>(
        path: P,
        ds: &Dataset,
        pool_pages: usize,
    ) -> io::Result<Self> {
        validate_pool_pages(pool_pages)?;
        let mut store = FileStore::create(path)?;
        let mut header = empty_page();
        write_header(&mut header, ds.dims(), ds.len());
        store.append_page(&header);
        let layout = DiskDatabase::<FileStore>::build(ds, &mut store);
        // Seal once the layout is final: appends the checksum trailer so
        // the next open verifies every page.
        store.seal()?;
        layout.attach(store, pool_pages)
    }

    /// Opens an existing database file created by
    /// [`DiskDatabase::create_file`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects files with a bad magic,
    /// version, or truncated page ranges as `InvalidData`; rejects
    /// `pool_pages == 0` as `InvalidInput`.
    pub fn open_file<P: AsRef<Path>>(path: P, pool_pages: usize) -> io::Result<Self> {
        validate_pool_pages(pool_pages)?;
        let mut store = FileStore::open(path)?;
        if store.page_count() == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty file"));
        }
        let mut header = empty_page();
        store
            .try_read_page(0, &mut header)
            .map_err(io::Error::from)?;
        let (dims, cardinality) = read_header(&header)?;

        let heap = HeapFile::open(dims, cardinality, 1);
        let columns_base = 1 + cardinality.div_ceil(rows_per_page(dims));
        let expected_pages =
            columns_base + dims * cardinality.div_ceil(crate::page::COLUMN_ENTRIES_PER_PAGE);
        if store.page_count() < expected_pages {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "truncated database: {} pages, expected {expected_pages}",
                    store.page_count()
                ),
            ));
        }
        let columns = SortedColumnFile::try_open(&mut store, dims, cardinality, columns_base)
            .map_err(io::Error::from)?;
        DiskLayout { columns, heap }.attach(store, pool_pages)
    }
}

/// Fails fast on a zero-frame pool request, before any file is created,
/// truncated, or parsed.
fn validate_pool_pages(pool_pages: usize) -> io::Result<()> {
    if pool_pages == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "buffer pool needs at least one frame (pool_pages == 0)",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use knmatch_data::uniform;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("knmatch-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn create_then_open_roundtrip() {
        let ds = uniform(1500, 6, 42);
        let path = tmp("roundtrip.knm");
        let q = ds.point(17).to_vec();

        let mut created = DiskDatabase::create_file(&path, &ds, 64).unwrap();
        let fresh = created.frequent_k_n_match(&q, 10, 2, 5).unwrap();

        let mut reopened = DiskDatabase::open_file(&path, 64).unwrap();
        assert_eq!(reopened.dims(), 6);
        assert_eq!(reopened.len(), 1500);
        let replayed = reopened.frequent_k_n_match(&q, 10, 2, 5).unwrap();
        assert_eq!(fresh.result.ids(), replayed.result.ids());
        assert_eq!(
            fresh.ad.attributes_retrieved,
            replayed.ad.attributes_retrieved
        );

        // The scan baseline works on the reopened file too.
        let scan = reopened.scan_frequent_k_n_match(&q, 10, 2, 5).unwrap();
        assert_eq!(scan.result.ids(), replayed.result.ids());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        let path = tmp("garbage.knm");
        std::fs::write(&path, vec![0u8; crate::page::PAGE_SIZE]).unwrap();
        assert!(
            DiskDatabase::open_file(&path, 8).is_err(),
            "bad magic must fail"
        );

        let ds = uniform(500, 4, 1);
        DiskDatabase::create_file(&path, &ds, 8).unwrap();
        // Truncate to the header + one page.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..2 * crate::page::PAGE_SIZE]).unwrap();
        let err = DiskDatabase::open_file(&path, 8).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_zero_pool_pages_without_touching_the_file() {
        let ds = uniform(100, 3, 7);
        let path = tmp("zero-pool.knm");
        DiskDatabase::create_file(&path, &ds, 8).unwrap();
        let before = std::fs::read(&path).unwrap();

        let err = DiskDatabase::open_file(&path, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // create_file with a bad pool must not truncate an existing file.
        let err = DiskDatabase::create_file(&path, &ds, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert_eq!(std::fs::read(&path).unwrap(), before);
        std::fs::remove_file(&path).unwrap();
    }

    /// Data pages of a (100-point, 3-dim) database: header + heap +
    /// columns, excluding the checksum trailer.
    fn data_pages_100x3() -> usize {
        1 + 100usize.div_ceil(rows_per_page(3))
            + 3 * 100usize.div_ceil(crate::page::COLUMN_ENTRIES_PER_PAGE)
    }

    #[test]
    fn rejects_wrong_version() {
        let path = tmp("version.knm");
        let ds = uniform(100, 3, 2);
        DiskDatabase::create_file(&path, &ds, 8).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Strip the checksum trailer (legacy layout) so the header itself
        // is what fails — with the trailer present, page-0 corruption is
        // caught by the checksum scrub before the header is ever parsed.
        let mut legacy = bytes[..data_pages_100x3() * crate::page::PAGE_SIZE].to_vec();
        legacy[8] = 99; // bump the version field
        std::fs::write(&path, &legacy).unwrap();
        let err = DiskDatabase::open_file(&path, 8).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_corruption_is_detected() {
        let path = tmp("header-crc.knm");
        let ds = uniform(100, 3, 2);
        DiskDatabase::create_file(&path, &ds, 8).unwrap();
        let bytes = std::fs::read(&path).unwrap();

        // Sealed file, corrupt cardinality field: the page-0 checksum
        // catches it at open time.
        let mut sealed = bytes.clone();
        sealed[16] ^= 0xFF;
        std::fs::write(&path, &sealed).unwrap();
        let err = DiskDatabase::open_file(&path, 8).unwrap_err();
        assert!(
            err.to_string().contains("checksum mismatch on page 0"),
            "{err}"
        );

        // Same corruption on a legacy (trailer-stripped) file: the header
        // self-CRC still reports it.
        let mut legacy = bytes[..data_pages_100x3() * crate::page::PAGE_SIZE].to_vec();
        legacy[16] ^= 0xFF;
        std::fs::write(&path, &legacy).unwrap();
        let err = DiskDatabase::open_file(&path, 8).unwrap_err();
        assert!(err.to_string().contains("header CRC mismatch"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_data_page_fails_open_of_sealed_file() {
        let path = tmp("corrupt-data.knm");
        let ds = uniform(100, 3, 2);
        DiskDatabase::create_file(&path, &ds, 8).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte in the middle of a column page.
        bytes[3 * crate::page::PAGE_SIZE + 123] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();
        let err = DiskDatabase::open_file(&path, 8).unwrap_err();
        assert!(
            err.to_string().contains("checksum mismatch on page 3"),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopened_matches_in_memory_oracle() {
        let ds = uniform(800, 5, 9);
        let path = tmp("oracle.knm");
        DiskDatabase::create_file(&path, &ds, 32).unwrap();
        let mut db = DiskDatabase::open_file(&path, 32).unwrap();
        let q = ds.point(3).to_vec();
        for n in [1usize, 3, 5] {
            let disk = db.k_n_match(&q, 7, n).unwrap();
            let mem = knmatch_core::k_n_match_scan(&ds, &q, 7, n).unwrap();
            assert_eq!(disk.result.ids(), mem.ids(), "n={n}");
        }
        std::fs::remove_file(&path).unwrap();
    }
}
