//! # knmatch-storage
//!
//! The disk substrate of the k-n-match reproduction (Section 4 of the
//! paper): 4 KiB pages, page stores (in-memory and file-backed), an LRU
//! buffer pool that classifies misses as sequential or random, a
//! sorted-column file per dimension, a heap file of full records, and the
//! two disk algorithms — the **disk-based AD algorithm** (the generic core
//! engine running over [`DiskColumns`]) and the **sequential-scan
//! baseline**.
//!
//! Cost currency: the paper measures disk algorithms in page accesses and
//! response time. [`IoStats`] counts sequential vs random page reads
//! (forward AD walks and heap scans stream; IGrid-style fragment hops and
//! VA-file refinements seek), and [`CostModel`] turns the mix into a
//! modelled response time for the figure reproductions, while the Criterion
//! benches also record real wall-clock.
//!
//! ```
//! use knmatch_core::Dataset;
//! use knmatch_storage::DiskDatabase;
//!
//! let ds = knmatch_core::paper::fig3_dataset();
//! let mut db = DiskDatabase::build_in_memory(&ds, 64);
//! let out = db.k_n_match(&[3.0, 7.0, 4.0], 2, 2).unwrap();
//! assert_eq!(out.result.epsilon(), 1.5);
//! println!("{} page accesses", out.io.page_accesses());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod buffer;
pub mod checksum;
pub mod column_file;
pub mod db;
pub mod disk_engine;
pub mod error;
pub mod fault;
pub mod heap_file;
pub mod page;
pub mod persist;
pub mod planner;
pub mod shared_pool;
pub mod store;

pub use buffer::{BufferPool, CostModel, IoStats};
pub use checksum::crc32;
pub use column_file::{DiskColumns, SharedDiskColumns, SortedColumnFile};
pub use db::{DiskDatabase, DiskLayout, DiskQueryOutcome};
pub use disk_engine::{DiskBatchOutcome, DiskQueryEngine};
pub use error::{StorageError, StorageResult};
pub use fault::{FaultConfig, FaultStore};
pub use heap_file::{HeapFile, SCAN_GROUP};
pub use page::{PageBuf, COLUMN_ENTRIES_PER_PAGE, PAGE_SIZE};
pub use persist::{FORMAT_VERSION, MAGIC};
pub use planner::{
    plan_in_memory, BackendChoice, MemCostModel, MemPlanChoice, MemPlanInputs, Plan, PlanChoice,
    PLANNER_SAMPLE,
};
pub use shared_pool::{ReadSession, RetryPolicy, SharedBufferPool, DEFAULT_SHARDS};
pub use store::{FileStore, MemStore, PageStore, SharedPageStore, VerifyMode, TRAILER_MAGIC};
