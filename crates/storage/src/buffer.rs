//! An LRU buffer pool with sequential/random miss accounting.
//!
//! All query-time page reads go through [`BufferPool::get`]. A miss fetches
//! from the underlying [`PageStore`] and is classified *sequential* when it
//! extends one of the caller's scan streams by one page — the pattern
//! forward (or, with drive track caching, backward) scans produce, which
//! disks serve at streaming bandwidth — and *random* otherwise (a seek).
//!
//! Streams are scoped by a caller-supplied *group*, mirroring how real
//! systems keep readahead state per open file / descriptor: the AD
//! algorithm legitimately drives two cursors per dimension file (group =
//! dimension; the paper credits its forward walks with sequential
//! behaviour, Section 4.1), a heap scan is one stream, while IGrid's
//! fragmented block chains (Section 5.2.3) hop pages inside their group
//! and stay random.

use std::collections::HashMap;

use crate::page::{empty_page, PageBuf};
use crate::store::PageStore;

/// Page-read counters accumulated by a [`BufferPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Buffer-pool hits (no store read).
    pub hits: u64,
    /// Misses fetched from the store at `last_missed + 1` (streamed).
    pub sequential_reads: u64,
    /// All other misses (each costs a seek).
    pub random_reads: u64,
    /// Extra store-read attempts spent recovering transient failures
    /// (see [`crate::shared_pool::RetryPolicy`]); zero on a healthy
    /// store. Retries are not page accesses: a read that succeeds on
    /// try two still counts once in the miss counters.
    pub retries: u64,
}

impl IoStats {
    /// Total store reads (page accesses, the paper's Figure 11/12 y-axis).
    pub fn page_accesses(&self) -> u64 {
        self.sequential_reads + self.random_reads
    }

    /// Models a response time in milliseconds from the read mix.
    pub fn response_time_ms(&self, model: CostModel) -> f64 {
        self.sequential_reads as f64 * model.sequential_ms
            + self.random_reads as f64 * model.random_ms
    }

    /// Adds another stats block (e.g. from a second pool used by the same
    /// query).
    pub fn merge(&mut self, other: IoStats) {
        self.hits += other.hits;
        self.sequential_reads += other.sequential_reads;
        self.random_reads += other.random_reads;
        self.retries += other.retries;
    }
}

/// Per-page-read costs for the modelled response time.
///
/// Defaults approximate the paper's 2006-era desktop disk: ~0.1 ms to
/// stream a 4 KiB page, ~1 ms amortised for a seek-bearing read. Absolute
/// wall-clock is hardware-bound; the *ratios* between methods are what the
/// reproduction compares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Milliseconds per sequential page read.
    pub sequential_ms: f64,
    /// Milliseconds per random page read.
    pub random_ms: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            sequential_ms: 0.1,
            random_ms: 1.0,
        }
    }
}

/// Doubly-linked-list node indices for the LRU chain.
const NIL: usize = usize::MAX;

/// Streams remembered per group: one group is one "open file", and the AD
/// algorithm runs an up and a down cursor against each dimension file.
const TAILS_PER_GROUP: usize = 2;

#[derive(Debug)]
struct Frame {
    page_no: usize,
    buf: Box<PageBuf>,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU cache of pages over a [`PageStore`].
#[derive(Debug)]
pub struct BufferPool<S: PageStore> {
    store: S,
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<usize, usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    stats: IoStats,
    /// Per-group last-missed pages (front = most recent within the group).
    streams: HashMap<u32, Vec<usize>>,
}

impl<S: PageStore> BufferPool<S> {
    /// Wraps `store` with an LRU cache of `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn new(store: S, capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool {
            store,
            capacity,
            frames: Vec::with_capacity(capacity),
            map: HashMap::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            stats: IoStats::default(),
            streams: HashMap::new(),
        }
    }

    /// Returns page `no` as a point lookup (group [`u32::MAX`]): a miss is
    /// always a seek. Scans should use [`BufferPool::get_in`].
    pub fn get(&mut self, no: usize) -> &PageBuf {
        self.get_in(no, u32::MAX)
    }

    /// Returns page `no` on behalf of stream group `group`, reading through
    /// on a miss. A miss adjacent (±1) to one of the group's stream tails
    /// is sequential; otherwise it seeks and opens a new stream in the
    /// group.
    pub fn get_in(&mut self, no: usize, group: u32) -> &PageBuf {
        if let Some(&idx) = self.map.get(&no) {
            self.stats.hits += 1;
            self.touch(idx);
            return &self.frames[idx].buf;
        }
        if group == u32::MAX {
            self.stats.random_reads += 1;
        } else {
            let tails = self.streams.entry(group).or_default();
            let adjacent = tails
                .iter()
                .any(|&t| t == no.wrapping_sub(1) || t == no.wrapping_add(1));
            if adjacent {
                self.stats.sequential_reads += 1;
            } else {
                self.stats.random_reads += 1;
            }
            // The matched tail is kept: two cursors launched from adjacent
            // seed pages (AD's up/down pair) must each keep their stream.
            // Truncation ages stale tails out.
            tails.insert(0, no);
            tails.truncate(TAILS_PER_GROUP + 1);
        }

        let idx = if self.frames.len() < self.capacity {
            let idx = self.frames.len();
            self.frames.push(Frame {
                page_no: no,
                buf: Box::new(empty_page()),
                prev: NIL,
                next: NIL,
            });
            self.attach_front(idx);
            idx
        } else {
            let idx = self.tail;
            let old = self.frames[idx].page_no;
            self.map.remove(&old);
            self.frames[idx].page_no = no;
            self.touch(idx);
            idx
        };
        self.map.insert(no, idx);
        let frame = &mut self.frames[idx];
        self.store.read_page(no, &mut frame.buf);
        &self.frames[idx].buf
    }

    /// Accumulated counters.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Zeroes the counters (e.g. between queries) and forgets the scan
    /// position, without dropping cached pages.
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
        self.streams.clear();
    }

    /// Drops every cached page (required after mutating the store directly).
    pub fn invalidate_all(&mut self) {
        self.frames.clear();
        self.map.clear();
        self.head = NIL;
        self.tail = NIL;
        self.streams.clear();
    }

    /// The wrapped store (for building structures; call
    /// [`BufferPool::invalidate_all`] afterwards).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Read access to the wrapped store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Unwraps the pool.
    pub fn into_store(self) -> S {
        self.store
    }

    /// Number of frames currently cached.
    pub fn cached_pages(&self) -> usize {
        self.frames.len()
    }

    /// Configured frame capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.frames[idx].prev, self.frames[idx].next);
        if prev != NIL {
            self.frames[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.frames[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        self.frames[idx].prev = NIL;
        self.frames[idx].next = self.head;
        if self.head != NIL {
            self.frames[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.detach(idx);
        self.attach_front(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;
    use crate::store::{MemStore, PageStore};

    fn store_with(n: usize) -> MemStore {
        let mut s = MemStore::new();
        for i in 0..n {
            let mut p = empty_page();
            p[0] = i as u8;
            s.append_page(&p);
        }
        s
    }

    #[test]
    fn hit_after_miss() {
        let mut pool = BufferPool::new(store_with(4), 2);
        assert_eq!(pool.get(1)[0], 1);
        assert_eq!(pool.get(1)[0], 1);
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.page_accesses(), 1);
    }

    #[test]
    fn sequential_vs_random_classification() {
        let mut pool = BufferPool::new(store_with(10), 4);
        pool.get_in(0, 0); // random (first)
        pool.get_in(1, 0); // sequential
        pool.get_in(2, 0); // sequential
        pool.get_in(7, 0); // random (new stream in the group)
        pool.get_in(8, 0); // sequential
        let s = pool.stats();
        assert_eq!(s.random_reads, 2);
        assert_eq!(s.sequential_reads, 3);
    }

    #[test]
    fn hits_do_not_break_the_scan_run() {
        let mut pool = BufferPool::new(store_with(10), 4);
        pool.get_in(0, 0);
        pool.get_in(1, 0);
        pool.get_in(0, 0); // hit — must not reset the miss position
        pool.get_in(2, 0); // still sequential after page 1
        let s = pool.stats();
        assert_eq!(s.sequential_reads, 2);
        assert_eq!(s.random_reads, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn two_cursors_in_one_group_both_stream() {
        // The AD pattern: an up cursor and a down cursor on one dimension
        // file, interleaved.
        let mut pool = BufferPool::new(store_with(10), 8);
        pool.get_in(5, 0); // random: down cursor start
        pool.get_in(6, 0); // sequential (adjacent to 5): up cursor start
        pool.get_in(4, 0); // sequential: down continues (5 → 4)
        pool.get_in(7, 0); // sequential: up continues (6 → 7)
        pool.get_in(3, 0); // sequential
        pool.get_in(8, 0); // sequential
        let s = pool.stats();
        assert_eq!(s.random_reads, 1);
        assert_eq!(s.sequential_reads, 5);
    }

    #[test]
    fn groups_are_isolated() {
        let mut pool = BufferPool::new(store_with(10), 8);
        pool.get_in(0, 0); // random
        pool.get_in(1, 1); // random: adjacency in ANOTHER group gives no credit
        pool.get_in(2, 1); // sequential within group 1
        let s = pool.stats();
        assert_eq!(s.random_reads, 2);
        assert_eq!(s.sequential_reads, 1);
    }

    #[test]
    fn point_lookups_are_always_random() {
        let mut pool = BufferPool::new(store_with(10), 8);
        pool.get(0);
        pool.get(1); // adjacent, but point lookups carry no stream
        pool.get(2);
        let s = pool.stats();
        assert_eq!(s.random_reads, 3);
        assert_eq!(s.sequential_reads, 0);
    }

    #[test]
    fn strided_reads_stay_random() {
        // The IGrid chain pattern: pages with gaps ≥ 2 never stream.
        let mut pool = BufferPool::new(store_with(10), 8);
        for no in [0usize, 2, 4, 6, 8] {
            pool.get_in(no, 3);
        }
        let s = pool.stats();
        assert_eq!(s.random_reads, 5);
        assert_eq!(s.sequential_reads, 0);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut pool = BufferPool::new(store_with(5), 2);
        pool.get(0);
        pool.get(1);
        pool.get(0); // 0 is now MRU; LRU is 1
        pool.get(2); // evicts 1
        assert_eq!(pool.cached_pages(), 2);
        pool.reset_stats();
        pool.get(0); // hit
        assert_eq!(pool.stats().hits, 1);
        pool.get(1); // miss (was evicted)
        assert_eq!(pool.stats().page_accesses(), 1);
    }

    #[test]
    fn capacity_one_works() {
        let mut pool = BufferPool::new(store_with(3), 1);
        assert_eq!(pool.get(2)[0], 2);
        assert_eq!(pool.get(0)[0], 0);
        assert_eq!(pool.get(2)[0], 2);
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.stats().page_accesses(), 3);
    }

    #[test]
    fn invalidate_after_external_write() {
        let mut pool = BufferPool::new(store_with(1), 2);
        assert_eq!(pool.get(0)[0], 0);
        let mut p = empty_page();
        p[0] = 99;
        pool.store_mut().write_page(0, &p);
        pool.invalidate_all();
        assert_eq!(pool.get(0)[0], 99);
    }

    #[test]
    fn response_time_model() {
        let s = IoStats {
            hits: 5,
            sequential_reads: 100,
            random_reads: 10,
            retries: 2,
        };
        let t = s.response_time_ms(CostModel::default());
        assert!((t - (100.0 * 0.1 + 10.0 * 1.0)).abs() < 1e-9);
        let mut a = IoStats::default();
        a.merge(s);
        assert_eq!(a, s);
    }

    #[test]
    fn page_buffer_is_full_size() {
        let mut pool = BufferPool::new(store_with(1), 1);
        assert_eq!(pool.get(0).len(), PAGE_SIZE);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_panics() {
        let _ = BufferPool::new(MemStore::new(), 0);
    }
}
