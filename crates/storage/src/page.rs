//! Fixed-size pages and the on-page record formats.
//!
//! The experimental setup of the paper uses 4096-byte data pages; every
//! disk-resident structure in this crate (sorted-column files, heap files,
//! and the VA-file built on top in `knmatch-vafile`) serialises into such
//! pages, and all cost accounting is in page reads.

/// Size of one disk page in bytes (the paper's Section 5.2.2 setting).
pub const PAGE_SIZE: usize = 4096;

/// One page worth of bytes.
pub type PageBuf = [u8; PAGE_SIZE];

/// A zeroed page buffer.
pub fn empty_page() -> PageBuf {
    [0u8; PAGE_SIZE]
}

/// On-disk size of one sorted-column entry: `u32` point id + `f64` value.
pub const COLUMN_ENTRY_BYTES: usize = 12;

/// Sorted-column entries stored per page.
pub const COLUMN_ENTRIES_PER_PAGE: usize = PAGE_SIZE / COLUMN_ENTRY_BYTES;

/// Writes a sorted-column entry at `slot` of `page`.
///
/// # Panics
///
/// Panics when `slot >= COLUMN_ENTRIES_PER_PAGE`.
pub fn write_column_entry(page: &mut PageBuf, slot: usize, pid: u32, value: f64) {
    assert!(slot < COLUMN_ENTRIES_PER_PAGE, "slot {slot} out of page");
    let off = slot * COLUMN_ENTRY_BYTES;
    page[off..off + 4].copy_from_slice(&pid.to_le_bytes());
    page[off + 4..off + 12].copy_from_slice(&value.to_le_bytes());
}

/// Reads the sorted-column entry at `slot` of `page`.
///
/// # Panics
///
/// Panics when `slot >= COLUMN_ENTRIES_PER_PAGE`.
pub fn read_column_entry(page: &PageBuf, slot: usize) -> (u32, f64) {
    assert!(slot < COLUMN_ENTRIES_PER_PAGE, "slot {slot} out of page");
    let off = slot * COLUMN_ENTRY_BYTES;
    let pid = u32::from_le_bytes(page[off..off + 4].try_into().expect("4 bytes"));
    let value = f64::from_le_bytes(page[off + 4..off + 12].try_into().expect("8 bytes"));
    (pid, value)
}

/// Number of `d`-dimensional rows (of `f64` coordinates) that fit one page.
///
/// # Panics
///
/// Panics when a single row exceeds the page size.
pub fn rows_per_page(dims: usize) -> usize {
    let row_bytes = dims * 8;
    assert!(
        row_bytes > 0 && row_bytes <= PAGE_SIZE,
        "a {dims}-dimensional row must fit one {PAGE_SIZE}-byte page"
    );
    PAGE_SIZE / row_bytes
}

/// Writes row `slot` (of `dims`-dimensional coordinates) into `page`.
///
/// # Panics
///
/// Panics when the slot is out of page or `coords.len() != dims` implied by
/// the slot arithmetic.
pub fn write_row(page: &mut PageBuf, slot: usize, coords: &[f64]) {
    let dims = coords.len();
    assert!(slot < rows_per_page(dims), "row slot {slot} out of page");
    let mut off = slot * dims * 8;
    for v in coords {
        page[off..off + 8].copy_from_slice(&v.to_le_bytes());
        off += 8;
    }
}

/// Reads row `slot` into `out` (whose length fixes the dimensionality).
///
/// # Panics
///
/// Panics when the slot is out of page.
pub fn read_row(page: &PageBuf, slot: usize, out: &mut [f64]) {
    let dims = out.len();
    assert!(slot < rows_per_page(dims), "row slot {slot} out of page");
    let mut off = slot * dims * 8;
    for v in out.iter_mut() {
        *v = f64::from_le_bytes(page[off..off + 8].try_into().expect("8 bytes"));
        off += 8;
    }
}

/// Pages needed to hold `items` records at `per_page` records per page.
pub fn pages_needed(items: usize, per_page: usize) -> usize {
    items.div_ceil(per_page)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_entry_roundtrip() {
        let mut p = empty_page();
        write_column_entry(&mut p, 0, 7, 0.125);
        write_column_entry(&mut p, COLUMN_ENTRIES_PER_PAGE - 1, u32::MAX, -1.5);
        assert_eq!(read_column_entry(&p, 0), (7, 0.125));
        assert_eq!(
            read_column_entry(&p, COLUMN_ENTRIES_PER_PAGE - 1),
            (u32::MAX, -1.5)
        );
    }

    #[test]
    fn entries_per_page_matches_entry_size() {
        assert_eq!(COLUMN_ENTRIES_PER_PAGE, 341);
        assert!(COLUMN_ENTRIES_PER_PAGE * COLUMN_ENTRY_BYTES <= std::hint::black_box(PAGE_SIZE));
    }

    #[test]
    fn row_roundtrip() {
        let mut p = empty_page();
        let row = [0.1, -2.5, 3.75];
        write_row(&mut p, 5, &row);
        let mut out = [0.0; 3];
        read_row(&p, 5, &mut out);
        assert_eq!(out, row);
    }

    #[test]
    fn rows_per_page_extremes() {
        assert_eq!(rows_per_page(1), 512);
        assert_eq!(rows_per_page(16), 32);
        assert_eq!(rows_per_page(512), 1);
    }

    #[test]
    #[should_panic(expected = "must fit")]
    fn oversized_row_panics() {
        let _ = rows_per_page(513);
    }

    #[test]
    fn pages_needed_rounds_up() {
        assert_eq!(pages_needed(0, 10), 0);
        assert_eq!(pages_needed(1, 10), 1);
        assert_eq!(pages_needed(10, 10), 1);
        assert_eq!(pages_needed(11, 10), 2);
    }

    #[test]
    #[should_panic(expected = "out of page")]
    fn column_slot_bounds_checked() {
        let mut p = empty_page();
        write_column_entry(&mut p, COLUMN_ENTRIES_PER_PAGE, 0, 0.0);
    }
}
