//! Deterministic fault injection for the storage stack.
//!
//! [`FaultStore`] wraps any [`SharedPageStore`] and injects failures on
//! the read path so the retry, checksum, and panic-isolation machinery
//! can be tested without a flaky disk:
//!
//! * **transient I/O errors** (`ErrorKind::Interrupted`) at a seeded
//!   rate — the kind [`crate::SharedBufferPool`]'s retry loop absorbs;
//! * **torn pages / bit flips**, surfaced as
//!   [`StorageError::CorruptPage`] with real CRC32s of the clean and
//!   corrupted bytes, modelling verification catching transport
//!   corruption;
//! * **pages that always fail**, for deterministic per-slot `Err`
//!   placement in batch tests (the retry budget is exhausted);
//! * **a one-shot panic on a chosen page**, which unwinds through the
//!   shard lock and exercises poisoned-lock recovery.
//!
//! Randomly injected faults *heal on retry*: a page that just faulted is
//! guaranteed a clean read on its next access. Page reads for a given
//! page number are serialised by the pool's shard lock, so with a retry
//! budget ≥ 2 every randomly injected fault recovers and answers are
//! bit-identical to the fault-free run — the invariant the
//! fault-injection matrix test asserts at every worker count.
//!
//! Fault decisions come from a splitmix64 stream seeded by
//! [`FaultConfig::seed`] and a global read counter, so a single-threaded
//! run is exactly reproducible; under concurrency the *set* of injected
//! faults depends on interleaving but the healing rule keeps outcomes
//! deterministic.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::checksum::crc32;
use crate::error::{StorageError, StorageResult};
use crate::page::PageBuf;
use crate::store::SharedPageStore;

/// What a [`FaultStore`] injects, and when.
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// Seed of the fault-decision stream.
    pub seed: u64,
    /// Probability (0.0..=1.0) that a read fails with a transient
    /// `Interrupted` I/O error. The page heals: its next read is clean.
    pub transient_rate: f64,
    /// Probability (0.0..=1.0) that a read returns corrupted bytes,
    /// surfaced as [`StorageError::CorruptPage`]. Heals on retry.
    pub corrupt_rate: f64,
    /// Pages that fail *every* read with a transient error — retries
    /// are exhausted and the caller sees
    /// [`StorageError::RetriesExhausted`].
    pub fail_pages: HashSet<usize>,
    /// Page whose next read panics (once), for poisoned-lock tests.
    pub panic_on_page: Option<usize>,
}

impl FaultConfig {
    /// A config injecting only seeded transient errors at `rate`.
    pub fn transient(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            transient_rate: rate,
            ..FaultConfig::default()
        }
    }
}

/// A [`SharedPageStore`] wrapper that injects seeded faults; see the
/// module docs for the failure menu.
#[derive(Debug)]
pub struct FaultStore<S> {
    inner: S,
    config: FaultConfig,
    /// Global read sequence number driving the fault-decision stream.
    seq: AtomicU64,
    /// Faults injected so far (all kinds).
    injected: AtomicU64,
    /// Whether the one-shot panic has fired.
    panicked: AtomicBool,
    /// Pages owed a clean read because their last read faulted.
    healing: Mutex<HashSet<usize>>,
}

/// splitmix64: the standard 64-bit finalising mix.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<S: SharedPageStore> FaultStore<S> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: S, config: FaultConfig) -> Self {
        FaultStore {
            inner,
            config,
            seq: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
            healing: Mutex::new(HashSet::new()),
        }
    }

    /// Total faults injected so far (transient + corrupt + always-fail).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Reads that consulted the fault-decision stream (healing reads —
    /// the clean retry a faulted page is owed — are not counted).
    pub fn reads(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Uniform draw in `[0, 1)` from the seeded decision stream.
    fn roll(&self) -> f64 {
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        // 53 random mantissa bits, the standard u64→f64 uniform.
        (mix64(self.config.seed ^ mix64(n)) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn note_injected(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
    }
}

impl<S: SharedPageStore> SharedPageStore for FaultStore<S> {
    fn page_count(&self) -> usize {
        self.inner.page_count()
    }

    fn read_page_at(&self, no: usize, buf: &mut PageBuf) -> StorageResult<()> {
        if self.config.panic_on_page == Some(no) && !self.panicked.swap(true, Ordering::SeqCst) {
            panic!("injected fault: panic while reading page {no}");
        }
        if self.config.fail_pages.contains(&no) {
            self.seq.fetch_add(1, Ordering::Relaxed);
            self.note_injected();
            return Err(StorageError::Io {
                page: no,
                kind: std::io::ErrorKind::Interrupted,
                message: "injected fault: page always fails".into(),
            });
        }
        // A page whose previous read faulted is owed a clean read, so a
        // retry budget of two attempts always recovers random faults.
        if self.healing.lock().expect("healing set").remove(&no) {
            return self.inner.read_page_at(no, buf);
        }
        let roll = self.roll();
        if roll < self.config.transient_rate {
            self.healing.lock().expect("healing set").insert(no);
            self.note_injected();
            return Err(StorageError::Io {
                page: no,
                kind: std::io::ErrorKind::Interrupted,
                message: "injected fault: transient read error".into(),
            });
        }
        if roll < self.config.transient_rate + self.config.corrupt_rate {
            self.healing.lock().expect("healing set").insert(no);
            self.note_injected();
            // Model a torn/bit-flipped transfer that verification caught:
            // read the clean bytes, flip some, report real checksums.
            self.inner.read_page_at(no, buf)?;
            let expected = crc32(buf);
            buf[0] ^= 0xFF;
            buf[buf.len() / 2] ^= 0x10;
            let actual = crc32(buf);
            return Err(StorageError::CorruptPage {
                page: no,
                expected,
                actual,
            });
        }
        self.inner.read_page_at(no, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::empty_page;
    use crate::store::{MemStore, PageStore};

    fn store_with(n: usize) -> MemStore {
        let mut s = MemStore::new();
        for i in 0..n {
            let mut p = empty_page();
            p[0] = i as u8;
            s.append_page(&p);
        }
        s
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let fs = FaultStore::new(store_with(4), FaultConfig::default());
        let mut buf = empty_page();
        for no in 0..4 {
            fs.read_page_at(no, &mut buf).unwrap();
            assert_eq!(buf[0], no as u8);
        }
        assert_eq!(fs.injected(), 0);
        assert_eq!(fs.reads(), 4);
        assert_eq!(fs.page_count(), 4);
    }

    #[test]
    fn transient_faults_heal_on_retry() {
        let fs = FaultStore::new(store_with(2), FaultConfig::transient(42, 1.0));
        let mut buf = empty_page();
        let err = fs.read_page_at(1, &mut buf).unwrap_err();
        assert!(err.is_transient(), "{err}");
        fs.read_page_at(1, &mut buf).unwrap();
        assert_eq!(buf[0], 1);
        assert_eq!(fs.injected(), 1);
    }

    #[test]
    fn corrupt_faults_report_real_checksums_and_heal() {
        let cfg = FaultConfig {
            seed: 7,
            corrupt_rate: 1.0,
            ..FaultConfig::default()
        };
        let fs = FaultStore::new(store_with(2), cfg);
        let mut buf = empty_page();
        match fs.read_page_at(0, &mut buf).unwrap_err() {
            StorageError::CorruptPage {
                page,
                expected,
                actual,
            } => {
                assert_eq!(page, 0);
                assert_ne!(expected, actual);
                assert_eq!(actual, crc32(&buf), "reported CRC matches the torn buffer");
            }
            other => panic!("expected CorruptPage, got {other:?}"),
        }
        fs.read_page_at(0, &mut buf).unwrap();
        assert_eq!(buf[0], 0);
    }

    #[test]
    fn fail_pages_never_heal() {
        let cfg = FaultConfig {
            fail_pages: [1usize].into_iter().collect(),
            ..FaultConfig::default()
        };
        let fs = FaultStore::new(store_with(3), cfg);
        let mut buf = empty_page();
        for _ in 0..5 {
            assert!(fs.read_page_at(1, &mut buf).is_err());
        }
        fs.read_page_at(0, &mut buf).unwrap();
        assert_eq!(fs.injected(), 5);
    }

    #[test]
    fn panic_on_page_fires_once() {
        let cfg = FaultConfig {
            panic_on_page: Some(2),
            ..FaultConfig::default()
        };
        let fs = FaultStore::new(store_with(3), cfg);
        let mut buf = empty_page();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fs.read_page_at(2, &mut buf).unwrap();
        }));
        assert!(caught.is_err());
        // Second read succeeds: the panic is one-shot.
        fs.read_page_at(2, &mut buf).unwrap();
        assert_eq!(buf[0], 2);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let trace = |seed: u64| -> Vec<bool> {
            let fs = FaultStore::new(store_with(1), FaultConfig::transient(seed, 0.3));
            let mut buf = empty_page();
            (0..200)
                .map(|_| {
                    // Drain the healing debt so every read rolls.
                    let ok = fs.read_page_at(0, &mut buf).is_ok();
                    if !ok {
                        let _ = fs.read_page_at(0, &mut buf);
                    }
                    ok
                })
                .collect()
        };
        assert_eq!(trace(5), trace(5));
        assert_ne!(trace(5), trace(6));
    }
}
