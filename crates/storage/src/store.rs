//! Page stores: where pages physically live.
//!
//! [`PageStore`] abstracts a flat, page-addressed file. [`MemStore`] backs
//! tests and simulation-grade experiments (deterministic, no filesystem
//! noise in cost counters); [`FileStore`] persists to a real file so the
//! wall-clock benches exercise actual I/O syscalls.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::page::{empty_page, PageBuf, PAGE_SIZE};

/// A flat array of fixed-size pages addressed by page number.
pub trait PageStore {
    /// Number of pages currently stored.
    fn page_count(&self) -> usize;

    /// Reads page `no` into `buf`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `no >= page_count()` or on I/O errors
    /// (the store is an experiment substrate, not a durability layer).
    fn read_page(&mut self, no: usize, buf: &mut PageBuf);

    /// Overwrites page `no`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`PageStore::read_page`].
    fn write_page(&mut self, no: usize, buf: &PageBuf);

    /// Appends a page, returning its page number.
    fn append_page(&mut self, buf: &PageBuf) -> usize;
}

/// An in-memory page store.
#[derive(Debug, Default)]
pub struct MemStore {
    pages: Vec<Box<PageBuf>>,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageStore for MemStore {
    fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn read_page(&mut self, no: usize, buf: &mut PageBuf) {
        buf.copy_from_slice(&self.pages[no][..]);
    }

    fn write_page(&mut self, no: usize, buf: &PageBuf) {
        self.pages[no].copy_from_slice(buf);
    }

    fn append_page(&mut self, buf: &PageBuf) -> usize {
        self.pages.push(Box::new(*buf));
        self.pages.len() - 1
    }
}

/// A file-backed page store.
#[derive(Debug)]
pub struct FileStore {
    file: File,
    pages: usize,
}

impl FileStore {
    /// Creates (truncating) a page file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStore { file, pages: 0 })
    }

    /// Opens an existing page file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; fails when the file size is not a
    /// multiple of the page size.
    pub fn open<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len() as usize;
        if len % PAGE_SIZE != 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("file length {len} is not a multiple of the page size"),
            ));
        }
        Ok(FileStore {
            file,
            pages: len / PAGE_SIZE,
        })
    }
}

impl PageStore for FileStore {
    fn page_count(&self) -> usize {
        self.pages
    }

    fn read_page(&mut self, no: usize, buf: &mut PageBuf) {
        assert!(
            no < self.pages,
            "page {no} out of range ({} pages)",
            self.pages
        );
        self.file
            .seek(SeekFrom::Start((no * PAGE_SIZE) as u64))
            .and_then(|_| self.file.read_exact(buf))
            .expect("page read");
    }

    fn write_page(&mut self, no: usize, buf: &PageBuf) {
        assert!(
            no < self.pages,
            "page {no} out of range ({} pages)",
            self.pages
        );
        self.file
            .seek(SeekFrom::Start((no * PAGE_SIZE) as u64))
            .and_then(|_| self.file.write_all(buf))
            .expect("page write");
    }

    fn append_page(&mut self, buf: &PageBuf) -> usize {
        let no = self.pages;
        self.file
            .seek(SeekFrom::Start((no * PAGE_SIZE) as u64))
            .and_then(|_| self.file.write_all(buf))
            .expect("page append");
        self.pages += 1;
        no
    }
}

/// Fills a store with `n` zeroed pages (builders then `write_page` slots).
pub fn reserve_pages<S: PageStore>(store: &mut S, n: usize) {
    let zero = empty_page();
    for _ in 0..n {
        store.append_page(&zero);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<S: PageStore>(store: &mut S) {
        assert_eq!(store.page_count(), 0);
        let mut a = empty_page();
        a[0] = 0xAA;
        a[PAGE_SIZE - 1] = 0x55;
        assert_eq!(store.append_page(&a), 0);
        let mut b = empty_page();
        b[7] = 7;
        assert_eq!(store.append_page(&b), 1);
        assert_eq!(store.page_count(), 2);

        let mut buf = empty_page();
        store.read_page(0, &mut buf);
        assert_eq!(buf[0], 0xAA);
        assert_eq!(buf[PAGE_SIZE - 1], 0x55);
        store.read_page(1, &mut buf);
        assert_eq!(buf[7], 7);

        buf[7] = 70;
        store.write_page(1, &buf);
        let mut check = empty_page();
        store.read_page(1, &mut check);
        assert_eq!(check[7], 70);
    }

    #[test]
    fn mem_store_roundtrip() {
        exercise(&mut MemStore::new());
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("knmatch-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.bin");
        exercise(&mut FileStore::create(&path).unwrap());
        // Re-open and verify persistence.
        let mut re = FileStore::open(&path).unwrap();
        assert_eq!(re.page_count(), 2);
        let mut buf = empty_page();
        re.read_page(0, &mut buf);
        assert_eq!(buf[0], 0xAA);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_partial_pages() {
        let dir = std::env::temp_dir().join(format!("knmatch-store-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.bin");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(FileStore::open(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reserve_appends_zero_pages() {
        let mut s = MemStore::new();
        reserve_pages(&mut s, 3);
        assert_eq!(s.page_count(), 3);
        let mut buf = [1u8; PAGE_SIZE];
        s.read_page(2, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }
}
