//! Page stores: where pages physically live.
//!
//! [`PageStore`] abstracts a flat, page-addressed file. [`MemStore`] backs
//! tests and simulation-grade experiments (deterministic, no filesystem
//! noise in cost counters); [`FileStore`] persists to a real file so the
//! wall-clock benches exercise actual I/O syscalls.
//!
//! # Checksums
//!
//! [`FileStore`] keeps a CRC32 per data page and verifies reads against
//! it under a [`VerifyMode`] policy — by default each page's first read
//! per open, and the first read after each write to it (see DESIGN.md
//! §10). The checksums live *out of band* in a
//! trailer written by [`FileStore::seal`] — heap pages can be exactly
//! full (16-dimensional rows pack a 4 KiB page with zero slack), so
//! there is no universal in-page slot for a checksum without changing
//! every page layout. The trailer is:
//!
//! ```text
//! [data page 0] … [data page N-1] [checksum table pages] [footer page]
//! ```
//!
//! where the table holds one little-endian `u32` per data page and the
//! footer records the magic, the data-page count, and a CRC32 of the
//! table itself. [`FileStore::open`] detects the trailer (magic plus the
//! page-count consistency equation), hides it from [`page_count`]
//! (`PageStore::page_count`), verifies the table CRC, and then scrubs
//! every data page against its checksum — so a corrupted file fails at
//! open time with [`StorageError::CorruptPage`] instead of mid-query.
//! Files without a trailer (pre-checksum layout, or mid-build files)
//! open in legacy mode: checksums are computed from the bytes present,
//! which still catches corruption that happens *after* open (under
//! [`VerifyMode::FirstRead`], up to each page's first read).

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::checksum::crc32;
use crate::error::{StorageError, StorageResult};
use crate::page::{empty_page, PageBuf, PAGE_SIZE};

/// Magic bytes opening the checksum-trailer footer page.
pub const TRAILER_MAGIC: &[u8; 8] = b"KNMCKSM1";

/// A flat array of fixed-size pages addressed by page number.
pub trait PageStore {
    /// Number of pages currently stored.
    fn page_count(&self) -> usize;

    /// Reads page `no` into `buf`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `no >= page_count()` or on I/O
    /// errors, including checksum mismatches (the exclusive path is an
    /// experiment substrate; the fallible path is
    /// [`PageStore::try_read_page`]).
    fn read_page(&mut self, no: usize, buf: &mut PageBuf);

    /// Reads page `no` into `buf`, surfacing failures as values.
    ///
    /// The default implementation delegates to the panicking
    /// [`PageStore::read_page`]; stores with real failure modes
    /// ([`FileStore`]) override it so open-time validation can report
    /// corruption instead of aborting.
    ///
    /// # Errors
    ///
    /// Implementation-specific I/O or checksum failures.
    fn try_read_page(&mut self, no: usize, buf: &mut PageBuf) -> StorageResult<()> {
        self.read_page(no, buf);
        Ok(())
    }

    /// Overwrites page `no`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`PageStore::read_page`].
    fn write_page(&mut self, no: usize, buf: &PageBuf);

    /// Appends a page, returning its page number.
    fn append_page(&mut self, buf: &PageBuf) -> usize;
}

/// A page store readable from many threads at once.
///
/// [`PageStore::read_page`] takes `&mut self` because [`FileStore`]
/// historically read through the file cursor (`seek` + `read_exact`).
/// Concurrent readers must never share a cursor, so this trait exposes a
/// *positioned* read path instead: `read_page_at` takes `&self` and
/// performs the read at an explicit offset (`pread`-style via
/// `std::os::unix::fs::FileExt::read_at` on Unix), so any number of
/// threads can fetch pages of one store simultaneously without locking
/// or cursor contention. [`crate::SharedBufferPool`] builds on it.
pub trait SharedPageStore: Sync {
    /// Number of pages currently stored.
    fn page_count(&self) -> usize;

    /// Reads page `no` into `buf` without exclusive access.
    ///
    /// # Errors
    ///
    /// I/O failures and checksum mismatches are returned as
    /// [`StorageError`] values so callers ([`crate::SharedBufferPool`])
    /// can retry transient ones; see [`StorageError::is_transient`].
    ///
    /// # Panics
    ///
    /// Implementations may panic when `no >= page_count()` (a caller
    /// bug, not a runtime fault).
    fn read_page_at(&self, no: usize, buf: &mut PageBuf) -> StorageResult<()>;
}

/// An in-memory page store.
#[derive(Debug, Default, Clone)]
pub struct MemStore {
    pages: Vec<Box<PageBuf>>,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageStore for MemStore {
    fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn read_page(&mut self, no: usize, buf: &mut PageBuf) {
        buf.copy_from_slice(&self.pages[no][..]);
    }

    fn write_page(&mut self, no: usize, buf: &PageBuf) {
        self.pages[no].copy_from_slice(buf);
    }

    fn append_page(&mut self, buf: &PageBuf) -> usize {
        self.pages.push(Box::new(*buf));
        self.pages.len() - 1
    }
}

impl SharedPageStore for MemStore {
    fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn read_page_at(&self, no: usize, buf: &mut PageBuf) -> StorageResult<()> {
        buf.copy_from_slice(&self.pages[no][..]);
        Ok(())
    }
}

/// When [`FileStore`] verifies a page read against its checksum.
///
/// Checksums guard *at-rest* corruption: bit rot, torn writes, and a
/// file changed behind the store's back. [`VerifyMode::FirstRead`] (the
/// default) verifies each page on its first read per open — and again
/// after every [`PageStore::write_page`] to that page — then trusts
/// re-reads of the same bytes; a page that already passed verification
/// this open cannot have rotted in a way a re-CRC of the same cached
/// bytes would reveal. [`VerifyMode::Always`] re-verifies every read for
/// deployments that want the paranoid setting and accept the CPU cost
/// (priced by the `fault_overhead` bench). [`VerifyMode::Never`] is the
/// bench baseline; everything else should leave verification on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum VerifyMode {
    /// Never verify (bench baseline only).
    Never,
    /// Verify each page's first read per open and the first read after
    /// each write to it; trust subsequent re-reads.
    #[default]
    FirstRead,
    /// Verify every read.
    Always,
}

/// A file-backed page store with per-page CRC32 verification.
#[derive(Debug)]
pub struct FileStore {
    file: File,
    /// Data pages only; a sealed file's checksum trailer is hidden.
    pages: usize,
    /// CRC32 per data page, kept in step with every write.
    checksums: Vec<u32>,
    /// Read-verification policy; see [`VerifyMode`].
    verify: VerifyMode,
    /// Per-page "passed verification since open/last write" flags, the
    /// state behind [`VerifyMode::FirstRead`]. Atomic because shared
    /// readers ([`SharedPageStore::read_page_at`]) mark pages through
    /// `&self`; a racy double-verify is harmless.
    verified: Vec<AtomicBool>,
    /// Whether the on-disk file carries a checksum trailer.
    sealed: bool,
}

/// Fresh all-unverified flags for `n` pages.
fn fresh_flags(n: usize) -> Vec<AtomicBool> {
    (0..n).map(|_| AtomicBool::new(false)).collect()
}

/// Pages the checksum table needs for `data_pages` entries.
fn table_pages_for(data_pages: usize) -> usize {
    (data_pages * 4).div_ceil(PAGE_SIZE)
}

impl FileStore {
    /// Creates (truncating) a page file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStore {
            file,
            pages: 0,
            checksums: Vec::new(),
            verify: VerifyMode::default(),
            verified: Vec::new(),
            sealed: false,
        })
    }

    /// Opens an existing page file at `path`.
    ///
    /// A sealed file (see [`FileStore::seal`]) has its checksum table
    /// loaded and every data page scrubbed against it; a legacy file has
    /// checksums computed from the bytes present. Either way the whole
    /// file is read once at open time.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; fails with a [`StorageError`]
    /// (converted to `io::Error`) when the file is empty, not a whole
    /// number of pages, or fails checksum validation.
    pub fn open<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len == 0 || len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::BadLength { bytes: len }.into());
        }
        let total = (len / PAGE_SIZE as u64) as usize;
        let mut store = FileStore {
            file,
            pages: total,
            checksums: Vec::new(),
            verify: VerifyMode::default(),
            verified: Vec::new(),
            sealed: false,
        };
        if let Some(data_pages) = store.detect_trailer(total)? {
            store.pages = data_pages;
            store.sealed = true;
            store.load_checksum_table(data_pages)?;
            store.scrub()?;
        } else {
            // Legacy layout (or a file abandoned mid-build): adopt the
            // bytes present as ground truth so later reads still detect
            // post-open corruption.
            store.checksums = Vec::with_capacity(total);
            let mut buf = empty_page();
            for no in 0..total {
                store.read_raw(no, &mut buf).map_err(std::io::Error::from)?;
                store.checksums.push(crc32(&buf));
            }
        }
        store.verified = fresh_flags(store.pages);
        Ok(store)
    }

    /// Whether the last page is a checksum-trailer footer consistent
    /// with the file size; returns the data-page count when it is.
    fn detect_trailer(&mut self, total: usize) -> std::io::Result<Option<usize>> {
        if total == 0 {
            return Ok(None);
        }
        let mut footer = empty_page();
        self.read_raw(total - 1, &mut footer)
            .map_err(std::io::Error::from)?;
        if &footer[..8] != TRAILER_MAGIC {
            return Ok(None);
        }
        let data_pages = u64::from_le_bytes(footer[8..16].try_into().expect("8 bytes")) as usize;
        if data_pages + table_pages_for(data_pages) + 1 != total {
            return Err(StorageError::BadHeader {
                reason: format!(
                    "checksum trailer claims {data_pages} data pages, inconsistent with {total} total"
                ),
            }
            .into());
        }
        Ok(Some(data_pages))
    }

    /// Loads and validates the on-disk checksum table of a sealed file.
    fn load_checksum_table(&mut self, data_pages: usize) -> std::io::Result<()> {
        let table_pages = table_pages_for(data_pages);
        let mut table = vec![0u8; table_pages * PAGE_SIZE];
        let mut buf = empty_page();
        for i in 0..table_pages {
            self.read_raw(data_pages + i, &mut buf)
                .map_err(std::io::Error::from)?;
            table[i * PAGE_SIZE..(i + 1) * PAGE_SIZE].copy_from_slice(&buf);
        }
        let mut footer = empty_page();
        self.read_raw(data_pages + table_pages, &mut footer)
            .map_err(std::io::Error::from)?;
        let want = u32::from_le_bytes(footer[16..20].try_into().expect("4 bytes"));
        let got = crc32(&table[..data_pages * 4]);
        if want != got {
            return Err(StorageError::BadHeader {
                reason: format!(
                    "checksum table CRC mismatch: expected {want:#010x}, got {got:#010x}"
                ),
            }
            .into());
        }
        self.checksums = (0..data_pages)
            .map(|i| u32::from_le_bytes(table[i * 4..i * 4 + 4].try_into().expect("4 bytes")))
            .collect();
        Ok(())
    }

    /// Open-time scrub: verifies every data page against its checksum.
    fn scrub(&mut self) -> std::io::Result<()> {
        let mut buf = empty_page();
        for no in 0..self.pages {
            self.read_raw(no, &mut buf).map_err(std::io::Error::from)?;
            self.check(no, &buf).map_err(std::io::Error::from)?;
        }
        Ok(())
    }

    /// Appends the checksum table and footer, making the file
    /// self-validating for the next [`FileStore::open`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    ///
    /// # Panics
    ///
    /// Panics when the store is already sealed.
    pub fn seal(&mut self) -> std::io::Result<()> {
        assert!(!self.sealed, "store is already sealed");
        let mut table = vec![0u8; table_pages_for(self.pages) * PAGE_SIZE];
        for (i, crc) in self.checksums.iter().enumerate() {
            table[i * 4..i * 4 + 4].copy_from_slice(&crc.to_le_bytes());
        }
        self.file
            .seek(SeekFrom::Start((self.pages * PAGE_SIZE) as u64))?;
        self.file.write_all(&table)?;
        self.file.write_all(&self.footer_page())?;
        self.sealed = true;
        Ok(())
    }

    fn footer_page(&self) -> PageBuf {
        let mut footer = empty_page();
        footer[..8].copy_from_slice(TRAILER_MAGIC);
        footer[8..16].copy_from_slice(&(self.pages as u64).to_le_bytes());
        let mut table = Vec::with_capacity(self.pages * 4);
        for crc in &self.checksums {
            table.extend_from_slice(&crc.to_le_bytes());
        }
        footer[16..20].copy_from_slice(&crc32(&table).to_le_bytes());
        footer
    }

    /// Enables ([`VerifyMode::Always`]) or disables
    /// ([`VerifyMode::Never`]) checksum verification on reads. The
    /// default policy is the cheaper [`VerifyMode::FirstRead`]; see
    /// [`FileStore::set_verify_mode`].
    pub fn set_verify(&mut self, on: bool) {
        self.verify = if on {
            VerifyMode::Always
        } else {
            VerifyMode::Never
        };
    }

    /// Sets the read-verification policy; see [`VerifyMode`].
    pub fn set_verify_mode(&mut self, mode: VerifyMode) {
        self.verify = mode;
    }

    /// The current read-verification policy.
    pub fn verify_mode(&self) -> VerifyMode {
        self.verify
    }

    /// The recorded checksum of page `no`, when one exists.
    pub fn checksum(&self, no: usize) -> Option<u32> {
        self.checksums.get(no).copied()
    }

    /// Whether the on-disk file carries a checksum trailer.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    fn bounds_check(&self, no: usize) {
        assert!(
            no < self.pages,
            "page {no} out of range ({} pages)",
            self.pages
        );
    }

    /// Positioned raw read with io errors mapped to [`StorageError`]; no
    /// checksum verification (used while loading the trailer itself).
    fn read_raw(&self, no: usize, buf: &mut PageBuf) -> StorageResult<()> {
        let off = (no * PAGE_SIZE) as u64;
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file
                .read_exact_at(buf, off)
                .map_err(|e| StorageError::Io {
                    page: no,
                    kind: e.kind(),
                    message: e.to_string(),
                })
        }
        #[cfg(windows)]
        {
            use std::os::windows::fs::FileExt;
            let mut done = 0usize;
            while done < PAGE_SIZE {
                let n = self
                    .file
                    .seek_read(&mut buf[done..], off + done as u64)
                    .map_err(|e| StorageError::Io {
                        page: no,
                        kind: e.kind(),
                        message: e.to_string(),
                    })?;
                if n == 0 {
                    return Err(StorageError::Io {
                        page: no,
                        kind: std::io::ErrorKind::UnexpectedEof,
                        message: format!("unexpected EOF reading page {no}"),
                    });
                }
                done += n;
            }
            Ok(())
        }
        #[cfg(not(any(unix, windows)))]
        {
            let _ = (off, buf);
            unimplemented!("FileStore needs positioned reads on this platform");
        }
    }

    /// Verifies `buf` against page `no`'s recorded checksum, subject to
    /// the [`VerifyMode`] policy; a pass marks the page verified.
    fn check(&self, no: usize, buf: &PageBuf) -> StorageResult<()> {
        match self.verify {
            VerifyMode::Never => return Ok(()),
            VerifyMode::FirstRead => {
                if self
                    .verified
                    .get(no)
                    .is_some_and(|f| f.load(Ordering::Relaxed))
                {
                    return Ok(());
                }
            }
            VerifyMode::Always => {}
        }
        let Some(&expected) = self.checksums.get(no) else {
            return Ok(());
        };
        let actual = crc32(buf);
        if actual != expected {
            return Err(StorageError::CorruptPage {
                page: no,
                expected,
                actual,
            });
        }
        if let Some(f) = self.verified.get(no) {
            f.store(true, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Updates the on-disk trailer after `write_page` on a sealed file.
    fn rewrite_trailer_entry(&mut self, no: usize) {
        let table_start = (self.pages * PAGE_SIZE) as u64;
        self.file
            .seek(SeekFrom::Start(table_start + (no * 4) as u64))
            .and_then(|_| self.file.write_all(&self.checksums[no].to_le_bytes()))
            .expect("checksum table write");
        let footer_no = self.pages + table_pages_for(self.pages);
        let footer = self.footer_page();
        self.file
            .seek(SeekFrom::Start((footer_no * PAGE_SIZE) as u64))
            .and_then(|_| self.file.write_all(&footer))
            .expect("checksum footer write");
    }
}

impl PageStore for FileStore {
    fn page_count(&self) -> usize {
        self.pages
    }

    fn read_page(&mut self, no: usize, buf: &mut PageBuf) {
        self.try_read_page(no, buf)
            .unwrap_or_else(|e| panic!("page read: {e}"));
    }

    fn try_read_page(&mut self, no: usize, buf: &mut PageBuf) -> StorageResult<()> {
        self.bounds_check(no);
        self.read_raw(no, buf)?;
        self.check(no, buf)
    }

    fn write_page(&mut self, no: usize, buf: &PageBuf) {
        self.bounds_check(no);
        self.file
            .seek(SeekFrom::Start((no * PAGE_SIZE) as u64))
            .and_then(|_| self.file.write_all(buf))
            .expect("page write");
        self.checksums[no] = crc32(buf);
        // The checksum describes what was *sent* to the filesystem; the
        // first read-back re-verifies so a torn write still surfaces.
        if let Some(f) = self.verified.get(no) {
            f.store(false, Ordering::Relaxed);
        }
        if self.sealed {
            self.rewrite_trailer_entry(no);
        }
    }

    fn append_page(&mut self, buf: &PageBuf) -> usize {
        assert!(
            !self.sealed,
            "cannot append to a sealed file: the checksum trailer follows the data pages"
        );
        let no = self.pages;
        self.file
            .seek(SeekFrom::Start((no * PAGE_SIZE) as u64))
            .and_then(|_| self.file.write_all(buf))
            .expect("page append");
        self.checksums.push(crc32(buf));
        self.verified.push(AtomicBool::new(false));
        self.pages += 1;
        no
    }
}

impl SharedPageStore for FileStore {
    fn page_count(&self) -> usize {
        self.pages
    }

    /// Positioned read: no file-cursor mutation, so concurrent misses on
    /// different pages issue independent `pread(2)` calls instead of
    /// serialising on a shared seek position. Verifies the page checksum
    /// as configured by the [`VerifyMode`] policy.
    fn read_page_at(&self, no: usize, buf: &mut PageBuf) -> StorageResult<()> {
        self.bounds_check(no);
        self.read_raw(no, buf)?;
        self.check(no, buf)
    }
}

/// Fills a store with `n` zeroed pages (builders then `write_page` slots).
pub fn reserve_pages<S: PageStore>(store: &mut S, n: usize) {
    let zero = empty_page();
    for _ in 0..n {
        store.append_page(&zero);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<S: PageStore>(store: &mut S) {
        assert_eq!(store.page_count(), 0);
        let mut a = empty_page();
        a[0] = 0xAA;
        a[PAGE_SIZE - 1] = 0x55;
        assert_eq!(store.append_page(&a), 0);
        let mut b = empty_page();
        b[7] = 7;
        assert_eq!(store.append_page(&b), 1);
        assert_eq!(store.page_count(), 2);

        let mut buf = empty_page();
        store.read_page(0, &mut buf);
        assert_eq!(buf[0], 0xAA);
        assert_eq!(buf[PAGE_SIZE - 1], 0x55);
        store.read_page(1, &mut buf);
        assert_eq!(buf[7], 7);

        buf[7] = 70;
        store.write_page(1, &buf);
        let mut check = empty_page();
        store.read_page(1, &mut check);
        assert_eq!(check[7], 70);
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("knmatch-store-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn mem_store_roundtrip() {
        exercise(&mut MemStore::new());
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("pages.bin");
        exercise(&mut FileStore::create(&path).unwrap());
        // Re-open and verify persistence (legacy mode: no trailer yet).
        let mut re = FileStore::open(&path).unwrap();
        assert!(!re.is_sealed());
        assert_eq!(PageStore::page_count(&re), 2);
        let mut buf = empty_page();
        re.read_page(0, &mut buf);
        assert_eq!(buf[0], 0xAA);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_partial_pages() {
        let dir = temp_dir("bad");
        let path = dir.join("bad.bin");
        std::fs::write(&path, [0u8; 100]).unwrap();
        let err = FileStore::open(&path).unwrap_err();
        assert!(
            err.to_string().contains("multiple of the page size"),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_zero_length_files() {
        let dir = temp_dir("empty");
        let path = dir.join("empty.bin");
        std::fs::write(&path, []).unwrap();
        let err = FileStore::open(&path).unwrap_err();
        assert!(err.to_string().contains("length 0"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sealed_roundtrip_and_scrub_detects_corruption() {
        let dir = temp_dir("sealed");
        let path = dir.join("sealed.bin");
        {
            let mut fs = FileStore::create(&path).unwrap();
            for i in 0..5u8 {
                let mut p = empty_page();
                p[0] = i;
                p[100] = 0xC0 | i;
                fs.append_page(&p);
            }
            fs.seal().unwrap();
        }
        // Clean reopen: trailer found, scrub passes, trailer hidden.
        let mut re = FileStore::open(&path).unwrap();
        assert!(re.is_sealed());
        assert_eq!(PageStore::page_count(&re), 5);
        let mut buf = empty_page();
        re.read_page(3, &mut buf);
        assert_eq!(buf[0], 3);
        // Overwrites keep the trailer in step across reopen.
        buf[0] = 0xEE;
        re.write_page(3, &buf);
        drop(re);
        let mut re = FileStore::open(&path).unwrap();
        re.read_page(3, &mut buf);
        assert_eq!(buf[0], 0xEE);
        drop(re);
        // Flip one data byte behind the store's back: open-time scrub
        // reports the page.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[2 * PAGE_SIZE + 9] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = FileStore::open(&path).unwrap_err();
        assert!(
            err.to_string().contains("checksum mismatch on page 2"),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_trailer_is_rejected() {
        let dir = temp_dir("trailer");
        let path = dir.join("sealed.bin");
        {
            let mut fs = FileStore::create(&path).unwrap();
            fs.append_page(&empty_page());
            fs.seal().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt the first checksum-table entry (page 1 of the file).
        bytes[PAGE_SIZE] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = FileStore::open(&path).unwrap_err();
        assert!(
            err.to_string().contains("checksum table CRC mismatch"),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn post_open_corruption_fails_reads_not_opens() {
        let dir = temp_dir("rot");
        let path = dir.join("rot.bin");
        let mut fs = FileStore::create(&path).unwrap();
        let mut p = empty_page();
        p[0] = 0x11;
        fs.append_page(&p);
        // Corrupt the file through a second handle after open.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[50] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let mut buf = empty_page();
        let err = SharedPageStore::read_page_at(&fs, 0, &mut buf).unwrap_err();
        assert!(
            matches!(err, StorageError::CorruptPage { page: 0, .. }),
            "{err}"
        );
        // With verification off the same read succeeds raw.
        fs.set_verify(false);
        SharedPageStore::read_page_at(&fs, 0, &mut buf).unwrap();
        assert_eq!(buf[0], 0x11);
        assert_eq!(buf[50], 0x01);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn first_read_policy_verifies_once_per_open_and_after_writes() {
        let dir = temp_dir("firstread");
        let path = dir.join("fr.bin");
        let mut fs = FileStore::create(&path).unwrap();
        let mut p = empty_page();
        p[0] = 0x11;
        fs.append_page(&p);
        assert_eq!(fs.verify_mode(), VerifyMode::FirstRead);

        // First read verifies and marks the page trusted.
        let mut buf = empty_page();
        SharedPageStore::read_page_at(&fs, 0, &mut buf).unwrap();
        // Corruption arriving *after* that read goes unseen by re-reads…
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[50] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        SharedPageStore::read_page_at(&fs, 0, &mut buf).unwrap();
        // …but Always re-verifies every read and reports it.
        fs.set_verify(true);
        assert_eq!(fs.verify_mode(), VerifyMode::Always);
        let err = SharedPageStore::read_page_at(&fs, 0, &mut buf).unwrap_err();
        assert!(
            matches!(err, StorageError::CorruptPage { page: 0, .. }),
            "{err}"
        );

        // A write re-arms first-read verification for its page: the
        // write below lands intact, so the read-back passes, but the
        // checksum was genuinely re-checked (a torn variant would fail —
        // see post_open_corruption_fails_reads_not_opens).
        fs.set_verify_mode(VerifyMode::FirstRead);
        p[0] = 0x22;
        fs.write_page(0, &p);
        SharedPageStore::read_page_at(&fs, 0, &mut buf).unwrap();
        assert_eq!(buf[0], 0x22);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_reads_match_exclusive_reads() {
        let dir = temp_dir("shared");
        let path = dir.join("pages.bin");
        let mut fs = FileStore::create(&path).unwrap();
        let mut ms = MemStore::new();
        for i in 0..5u8 {
            let mut p = empty_page();
            p[0] = i;
            p[PAGE_SIZE - 1] = 0xF0 | i;
            fs.append_page(&p);
            ms.append_page(&p);
        }
        let mut a = empty_page();
        let mut b = empty_page();
        for no in [0usize, 4, 2, 2, 0] {
            SharedPageStore::read_page_at(&fs, no, &mut a).unwrap();
            SharedPageStore::read_page_at(&ms, no, &mut b).unwrap();
            assert_eq!(a, b);
            assert_eq!(a[0] as usize, no);
        }
        // The positioned path leaves the cursor-based path working.
        fs.read_page(1, &mut a);
        assert_eq!(a[0], 1);
        assert_eq!(SharedPageStore::page_count(&fs), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reserve_appends_zero_pages() {
        let mut s = MemStore::new();
        reserve_pages(&mut s, 3);
        assert_eq!(PageStore::page_count(&s), 3);
        let mut buf = [1u8; PAGE_SIZE];
        s.read_page(2, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }
}
