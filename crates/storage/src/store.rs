//! Page stores: where pages physically live.
//!
//! [`PageStore`] abstracts a flat, page-addressed file. [`MemStore`] backs
//! tests and simulation-grade experiments (deterministic, no filesystem
//! noise in cost counters); [`FileStore`] persists to a real file so the
//! wall-clock benches exercise actual I/O syscalls.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::page::{empty_page, PageBuf, PAGE_SIZE};

/// A flat array of fixed-size pages addressed by page number.
pub trait PageStore {
    /// Number of pages currently stored.
    fn page_count(&self) -> usize;

    /// Reads page `no` into `buf`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `no >= page_count()` or on I/O errors
    /// (the store is an experiment substrate, not a durability layer).
    fn read_page(&mut self, no: usize, buf: &mut PageBuf);

    /// Overwrites page `no`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`PageStore::read_page`].
    fn write_page(&mut self, no: usize, buf: &PageBuf);

    /// Appends a page, returning its page number.
    fn append_page(&mut self, buf: &PageBuf) -> usize;
}

/// A page store readable from many threads at once.
///
/// [`PageStore::read_page`] takes `&mut self` because [`FileStore`]
/// historically read through the file cursor (`seek` + `read_exact`).
/// Concurrent readers must never share a cursor, so this trait exposes a
/// *positioned* read path instead: `read_page_at` takes `&self` and
/// performs the read at an explicit offset (`pread`-style via
/// `std::os::unix::fs::FileExt::read_at` on Unix), so any number of
/// threads can fetch pages of one store simultaneously without locking
/// or cursor contention. [`crate::SharedBufferPool`] builds on it.
pub trait SharedPageStore: Sync {
    /// Number of pages currently stored.
    fn page_count(&self) -> usize;

    /// Reads page `no` into `buf` without exclusive access.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `no >= page_count()` or on I/O
    /// errors (the store is an experiment substrate, not a durability
    /// layer), matching [`PageStore::read_page`].
    fn read_page_at(&self, no: usize, buf: &mut PageBuf);
}

/// An in-memory page store.
#[derive(Debug, Default)]
pub struct MemStore {
    pages: Vec<Box<PageBuf>>,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageStore for MemStore {
    fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn read_page(&mut self, no: usize, buf: &mut PageBuf) {
        buf.copy_from_slice(&self.pages[no][..]);
    }

    fn write_page(&mut self, no: usize, buf: &PageBuf) {
        self.pages[no].copy_from_slice(buf);
    }

    fn append_page(&mut self, buf: &PageBuf) -> usize {
        self.pages.push(Box::new(*buf));
        self.pages.len() - 1
    }
}

impl SharedPageStore for MemStore {
    fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn read_page_at(&self, no: usize, buf: &mut PageBuf) {
        buf.copy_from_slice(&self.pages[no][..]);
    }
}

/// A file-backed page store.
#[derive(Debug)]
pub struct FileStore {
    file: File,
    pages: usize,
}

impl FileStore {
    /// Creates (truncating) a page file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStore { file, pages: 0 })
    }

    /// Opens an existing page file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; fails when the file size is not a
    /// multiple of the page size.
    pub fn open<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len() as usize;
        if len % PAGE_SIZE != 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("file length {len} is not a multiple of the page size"),
            ));
        }
        Ok(FileStore {
            file,
            pages: len / PAGE_SIZE,
        })
    }
}

impl PageStore for FileStore {
    fn page_count(&self) -> usize {
        self.pages
    }

    fn read_page(&mut self, no: usize, buf: &mut PageBuf) {
        assert!(
            no < self.pages,
            "page {no} out of range ({} pages)",
            self.pages
        );
        self.file
            .seek(SeekFrom::Start((no * PAGE_SIZE) as u64))
            .and_then(|_| self.file.read_exact(buf))
            .expect("page read");
    }

    fn write_page(&mut self, no: usize, buf: &PageBuf) {
        assert!(
            no < self.pages,
            "page {no} out of range ({} pages)",
            self.pages
        );
        self.file
            .seek(SeekFrom::Start((no * PAGE_SIZE) as u64))
            .and_then(|_| self.file.write_all(buf))
            .expect("page write");
    }

    fn append_page(&mut self, buf: &PageBuf) -> usize {
        let no = self.pages;
        self.file
            .seek(SeekFrom::Start((no * PAGE_SIZE) as u64))
            .and_then(|_| self.file.write_all(buf))
            .expect("page append");
        self.pages += 1;
        no
    }
}

impl SharedPageStore for FileStore {
    fn page_count(&self) -> usize {
        self.pages
    }

    /// Positioned read: no file-cursor mutation, so concurrent misses on
    /// different pages issue independent `pread(2)` calls instead of
    /// serialising on a shared seek position.
    fn read_page_at(&self, no: usize, buf: &mut PageBuf) {
        assert!(
            no < self.pages,
            "page {no} out of range ({} pages)",
            self.pages
        );
        let off = (no * PAGE_SIZE) as u64;
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, off).expect("page read_at");
        }
        #[cfg(windows)]
        {
            use std::os::windows::fs::FileExt;
            let mut done = 0usize;
            while done < PAGE_SIZE {
                let n = self
                    .file
                    .seek_read(&mut buf[done..], off + done as u64)
                    .expect("page seek_read");
                assert!(n > 0, "unexpected EOF reading page {no}");
                done += n;
            }
        }
        #[cfg(not(any(unix, windows)))]
        {
            let _ = off;
            unimplemented!("SharedPageStore for FileStore needs positioned reads");
        }
    }
}

/// Fills a store with `n` zeroed pages (builders then `write_page` slots).
pub fn reserve_pages<S: PageStore>(store: &mut S, n: usize) {
    let zero = empty_page();
    for _ in 0..n {
        store.append_page(&zero);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<S: PageStore>(store: &mut S) {
        assert_eq!(store.page_count(), 0);
        let mut a = empty_page();
        a[0] = 0xAA;
        a[PAGE_SIZE - 1] = 0x55;
        assert_eq!(store.append_page(&a), 0);
        let mut b = empty_page();
        b[7] = 7;
        assert_eq!(store.append_page(&b), 1);
        assert_eq!(store.page_count(), 2);

        let mut buf = empty_page();
        store.read_page(0, &mut buf);
        assert_eq!(buf[0], 0xAA);
        assert_eq!(buf[PAGE_SIZE - 1], 0x55);
        store.read_page(1, &mut buf);
        assert_eq!(buf[7], 7);

        buf[7] = 70;
        store.write_page(1, &buf);
        let mut check = empty_page();
        store.read_page(1, &mut check);
        assert_eq!(check[7], 70);
    }

    #[test]
    fn mem_store_roundtrip() {
        exercise(&mut MemStore::new());
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("knmatch-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.bin");
        exercise(&mut FileStore::create(&path).unwrap());
        // Re-open and verify persistence.
        let mut re = FileStore::open(&path).unwrap();
        assert_eq!(PageStore::page_count(&re), 2);
        let mut buf = empty_page();
        re.read_page(0, &mut buf);
        assert_eq!(buf[0], 0xAA);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_partial_pages() {
        let dir = std::env::temp_dir().join(format!("knmatch-store-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.bin");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(FileStore::open(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_reads_match_exclusive_reads() {
        let dir = std::env::temp_dir().join(format!("knmatch-store-shared-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.bin");
        let mut fs = FileStore::create(&path).unwrap();
        let mut ms = MemStore::new();
        for i in 0..5u8 {
            let mut p = empty_page();
            p[0] = i;
            p[PAGE_SIZE - 1] = 0xF0 | i;
            fs.append_page(&p);
            ms.append_page(&p);
        }
        let mut a = empty_page();
        let mut b = empty_page();
        for no in [0usize, 4, 2, 2, 0] {
            SharedPageStore::read_page_at(&fs, no, &mut a);
            SharedPageStore::read_page_at(&ms, no, &mut b);
            assert_eq!(a, b);
            assert_eq!(a[0] as usize, no);
        }
        // The positioned path leaves the cursor-based path working.
        fs.read_page(1, &mut a);
        assert_eq!(a[0], 1);
        assert_eq!(SharedPageStore::page_count(&fs), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reserve_appends_zero_pages() {
        let mut s = MemStore::new();
        reserve_pages(&mut s, 3);
        assert_eq!(PageStore::page_count(&s), 3);
        let mut buf = [1u8; PAGE_SIZE];
        s.read_page(2, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }
}
