//! In-repo CRC32 (IEEE 802.3 polynomial) for page checksumming.
//!
//! The failure model (DESIGN.md §10) checksums every 4 KiB page so that
//! bit rot, torn writes, and transport corruption are detected on read
//! instead of silently skewing query answers. The dependency-free tables
//! are built at compile time; the kernel is slice-by-8, which processes
//! eight bytes per step through eight derived tables instead of chaining
//! one table lookup per byte — the byte-at-a-time loop is latency-bound
//! on the `crc -> load -> crc` dependency, slice-by-8 runs the eight
//! lookups of a step in parallel. The `fault_overhead` bench prices the
//! result on the disk read path.

/// Reflected CRC32 polynomial (IEEE 802.3, as used by zlib and GFS-style
/// block checksums).
const POLY: u32 = 0xEDB8_8320;

/// Slice-by-8 lookup tables. `TABLES[0]` is the classic byte-at-a-time
/// table; `TABLES[k][b]` advances byte `b` through `k` further zero
/// bytes, so one step folds eight input bytes at once.
const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// CRC32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard CRC32 ("crc32b") test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sliced_kernel_matches_byte_at_a_time() {
        // Cross-check the slice-by-8 path against the reference loop on
        // lengths that hit every chunk/remainder split.
        fn reference(bytes: &[u8]) -> u32 {
            let mut crc = u32::MAX;
            for &b in bytes {
                crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
            }
            !crc
        }
        let data: Vec<u8> = (0..1024u32)
            .map(|i| (i.wrapping_mul(31) >> 3) as u8)
            .collect();
        for len in [0usize, 1, 7, 8, 9, 15, 16, 63, 64, 255, 1024] {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut page = [0u8; 4096];
        for (i, b) in page.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let clean = crc32(&page);
        for pos in [0usize, 1, 2047, 4095] {
            page[pos] ^= 0x01;
            assert_ne!(crc32(&page), clean, "flip at byte {pos} undetected");
            page[pos] ^= 0x01;
        }
        assert_eq!(crc32(&page), clean);
    }
}
