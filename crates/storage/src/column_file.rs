//! Disk-resident sorted dimensions.
//!
//! Section 4.1 of the paper: "we sort each dimension and store them
//! sequentially on disk". Dimension `i` occupies a contiguous run of pages,
//! each holding [`COLUMN_ENTRIES_PER_PAGE`] `(pid, value)` entries in
//! ascending value order, so the AD algorithm's forward walks read pages
//! sequentially.

use knmatch_core::{Dataset, SortedColumns, SortedEntry};

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::page::{
    empty_page, pages_needed, read_column_entry, write_column_entry, PageBuf,
    COLUMN_ENTRIES_PER_PAGE,
};
use crate::shared_pool::{ReadSession, SharedBufferPool};
use crate::store::{PageStore, SharedPageStore};

/// Layout metadata of a sorted-column file inside a page store, plus the
/// in-memory fence keys (first value of each page per dimension) that a
/// real system would keep as a sparse index — they let [`locate`] touch a
/// single page instead of binary-searching through the pool.
///
/// [`locate`]: SortedColumnFile::locate
#[derive(Debug, Clone, PartialEq)]
pub struct SortedColumnFile {
    dims: usize,
    cardinality: usize,
    pages_per_dim: usize,
    base_page: usize,
    /// `fences[dim][j]` = value of the first entry on page `j` of `dim`.
    fences: Vec<Vec<f64>>,
}

impl SortedColumnFile {
    /// Sorts every dimension of `ds` and appends the column pages to
    /// `store`, returning the layout handle.
    pub fn build<S: PageStore>(store: &mut S, ds: &Dataset) -> Self {
        let sorted = SortedColumns::build(ds);
        Self::from_sorted(store, &sorted)
    }

    /// Writes pre-sorted columns to `store`.
    pub fn from_sorted<S: PageStore>(store: &mut S, cols: &SortedColumns) -> Self {
        let dims = cols.dims();
        let cardinality = cols.cardinality();
        let pages_per_dim = pages_needed(cardinality, COLUMN_ENTRIES_PER_PAGE);
        let base_page = store.page_count();
        let mut fences = Vec::with_capacity(dims);
        for dim in 0..dims {
            let col = cols.column(dim);
            let mut dim_fences = Vec::with_capacity(pages_per_dim);
            for chunk in col.chunks(COLUMN_ENTRIES_PER_PAGE) {
                let mut page = empty_page();
                dim_fences.push(chunk.get(0).value);
                for (slot, e) in chunk.iter().enumerate() {
                    write_column_entry(&mut page, slot, e.pid, e.value);
                }
                store.append_page(&page);
            }
            fences.push(dim_fences);
            // A dimension with no full final page still owns its page range.
            debug_assert_eq!(
                store.page_count(),
                base_page + (dim + 1) * pages_per_dim,
                "each dimension occupies exactly pages_per_dim pages"
            );
        }
        SortedColumnFile {
            dims,
            cardinality,
            pages_per_dim,
            base_page,
            fences,
        }
    }

    /// Reconstructs a handle to an existing column file, re-reading the
    /// fence keys (first entry of every page) from the store.
    ///
    /// # Panics
    ///
    /// Panics when the store does not hold the expected page range or a
    /// fence-page read fails; [`SortedColumnFile::try_open`] is the
    /// fallible variant.
    pub fn open<S: PageStore>(
        store: &mut S,
        dims: usize,
        cardinality: usize,
        base_page: usize,
    ) -> Self {
        Self::try_open(store, dims, cardinality, base_page)
            .unwrap_or_else(|e| panic!("column file open: {e}"))
    }

    /// Fallible [`SortedColumnFile::open`]: a missing page range or a
    /// failing fence-page read (I/O error, checksum mismatch) is returned
    /// instead of panicking, so [`crate::persist::open_file`] can report
    /// corruption cleanly.
    ///
    /// # Errors
    ///
    /// [`StorageError::Truncated`] when the store is too small for the
    /// claimed layout, or whatever the store's read reports.
    pub fn try_open<S: PageStore>(
        store: &mut S,
        dims: usize,
        cardinality: usize,
        base_page: usize,
    ) -> StorageResult<Self> {
        let pages_per_dim = pages_needed(cardinality, COLUMN_ENTRIES_PER_PAGE);
        let expected = base_page + dims * pages_per_dim;
        if expected > store.page_count() {
            return Err(StorageError::Truncated {
                pages: store.page_count(),
                expected,
            });
        }
        let mut buf = empty_page();
        let mut fences = Vec::with_capacity(dims);
        for dim in 0..dims {
            let mut dim_fences = Vec::with_capacity(pages_per_dim);
            for p in 0..pages_per_dim {
                store.try_read_page(base_page + dim * pages_per_dim + p, &mut buf)?;
                dim_fences.push(read_column_entry(&buf, 0).1);
            }
            fences.push(dim_fences);
        }
        Ok(SortedColumnFile {
            dims,
            cardinality,
            pages_per_dim,
            base_page,
            fences,
        })
    }

    /// Dimensionality `d`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Cardinality `c`.
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    /// Pages occupied per dimension.
    pub fn pages_per_dim(&self) -> usize {
        self.pages_per_dim
    }

    /// Total pages occupied by the file.
    pub fn total_pages(&self) -> usize {
        self.pages_per_dim * self.dims
    }

    /// First page of the file inside the store.
    pub fn base_page(&self) -> usize {
        self.base_page
    }

    /// Page number and in-page slot of the entry at `rank` of `dim`.
    ///
    /// # Panics
    ///
    /// Panics when `dim` or `rank` is out of range.
    fn page_slot(&self, dim: usize, rank: usize) -> (usize, usize) {
        assert!(dim < self.dims, "dimension {dim} out of range");
        assert!(rank < self.cardinality, "rank {rank} out of range");
        (
            self.base_page + dim * self.pages_per_dim + rank / COLUMN_ENTRIES_PER_PAGE,
            rank % COLUMN_ENTRIES_PER_PAGE,
        )
    }

    /// The one page that can hold the answer rank for query value `q` in
    /// `dim`, per the in-memory fences: `(page_no, first_rank_on_page,
    /// entries_on_page)`, or `None` when the answer is rank 0 without any
    /// page read.
    fn locate_page(&self, dim: usize, q: f64) -> Option<(usize, usize, usize)> {
        let fences = &self.fences[dim];
        // First page whose fence is >= q; the answer rank lives on the page
        // before it (values between the two fences), or is that page's
        // first rank.
        let j = fences.partition_point(|&f| f < q);
        if j == 0 {
            return None;
        }
        let page = j - 1;
        let start = page * COLUMN_ENTRIES_PER_PAGE;
        let len = COLUMN_ENTRIES_PER_PAGE.min(self.cardinality - start);
        Some((self.base_page + dim * self.pages_per_dim + page, start, len))
    }

    /// Reads the entry at `rank` of `dim` through `pool`.
    ///
    /// # Panics
    ///
    /// Panics when `dim` or `rank` is out of range.
    pub fn entry<S: PageStore>(
        &self,
        pool: &mut BufferPool<S>,
        dim: usize,
        rank: usize,
    ) -> SortedEntry {
        let (page_no, slot) = self.page_slot(dim, rank);
        // One stream group per dimension file: the up and down cursor walks
        // both stream within it.
        let page = pool.get_in(page_no, dim as u32);
        let (pid, value) = read_column_entry(page, slot);
        SortedEntry { pid, value }
    }

    /// Page-granular estimate of the rank of the first entry in `dim` with
    /// value `>= q`, from the in-memory fence keys alone — **no I/O**.
    /// Accurate to within one page (the planner's selectivity estimates
    /// only need page granularity).
    pub fn locate_fences_only(&self, dim: usize, q: f64) -> usize {
        let j = self.fences[dim].partition_point(|&f| f < q);
        (j * COLUMN_ENTRIES_PER_PAGE).min(self.cardinality)
    }

    /// Rank of the first entry in `dim` with value `>= q`: the in-memory
    /// fence keys narrow the search to one page, which is then scanned
    /// through the pool (at most one page read — and it is the page the AD
    /// cursors seed from next).
    pub fn locate<S: PageStore>(&self, pool: &mut BufferPool<S>, dim: usize, q: f64) -> usize {
        let Some((page_no, start, len)) = self.locate_page(dim, q) else {
            return 0;
        };
        let buf = pool.get_in(page_no, dim as u32);
        start + search_page(buf, len, q)
    }
}

/// Rank offset (within a page holding `len` entries) of the first entry
/// with value `>= q`.
fn search_page(buf: &PageBuf, len: usize, q: f64) -> usize {
    let mut lo = 0usize;
    let mut hi = len;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if read_column_entry(buf, mid).1 < q {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// A [`SortedColumnFile`] + [`BufferPool`] pair viewed as a
/// [`knmatch_core::SortedAccessSource`], so the generic AD engine runs
/// unchanged on disk (Section 4.1's disk-based AD).
#[derive(Debug)]
pub struct DiskColumns<'a, S: PageStore> {
    file: &'a SortedColumnFile,
    pool: &'a mut BufferPool<S>,
}

impl<'a, S: PageStore> DiskColumns<'a, S> {
    /// Binds a column file to a pool.
    pub fn new(file: &'a SortedColumnFile, pool: &'a mut BufferPool<S>) -> Self {
        DiskColumns { file, pool }
    }

    /// The underlying pool (e.g. to read [`crate::buffer::IoStats`]).
    pub fn pool(&self) -> &BufferPool<S> {
        self.pool
    }
}

impl<S: PageStore> knmatch_core::SortedAccessSource for DiskColumns<'_, S> {
    fn dims(&self) -> usize {
        self.file.dims()
    }

    fn cardinality(&self) -> usize {
        self.file.cardinality()
    }

    fn locate(&mut self, dim: usize, q: f64) -> usize {
        self.file.locate(self.pool, dim, q)
    }

    fn entry(&mut self, dim: usize, rank: usize) -> SortedEntry {
        self.file.entry(self.pool, dim, rank)
    }
}

/// Sentinel for "no page cached" in [`SharedDiskColumns`]' per-dimension
/// copy-out slots (page numbers never reach `usize::MAX`).
const NO_PAGE: usize = usize::MAX;

/// A [`SortedColumnFile`] viewed through a *shared* buffer pool as a
/// [`knmatch_core::SortedAccessSource`]: the concurrent counterpart of
/// [`DiskColumns`], usable by many workers at once (each holds its own
/// instance over the same `&SharedBufferPool`).
///
/// Every page request is booked in the worker's [`ReadSession`] first —
/// keeping the modelled per-query [`crate::IoStats`] bit-identical to the
/// sequential path — and then served from one of two per-dimension
/// copy-out slots, falling back to the shared pool on a local miss. Two
/// slots, not one, because the AD walk runs an ascending and a descending
/// cursor per dimension: once they straddle a page boundary a single slot
/// would refetch on every alternation. The local slots only short-circuit
/// the copy; they never change what is counted.
#[derive(Debug)]
pub struct SharedDiskColumns<'a, S> {
    file: &'a SortedColumnFile,
    pool: &'a SharedBufferPool<S>,
    session: ReadSession,
    /// `cached_no[dim][s]` is the page number held in `cache[dim][s]`.
    cached_no: Vec<[usize; 2]>,
    cache: Vec<[Box<PageBuf>; 2]>,
    /// Most recently used slot per dimension; its sibling is the victim.
    mru: Vec<u8>,
}

impl<'a, S: SharedPageStore> SharedDiskColumns<'a, S> {
    /// Binds a column file to a shared pool, modelling per-query I/O as a
    /// private cold pool of `modelled_capacity` frames (use the capacity
    /// the sequential [`crate::DiskDatabase`] would be configured with).
    ///
    /// # Panics
    ///
    /// Panics when `modelled_capacity == 0`, matching
    /// [`crate::BufferPool::new`].
    pub fn new(
        file: &'a SortedColumnFile,
        pool: &'a SharedBufferPool<S>,
        modelled_capacity: usize,
    ) -> Self {
        SharedDiskColumns {
            file,
            pool,
            session: ReadSession::new(modelled_capacity),
            cached_no: vec![[NO_PAGE; 2]; file.dims()],
            cache: (0..file.dims())
                .map(|_| [Box::new(empty_page()), Box::new(empty_page())])
                .collect(),
            mru: vec![0; file.dims()],
        }
    }

    /// Starts a fresh query: resets the modelled session (counters,
    /// streams, simulated cache). The local copy-out slots stay warm —
    /// they are data plumbing, not accounting.
    pub fn begin_query(&mut self) {
        self.session.begin_query();
    }

    /// Modelled I/O of the current query (see [`ReadSession::stats`]).
    pub fn session_stats(&self) -> crate::buffer::IoStats {
        self.session.stats()
    }

    /// The shared pool this view reads through.
    pub fn pool(&self) -> &SharedBufferPool<S> {
        self.pool
    }

    /// Returns `dim`'s copy of `page_no`, booking the access in the
    /// session and fetching through the shared pool when neither local
    /// slot holds it.
    ///
    /// A pool read that still fails after the retry budget unwinds as a
    /// panic carrying the [`StorageError`] payload: the
    /// `SortedAccessSource` trait is infallible by design (the hot AD
    /// loop stays branch-free on the healthy path), and
    /// [`crate::DiskQueryEngine`] catches the unwind at the query
    /// boundary and turns it into that query's `Err` slot. The local
    /// slot is only updated after a successful read, so no torn page is
    /// ever served.
    fn page(&mut self, dim: usize, page_no: usize) -> &PageBuf {
        let verdict = self.session.account(page_no, dim as u32);
        let slots = self.cached_no[dim];
        let which = if slots[0] == page_no {
            0
        } else if slots[1] == page_no {
            1
        } else {
            let victim = 1 - usize::from(self.mru[dim]);
            let sequential = verdict.is_sequential();
            self.pool
                .read_classified(page_no, sequential, &mut self.cache[dim][victim])
                .unwrap_or_else(|e| std::panic::panic_any(e));
            self.cached_no[dim][victim] = page_no;
            victim
        };
        self.mru[dim] = which as u8;
        &self.cache[dim][which]
    }
}

impl<S: SharedPageStore> knmatch_core::SortedAccessSource for SharedDiskColumns<'_, S> {
    fn dims(&self) -> usize {
        self.file.dims()
    }

    fn cardinality(&self) -> usize {
        self.file.cardinality()
    }

    fn locate(&mut self, dim: usize, q: f64) -> usize {
        let Some((page_no, start, len)) = self.file.locate_page(dim, q) else {
            return 0;
        };
        let buf = self.page(dim, page_no);
        start + search_page(buf, len, q)
    }

    fn entry(&mut self, dim: usize, rank: usize) -> SortedEntry {
        let (page_no, slot) = self.file.page_slot(dim, rank);
        let (pid, value) = read_column_entry(self.page(dim, page_no), slot);
        SortedEntry { pid, value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use knmatch_core::SortedAccessSource;

    fn build_fig3() -> (SortedColumnFile, BufferPool<MemStore>) {
        let ds = knmatch_core::paper::fig3_dataset();
        let mut store = MemStore::new();
        let file = SortedColumnFile::build(&mut store, &ds);
        (file, BufferPool::new(store, 8))
    }

    #[test]
    fn layout_counts() {
        let (file, pool) = build_fig3();
        assert_eq!(file.dims(), 3);
        assert_eq!(file.cardinality(), 5);
        assert_eq!(file.pages_per_dim(), 1);
        assert_eq!(file.total_pages(), 3);
        assert_eq!(crate::PageStore::page_count(pool.store()), 3);
    }

    #[test]
    fn entries_match_in_memory_columns() {
        let ds = knmatch_core::paper::fig3_dataset();
        let mem = SortedColumns::build(&ds);
        let (file, mut pool) = build_fig3();
        for dim in 0..3 {
            for rank in 0..5 {
                assert_eq!(file.entry(&mut pool, dim, rank), mem.column(dim).get(rank));
            }
        }
    }

    #[test]
    fn locate_matches_in_memory() {
        let ds = knmatch_core::paper::fig3_dataset();
        let mut mem = SortedColumns::build(&ds);
        let (file, mut pool) = build_fig3();
        for dim in 0..3 {
            for q in [-1.0, 0.4, 2.9, 5.5, 9.0, 42.0] {
                assert_eq!(
                    file.locate(&mut pool, dim, q),
                    knmatch_core::SortedAccessSource::locate(&mut mem, dim, q),
                    "dim {dim} q {q}"
                );
            }
        }
    }

    #[test]
    fn multi_page_dimension() {
        // 1000 points in 1 dim spans 3 pages (341 entries/page).
        let rows: Vec<Vec<f64>> = (0..1000).map(|i| vec![i as f64]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut store = MemStore::new();
        let file = SortedColumnFile::build(&mut store, &ds);
        assert_eq!(file.pages_per_dim(), 3);
        let mut pool = BufferPool::new(store, 4);
        assert_eq!(file.entry(&mut pool, 0, 0).value, 0.0);
        assert_eq!(file.entry(&mut pool, 0, 341).value, 341.0);
        assert_eq!(file.entry(&mut pool, 0, 999).value, 999.0);
        assert_eq!(file.locate(&mut pool, 0, 341.0), 341);
        assert_eq!(file.locate(&mut pool, 0, 999.5), 1000);
    }

    #[test]
    fn disk_columns_run_generic_ad() {
        let (file, mut pool) = build_fig3();
        let mut src = DiskColumns::new(&file, &mut pool);
        let (res, _) = knmatch_core::k_n_match_ad(&mut src, &[3.0, 7.0, 4.0], 2, 2).unwrap();
        assert_eq!(res.ids(), vec![2, 1]);
        assert_eq!(res.epsilon(), 1.5);
    }

    #[test]
    fn trait_dims_and_cardinality() {
        let (file, mut pool) = build_fig3();
        let src = DiskColumns::new(&file, &mut pool);
        assert_eq!(src.dims(), 3);
        assert_eq!(src.cardinality(), 5);
    }
}
