//! Storage-layer failure taxonomy.
//!
//! Until this module existed the store traits had a panicking contract:
//! fine for an experiment substrate, fatal for the ROADMAP's
//! serve-heavy-traffic goal. [`StorageError`] classifies every way a page
//! read can go wrong, and [`StorageError::is_transient`] encodes the
//! retry policy: transient kinds are retried with bounded backoff by
//! [`crate::SharedBufferPool`], everything else surfaces immediately.

use std::fmt;
use std::io;

/// Result alias for storage-layer operations.
pub type StorageResult<T> = Result<T, StorageError>;

/// A failure reading or validating pages of a database file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The underlying I/O operation failed. `io::Error` is not `Clone`,
    /// so the kind and rendered message are captured instead.
    Io {
        /// Page being read when the error occurred.
        page: usize,
        /// The `io::ErrorKind` of the underlying failure.
        kind: io::ErrorKind,
        /// Rendered message of the underlying failure.
        message: String,
    },
    /// A page's content did not match its recorded CRC32 checksum.
    CorruptPage {
        /// The corrupt page's number.
        page: usize,
        /// Checksum recorded for the page.
        expected: u32,
        /// Checksum computed from the bytes actually read.
        actual: u32,
    },
    /// The file holds fewer pages than its header promises.
    Truncated {
        /// Pages actually present.
        pages: usize,
        /// Pages the header implies.
        expected: usize,
    },
    /// The file header (or checksum trailer) failed validation.
    BadHeader {
        /// What failed to validate.
        reason: String,
    },
    /// The file length is not a usable whole number of pages.
    BadLength {
        /// Observed file length in bytes.
        bytes: u64,
    },
    /// A transient failure persisted through the whole retry budget.
    RetriesExhausted {
        /// Page being read.
        page: usize,
        /// Attempts made (initial read plus retries).
        attempts: u32,
        /// The error returned by the final attempt.
        last: Box<StorageError>,
    },
}

impl StorageError {
    /// Whether a retry may plausibly succeed.
    ///
    /// Interrupted/timed-out/would-block I/O is retried, and so are
    /// checksum mismatches: a mismatch detected on read may be transport
    /// corruption (bus, DMA, torn buffer) rather than corruption at rest,
    /// and re-reading is cheap. Structural errors (truncation, bad
    /// header, bad length) and an already-exhausted retry budget are
    /// final.
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::Io { kind, .. } => matches!(
                kind,
                io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ),
            StorageError::CorruptPage { .. } => true,
            _ => false,
        }
    }

    /// The page number the error is about, when it concerns one page.
    pub fn page(&self) -> Option<usize> {
        match self {
            StorageError::Io { page, .. }
            | StorageError::CorruptPage { page, .. }
            | StorageError::RetriesExhausted { page, .. } => Some(*page),
            _ => None,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io {
                page,
                kind,
                message,
            } => {
                write!(f, "I/O error reading page {page} ({kind:?}): {message}")
            }
            StorageError::CorruptPage {
                page,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch on page {page}: expected {expected:#010x}, got {actual:#010x}"
            ),
            StorageError::Truncated { pages, expected } => {
                write!(f, "truncated database: {pages} pages, expected {expected}")
            }
            StorageError::BadHeader { reason } => write!(f, "corrupt header: {reason}"),
            StorageError::BadLength { bytes } => write!(
                f,
                "file length {bytes} is not a non-empty multiple of the page size"
            ),
            StorageError::RetriesExhausted {
                page,
                attempts,
                last,
            } => write!(
                f,
                "page {page} still failing after {attempts} attempts: {last}"
            ),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<StorageError> for io::Error {
    fn from(e: StorageError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_classification() {
        let interrupted = StorageError::Io {
            page: 3,
            kind: io::ErrorKind::Interrupted,
            message: "injected".into(),
        };
        let hard = StorageError::Io {
            page: 3,
            kind: io::ErrorKind::NotFound,
            message: "gone".into(),
        };
        let corrupt = StorageError::CorruptPage {
            page: 1,
            expected: 1,
            actual: 2,
        };
        assert!(interrupted.is_transient());
        assert!(!hard.is_transient());
        assert!(corrupt.is_transient());
        assert!(!StorageError::BadLength { bytes: 7 }.is_transient());
        let exhausted = StorageError::RetriesExhausted {
            page: 3,
            attempts: 3,
            last: Box::new(interrupted),
        };
        assert!(!exhausted.is_transient());
        assert_eq!(exhausted.page(), Some(3));
        assert_eq!(StorageError::BadLength { bytes: 7 }.page(), None);
    }

    #[test]
    fn displays_are_actionable() {
        let e = StorageError::CorruptPage {
            page: 9,
            expected: 0xDEAD_BEEF,
            actual: 0x1234_5678,
        };
        let s = e.to_string();
        assert!(s.contains("page 9"), "{s}");
        assert!(s.contains("0xdeadbeef"), "{s}");
        let io_err: io::Error = e.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
        assert!(io_err.to_string().contains("checksum mismatch"));
    }
}
