//! The SS-tree (White & Jain, ICDE'96 — the paper's reference \[22\]): a
//! similarity-search tree whose nodes are bounding **spheres** (centroid +
//! radius) rather than rectangles. Spheres have smaller volume than MBRs
//! in high dimensions but overlap more; either way the dimensionality
//! curse wins, which is the point of carrying both trees in this
//! reproduction (Section 6 names the SS-tree and the X-tree as the
//! R-tree-like lineage that "suffer\[s\] from the dimensionality curse").
//!
//! Built bottom-up from a k-means-style assignment per level (centroid
//! packing), queried with best-first kNN on the sphere MINDIST
//! `max(0, |q − centre| − radius)`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use knmatch_core::topk::TopK;
use knmatch_core::{Dataset, KnMatchError, Neighbour, PointId, Result};

use crate::tree::RTreeStats;

/// Node fanout.
pub const SS_FANOUT: usize = 32;

#[derive(Debug)]
struct Sphere {
    centre: Vec<f64>,
    radius: f64,
}

impl Sphere {
    fn min_dist(&self, q: &[f64]) -> f64 {
        let d2: f64 = self
            .centre
            .iter()
            .zip(q)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        (d2.sqrt() - self.radius).max(0.0)
    }
}

#[derive(Debug)]
enum SsKind {
    Internal(Vec<usize>),
    Leaf(Vec<PointId>),
}

#[derive(Debug)]
struct SsNode {
    sphere: Sphere,
    kind: SsKind,
}

/// A bounding-sphere similarity tree over a [`Dataset`].
#[derive(Debug)]
pub struct SsTree {
    dims: usize,
    nodes: Vec<SsNode>,
    root: usize,
    leaves: usize,
    len: usize,
}

impl SsTree {
    /// Bulk-loads `ds`: leaves are packed by recursive per-dimension tiling
    /// (compact groups → tight spheres), then levels of centroid spheres
    /// are built upward.
    ///
    /// # Errors
    ///
    /// Rejects an empty dataset.
    pub fn bulk_load(ds: &Dataset) -> Result<Self> {
        if ds.is_empty() {
            return Err(KnMatchError::EmptyDataset);
        }
        let dims = ds.dims();
        let mut ids: Vec<PointId> = (0..ds.len() as PointId).collect();
        let mut groups: Vec<Vec<PointId>> = Vec::new();
        tile(ds, &mut ids, 0, &mut groups);

        let mut tree = SsTree {
            dims,
            nodes: Vec::new(),
            root: 0,
            leaves: 0,
            len: ds.len(),
        };
        let mut level: Vec<usize> = Vec::new();
        for chunk in &groups {
            let sphere = tree.sphere_of_points(ds, chunk);
            tree.nodes.push(SsNode {
                sphere,
                kind: SsKind::Leaf(chunk.clone()),
            });
            tree.leaves += 1;
            level.push(tree.nodes.len() - 1);
        }
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(SS_FANOUT));
            for chunk in level.chunks(SS_FANOUT) {
                let sphere = tree.sphere_of_children(chunk);
                tree.nodes.push(SsNode {
                    sphere,
                    kind: SsKind::Internal(chunk.to_vec()),
                });
                next.push(tree.nodes.len() - 1);
            }
            level = next;
        }
        tree.root = level[0];
        Ok(tree)
    }

    fn sphere_of_points(&self, ds: &Dataset, pids: &[PointId]) -> Sphere {
        let mut centre = vec![0.0f64; self.dims];
        for &pid in pids {
            for (c, &v) in centre.iter_mut().zip(ds.point(pid)) {
                *c += v;
            }
        }
        for c in centre.iter_mut() {
            *c /= pids.len() as f64;
        }
        let radius = pids
            .iter()
            .map(|&pid| {
                ds.point(pid)
                    .iter()
                    .zip(&centre)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt()
            })
            .fold(0.0f64, f64::max);
        Sphere { centre, radius }
    }

    fn sphere_of_children(&self, children: &[usize]) -> Sphere {
        let mut centre = vec![0.0f64; self.dims];
        for &c in children {
            for (acc, v) in centre.iter_mut().zip(&self.nodes[c].sphere.centre) {
                *acc += v;
            }
        }
        for c in centre.iter_mut() {
            *c /= children.len() as f64;
        }
        let radius = children
            .iter()
            .map(|&c| {
                let s = &self.nodes[c].sphere;
                let d: f64 = s
                    .centre
                    .iter()
                    .zip(&centre)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                d + s.radius
            })
            .fold(0.0f64, f64::max);
        Sphere { centre, radius }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty (construction rejects it).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaves
    }

    /// Best-first Euclidean kNN with traversal counters.
    ///
    /// # Errors
    ///
    /// Validates the query and `k` like the scan-based kNN.
    pub fn k_nearest(
        &self,
        ds: &Dataset,
        query: &[f64],
        k: usize,
    ) -> Result<(Vec<Neighbour>, RTreeStats)> {
        ds.validate_query(query)?;
        if k == 0 || k > self.len {
            return Err(KnMatchError::InvalidK {
                k,
                cardinality: self.len,
            });
        }
        let mut stats = RTreeStats::default();
        let mut top = TopK::new(k);
        let mut frontier: BinaryHeap<Cand> = BinaryHeap::new();
        frontier.push(Cand {
            dist: self.nodes[self.root].sphere.min_dist(query),
            node: self.root,
        });
        while let Some(c) = frontier.pop() {
            if let Some(tau2) = top.threshold() {
                if c.dist * c.dist > tau2 {
                    break;
                }
            }
            match &self.nodes[c.node].kind {
                SsKind::Internal(children) => {
                    stats.internal_visited += 1;
                    for &child in children {
                        let d = self.nodes[child].sphere.min_dist(query);
                        if top.threshold().map_or(true, |tau2| d * d <= tau2) {
                            frontier.push(Cand {
                                dist: d,
                                node: child,
                            });
                        }
                    }
                }
                SsKind::Leaf(pids) => {
                    stats.leaves_visited += 1;
                    for &pid in pids {
                        stats.points_checked += 1;
                        let d2: f64 = ds
                            .point(pid)
                            .iter()
                            .zip(query)
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum();
                        top.offer(pid, d2);
                    }
                }
            }
        }
        let out = top
            .into_sorted()
            .into_iter()
            .map(|(pid, d2)| Neighbour {
                pid,
                dist: d2.sqrt(),
            })
            .collect();
        Ok((out, stats))
    }
}

/// Recursive per-dimension tiling (the STR idea applied to sphere leaves):
/// sort the slab by `dim`, slice, recurse on the next dimension; emit leaf
/// groups of up to [`SS_FANOUT`] points.
fn tile(ds: &Dataset, ids: &mut [PointId], dim: usize, out: &mut Vec<Vec<PointId>>) {
    let dims = ds.dims();
    ids.sort_unstable_by(|&a, &b| {
        ds.coord(a, dim)
            .total_cmp(&ds.coord(b, dim))
            .then(a.cmp(&b))
    });
    if ids.len() <= SS_FANOUT || dim + 1 == dims {
        for chunk in ids.chunks(SS_FANOUT) {
            out.push(chunk.to_vec());
        }
        return;
    }
    let leaves_needed = ids.len().div_ceil(SS_FANOUT) as f64;
    let remaining = (dims - dim) as f64;
    let slabs = leaves_needed.powf(1.0 / remaining).ceil().max(1.0) as usize;
    let per_slab = ids.len().div_ceil(slabs);
    let mut rest = ids;
    while !rest.is_empty() {
        let take = per_slab.min(rest.len());
        let (slab, tail) = rest.split_at_mut(take);
        tile(ds, slab, dim + 1, out);
        rest = tail;
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Cand {
    dist: f64,
    node: usize,
}

impl Eq for Cand {}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knmatch_core::{k_nearest, Euclidean};
    use knmatch_data::uniform;

    #[test]
    fn knn_matches_exact_scan() {
        let ds = uniform(2500, 5, 6);
        let tree = SsTree::bulk_load(&ds).unwrap();
        for qid in [0u32, 777, 2400] {
            let q = ds.point(qid).to_vec();
            let (got, stats) = tree.k_nearest(&ds, &q, 8).unwrap();
            let want = k_nearest(&ds, &q, 8, &Euclidean).unwrap();
            for (a, b) in got.iter().zip(&want) {
                assert!((a.dist - b.dist).abs() < 1e-9);
            }
            assert!(stats.leaves_visited >= 1);
        }
    }

    #[test]
    fn spheres_suffer_the_curse_too() {
        let mut fractions = Vec::new();
        for d in [2usize, 32] {
            let ds = uniform(6000, d, 3);
            let tree = SsTree::bulk_load(&ds).unwrap();
            let (_, stats) = tree.k_nearest(&ds, ds.point(9), 10).unwrap();
            fractions.push(stats.leaf_fraction(tree.leaf_count()));
        }
        assert!(fractions[1] > fractions[0], "{fractions:?}");
        assert!(fractions[1] > 0.9, "{fractions:?}");
    }

    #[test]
    fn low_dimensional_pruning_works() {
        let ds = uniform(10_000, 2, 8);
        let tree = SsTree::bulk_load(&ds).unwrap();
        let (_, stats) = tree.k_nearest(&ds, &[0.5, 0.5], 10).unwrap();
        assert!(
            stats.leaf_fraction(tree.leaf_count()) < 0.2,
            "2-d kNN should prune: {} of {}",
            stats.leaves_visited,
            tree.leaf_count()
        );
    }

    #[test]
    fn validation_and_edges() {
        let empty = Dataset::new(2).unwrap();
        assert!(SsTree::bulk_load(&empty).is_err());
        let one = Dataset::from_rows(&[vec![0.4, 0.6]]).unwrap();
        let t = SsTree::bulk_load(&one).unwrap();
        assert_eq!(t.leaf_count(), 1);
        let (nn, _) = t.k_nearest(&one, &[0.0, 0.0], 1).unwrap();
        assert_eq!(nn[0].pid, 0);
        assert!(t.k_nearest(&one, &[0.0, 0.0], 2).is_err());
    }
}
