//! Minimum bounding rectangles and the MINDIST lower bound used by
//! best-first nearest-neighbour search.

/// An axis-aligned minimum bounding rectangle.
#[derive(Debug, Clone, PartialEq)]
pub struct Mbr {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Mbr {
    /// The degenerate MBR of a single point.
    pub fn from_point(p: &[f64]) -> Self {
        Mbr {
            lo: p.to_vec(),
            hi: p.to_vec(),
        }
    }

    /// An "empty" MBR ready to be [`Mbr::expand`]ed.
    pub fn empty(dims: usize) -> Self {
        Mbr {
            lo: vec![f64::INFINITY; dims],
            hi: vec![f64::NEG_INFINITY; dims],
        }
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Grows to cover `p`.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    pub fn expand(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.dims(), "dimensionality mismatch");
        for ((l, h), &v) in self.lo.iter_mut().zip(self.hi.iter_mut()).zip(p) {
            *l = l.min(v);
            *h = h.max(v);
        }
    }

    /// Grows to cover another MBR.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    pub fn expand_mbr(&mut self, other: &Mbr) {
        self.expand(&other.lo.clone());
        self.expand(&other.hi.clone());
    }

    /// Whether `p` lies inside (closed bounds).
    pub fn contains(&self, p: &[f64]) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(p)
            .all(|((l, h), v)| l <= v && v <= h)
    }

    /// Whether this MBR overlaps `other` (closed bounds).
    pub fn intersects(&self, other: &Mbr) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((al, ah), (bl, bh))| al <= bh && bl <= ah)
    }

    /// MINDIST: squared Euclidean distance from `q` to the nearest point of
    /// the rectangle (0 when `q` is inside) — the admissible lower bound
    /// driving best-first kNN.
    pub fn min_dist2(&self, q: &[f64]) -> f64 {
        debug_assert_eq!(q.len(), self.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(q)
            .map(|((l, h), v)| {
                let d = if v < l {
                    l - v
                } else if v > h {
                    v - h
                } else {
                    0.0
                };
                d * d
            })
            .sum()
    }

    /// Volume of the rectangle (product of side lengths).
    pub fn area(&self) -> f64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| (h - l).max(0.0))
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expand_covers_points() {
        let mut m = Mbr::empty(2);
        m.expand(&[1.0, 5.0]);
        m.expand(&[3.0, 2.0]);
        assert_eq!(m.lo(), &[1.0, 2.0]);
        assert_eq!(m.hi(), &[3.0, 5.0]);
        assert!(m.contains(&[2.0, 3.0]));
        assert!(!m.contains(&[0.0, 3.0]));
        assert_eq!(m.area(), 6.0);
    }

    #[test]
    fn min_dist_inside_is_zero() {
        let mut m = Mbr::from_point(&[0.0, 0.0]);
        m.expand(&[2.0, 2.0]);
        assert_eq!(m.min_dist2(&[1.0, 1.0]), 0.0);
        assert_eq!(m.min_dist2(&[3.0, 1.0]), 1.0);
        assert_eq!(m.min_dist2(&[3.0, 3.0]), 2.0);
        assert_eq!(m.min_dist2(&[-1.0, -1.0]), 2.0);
    }

    #[test]
    fn intersects_is_symmetric_and_touch_counts() {
        let mut a = Mbr::from_point(&[0.0, 0.0]);
        a.expand(&[1.0, 1.0]);
        let mut b = Mbr::from_point(&[1.0, 1.0]);
        b.expand(&[2.0, 2.0]);
        assert!(a.intersects(&b) && b.intersects(&a));
        let c = Mbr::from_point(&[5.0, 5.0]);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn expand_mbr_unions() {
        let mut a = Mbr::from_point(&[0.0, 0.0]);
        let mut b = Mbr::from_point(&[4.0, -1.0]);
        b.expand(&[5.0, 3.0]);
        a.expand_mbr(&b);
        assert_eq!(a.lo(), &[0.0, -1.0]);
        assert_eq!(a.hi(), &[5.0, 3.0]);
    }
}
