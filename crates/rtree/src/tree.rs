//! An STR-bulk-loaded R-tree with best-first kNN and range search.
//!
//! Sort-Tile-Recursive (Leutenegger et al.) packs points into leaves by
//! recursive per-dimension slicing, producing near-100% fill and tight
//! MBRs — a *favourable* construction for the R-tree, which makes the
//! dimensionality-curse measurement below conservative. kNN is Hjaltason &
//! Samet's best-first traversal on MINDIST. Node-visit counters expose the
//! curse: as dimensionality grows, the fraction of leaves a kNN query must
//! visit approaches one (the motivation for the VA-file in the paper's
//! related work, and ultimately for scan-friendly methods like AD).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use knmatch_core::topk::TopK;
use knmatch_core::{Dataset, KnMatchError, Neighbour, PointId, Result};

use crate::mbr::Mbr;

/// Node fanout (max children / max points per leaf).
pub const FANOUT: usize = 64;

#[derive(Debug)]
enum NodeKind {
    /// Child node indices.
    Internal(Vec<usize>),
    /// Point ids stored in the leaf.
    Leaf(Vec<PointId>),
}

#[derive(Debug)]
struct Node {
    mbr: Mbr,
    kind: NodeKind,
}

/// Traversal counters for one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RTreeStats {
    /// Internal nodes visited.
    pub internal_visited: u64,
    /// Leaves visited.
    pub leaves_visited: u64,
    /// Points whose exact distance was computed.
    pub points_checked: u64,
}

impl RTreeStats {
    /// Fraction of the tree's leaves this query touched — the
    /// dimensionality-curse gauge.
    pub fn leaf_fraction(&self, total_leaves: usize) -> f64 {
        if total_leaves == 0 {
            0.0
        } else {
            self.leaves_visited as f64 / total_leaves as f64
        }
    }
}

/// A read-only R-tree over a [`Dataset`] (the dataset provides the
/// coordinates; the tree stores ids).
#[derive(Debug)]
pub struct RTree {
    dims: usize,
    nodes: Vec<Node>,
    root: usize,
    leaves: usize,
    len: usize,
}

impl RTree {
    /// Bulk-loads `ds` with STR packing.
    ///
    /// # Errors
    ///
    /// Rejects an empty dataset.
    pub fn bulk_load(ds: &Dataset) -> Result<Self> {
        if ds.is_empty() {
            return Err(KnMatchError::EmptyDataset);
        }
        let dims = ds.dims();
        let mut tree = RTree {
            dims,
            nodes: Vec::new(),
            root: 0,
            leaves: 0,
            len: ds.len(),
        };

        // STR leaf packing.
        let mut ids: Vec<PointId> = (0..ds.len() as PointId).collect();
        let mut leaf_ids: Vec<usize> = Vec::new();
        tree.str_pack(ds, &mut ids, 0, &mut leaf_ids);

        // Build upper levels by chunking sorted-by-construction children.
        let mut level = leaf_ids;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(FANOUT));
            for chunk in level.chunks(FANOUT) {
                let mut mbr = Mbr::empty(dims);
                for &child in chunk {
                    mbr.expand_mbr(&tree.nodes[child].mbr.clone());
                }
                tree.nodes.push(Node {
                    mbr,
                    kind: NodeKind::Internal(chunk.to_vec()),
                });
                next.push(tree.nodes.len() - 1);
            }
            level = next;
        }
        tree.root = level[0];
        Ok(tree)
    }

    /// Recursive STR tiling: sort the slab by `dim`, slice into
    /// `ceil(|slab| / per_slice)` sub-slabs, recurse on the next dimension;
    /// at the last dimension emit leaves of up to [`FANOUT`] points.
    fn str_pack(&mut self, ds: &Dataset, ids: &mut [PointId], dim: usize, leaves: &mut Vec<usize>) {
        if ids.len() <= FANOUT || dim + 1 == self.dims {
            ids.sort_unstable_by(|&a, &b| {
                ds.coord(a, dim)
                    .total_cmp(&ds.coord(b, dim))
                    .then(a.cmp(&b))
            });
            for chunk in ids.chunks(FANOUT) {
                let mut mbr = Mbr::empty(self.dims);
                for &pid in chunk {
                    mbr.expand(ds.point(pid));
                }
                self.nodes.push(Node {
                    mbr,
                    kind: NodeKind::Leaf(chunk.to_vec()),
                });
                self.leaves += 1;
                leaves.push(self.nodes.len() - 1);
            }
            return;
        }
        ids.sort_unstable_by(|&a, &b| {
            ds.coord(a, dim)
                .total_cmp(&ds.coord(b, dim))
                .then(a.cmp(&b))
        });
        // Number of vertical slabs ≈ (leaves needed)^(1/remaining dims).
        let leaves_needed = ids.len().div_ceil(FANOUT) as f64;
        let remaining = (self.dims - dim) as f64;
        let slabs = leaves_needed.powf(1.0 / remaining).ceil().max(1.0) as usize;
        let per_slab = ids.len().div_ceil(slabs);
        let mut rest = ids;
        while !rest.is_empty() {
            let take = per_slab.min(rest.len());
            let (slab, tail) = rest.split_at_mut(take);
            self.str_pack(ds, slab, dim + 1, leaves);
            rest = tail;
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty (never true — construction rejects it).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaves
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &self.nodes[node].kind {
                NodeKind::Leaf(_) => return h,
                NodeKind::Internal(children) => {
                    node = children[0];
                    h += 1;
                }
            }
        }
    }

    /// Best-first Euclidean kNN with per-query traversal counters.
    ///
    /// # Errors
    ///
    /// Validates the query and `k` like the scan-based kNN.
    pub fn k_nearest(
        &self,
        ds: &Dataset,
        query: &[f64],
        k: usize,
    ) -> Result<(Vec<Neighbour>, RTreeStats)> {
        ds.validate_query(query)?;
        if k == 0 || k > self.len {
            return Err(KnMatchError::InvalidK {
                k,
                cardinality: self.len,
            });
        }
        let mut stats = RTreeStats::default();
        let mut top = TopK::new(k);
        let mut frontier: BinaryHeap<Candidate> = BinaryHeap::new();
        frontier.push(Candidate {
            dist2: self.nodes[self.root].mbr.min_dist2(query),
            node: self.root,
        });
        while let Some(c) = frontier.pop() {
            if let Some(tau) = top.threshold() {
                if c.dist2 > tau {
                    break; // every remaining node is farther than the k-th NN
                }
            }
            match &self.nodes[c.node].kind {
                NodeKind::Internal(children) => {
                    stats.internal_visited += 1;
                    for &child in children {
                        let d2 = self.nodes[child].mbr.min_dist2(query);
                        if top.threshold().map_or(true, |tau| d2 <= tau) {
                            frontier.push(Candidate {
                                dist2: d2,
                                node: child,
                            });
                        }
                    }
                }
                NodeKind::Leaf(pids) => {
                    stats.leaves_visited += 1;
                    for &pid in pids {
                        stats.points_checked += 1;
                        let d2: f64 = ds
                            .point(pid)
                            .iter()
                            .zip(query)
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum();
                        top.offer(pid, d2);
                    }
                }
            }
        }
        let out = top
            .into_sorted()
            .into_iter()
            .map(|(pid, d2)| Neighbour {
                pid,
                dist: d2.sqrt(),
            })
            .collect();
        Ok((out, stats))
    }

    /// All point ids inside the axis-aligned box `[lo, hi]` (closed), in
    /// ascending id order, with traversal counters.
    ///
    /// # Errors
    ///
    /// Validates the corner dimensionalities.
    pub fn range(
        &self,
        ds: &Dataset,
        lo: &[f64],
        hi: &[f64],
    ) -> Result<(Vec<PointId>, RTreeStats)> {
        ds.validate_query(lo)?;
        ds.validate_query(hi)?;
        let mut query_box = Mbr::from_point(lo);
        query_box.expand(hi);
        let mut stats = RTreeStats::default();
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            let node = &self.nodes[node];
            if !node.mbr.intersects(&query_box) {
                continue;
            }
            match &node.kind {
                NodeKind::Internal(children) => {
                    stats.internal_visited += 1;
                    stack.extend(children.iter().copied());
                }
                NodeKind::Leaf(pids) => {
                    stats.leaves_visited += 1;
                    for &pid in pids {
                        stats.points_checked += 1;
                        if query_box.contains(ds.point(pid)) {
                            out.push(pid);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        Ok((out, stats))
    }
}

/// Frontier entry: min-heap on MINDIST.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    dist2: f64,
    node: usize,
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist2
            .total_cmp(&self.dist2)
            .then_with(|| other.node.cmp(&self.node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knmatch_core::{k_nearest, Euclidean};
    use knmatch_data::uniform;

    #[test]
    fn knn_matches_exact_scan() {
        let ds = uniform(3000, 4, 5);
        let tree = RTree::bulk_load(&ds).unwrap();
        for qid in [0u32, 999, 2500] {
            let q = ds.point(qid).to_vec();
            let (got, stats) = tree.k_nearest(&ds, &q, 10).unwrap();
            let want = k_nearest(&ds, &q, 10, &Euclidean).unwrap();
            let g: Vec<u32> = got.iter().map(|n| n.pid).collect();
            let w: Vec<u32> = want.iter().map(|n| n.pid).collect();
            assert_eq!(g, w);
            for (a, b) in got.iter().zip(&want) {
                assert!((a.dist - b.dist).abs() < 1e-9);
            }
            assert!(stats.leaves_visited >= 1);
        }
    }

    #[test]
    fn low_dimensional_queries_prune_hard() {
        let ds = uniform(20_000, 2, 7);
        let tree = RTree::bulk_load(&ds).unwrap();
        let (_, stats) = tree.k_nearest(&ds, &[0.5, 0.5], 10).unwrap();
        assert!(
            stats.leaf_fraction(tree.leaf_count()) < 0.05,
            "2-d kNN should touch a few leaves: {} of {}",
            stats.leaves_visited,
            tree.leaf_count()
        );
    }

    #[test]
    fn dimensionality_curse_shows() {
        // The Section 6 claim: R-tree pruning collapses as d grows.
        let mut fractions = Vec::new();
        for d in [2usize, 8, 32] {
            let ds = uniform(8000, d, 3);
            let tree = RTree::bulk_load(&ds).unwrap();
            let q = ds.point(17).to_vec();
            let (_, stats) = tree.k_nearest(&ds, &q, 10).unwrap();
            fractions.push(stats.leaf_fraction(tree.leaf_count()));
        }
        assert!(
            fractions[0] < fractions[1] && fractions[1] <= fractions[2],
            "{fractions:?}"
        );
        assert!(
            fractions[2] > 0.9,
            "at d=32 nearly every leaf is visited: {fractions:?}"
        );
    }

    #[test]
    fn range_query_matches_filter() {
        let ds = uniform(2000, 3, 9);
        let tree = RTree::bulk_load(&ds).unwrap();
        let lo = [0.2, 0.3, 0.1];
        let hi = [0.5, 0.6, 0.4];
        let (got, _) = tree.range(&ds, &lo, &hi).unwrap();
        let want: Vec<u32> = ds
            .iter()
            .filter(|(_, p)| {
                p.iter().zip(&lo).all(|(v, l)| v >= l) && p.iter().zip(&hi).all(|(v, h)| v <= h)
            })
            .map(|(pid, _)| pid)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn structure_invariants() {
        let ds = uniform(5000, 3, 1);
        let tree = RTree::bulk_load(&ds).unwrap();
        assert_eq!(tree.len(), 5000);
        // STR slab boundaries can add a handful of partial leaves beyond
        // the ideal ceil(N / FANOUT).
        let ideal = 5000usize.div_ceil(FANOUT);
        assert!(
            (ideal..ideal + ideal / 4 + 2).contains(&tree.leaf_count()),
            "leaf count {} vs ideal {ideal}",
            tree.leaf_count()
        );
        assert!(tree.height() >= 2);
        // Every point is found by a point-range query on itself.
        for pid in [0u32, 1234, 4999] {
            let p = ds.point(pid).to_vec();
            let (hits, _) = tree.range(&ds, &p, &p).unwrap();
            assert!(hits.contains(&pid));
        }
    }

    #[test]
    fn single_point_tree() {
        let ds = Dataset::from_rows(&[vec![0.3, 0.7]]).unwrap();
        let tree = RTree::bulk_load(&ds).unwrap();
        assert_eq!(tree.height(), 1);
        let (nn, _) = tree.k_nearest(&ds, &[0.0, 0.0], 1).unwrap();
        assert_eq!(nn[0].pid, 0);
    }

    #[test]
    fn rejects_empty_and_bad_k() {
        let empty = Dataset::new(2).unwrap();
        assert!(RTree::bulk_load(&empty).is_err());
        let ds = uniform(10, 2, 0);
        let tree = RTree::bulk_load(&ds).unwrap();
        assert!(tree.k_nearest(&ds, &[0.0, 0.0], 0).is_err());
        assert!(tree.k_nearest(&ds, &[0.0, 0.0], 11).is_err());
        assert!(tree.k_nearest(&ds, &[0.0], 1).is_err());
    }
}
