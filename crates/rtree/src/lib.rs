//! # knmatch-rtree
//!
//! An STR-bulk-loaded R-tree with best-first kNN — the "early methods"
//! baseline of the paper's related work (Section 6: R-tree-like structures
//! such as the SS-tree and X-tree "all suffer from the dimensionality
//! curse"). The per-query traversal counters let the reproduction measure
//! that curse directly: the fraction of leaves a kNN query must visit
//! approaches one as dimensionality grows, which is why the paper's
//! lineage moved to scan-based methods (VA-file) and ultimately to the
//! sorted-dimension AD algorithm.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod mbr;
pub mod sstree;
pub mod tree;

pub use mbr::Mbr;
pub use sstree::{SsTree, SS_FANOUT};
pub use tree::{RTree, RTreeStats, FANOUT};
