//! Property tests for the R-tree: kNN and range queries must equal the
//! exact scans on every random instance.

use knmatch_core::{k_nearest, Dataset, Euclidean};
use knmatch_rtree::RTree;
use proptest::prelude::*;

fn dataset() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..=5, 1usize..=120).prop_flat_map(|(d, c)| {
        proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, d), c)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn knn_equals_scan(rows in dataset(), qseed in proptest::collection::vec(0.0f64..1.0, 5)) {
        let ds = Dataset::from_rows(&rows).unwrap();
        let q: Vec<f64> = qseed[..ds.dims()].to_vec();
        let tree = RTree::bulk_load(&ds).unwrap();
        let k = ((ds.len() + 1) / 2).max(1);
        let (got, stats) = tree.k_nearest(&ds, &q, k).unwrap();
        let want = k_nearest(&ds, &q, k, &Euclidean).unwrap();
        prop_assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            prop_assert!((a.dist - b.dist).abs() < 1e-9, "{} vs {}", a.dist, b.dist);
        }
        prop_assert!(stats.leaves_visited as usize <= tree.leaf_count());
    }

    #[test]
    fn range_equals_filter(
        rows in dataset(),
        corners in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 5),
    ) {
        let ds = Dataset::from_rows(&rows).unwrap();
        let d = ds.dims();
        let lo: Vec<f64> = corners[..d].iter().map(|&(a, b)| a.min(b)).collect();
        let hi: Vec<f64> = corners[..d].iter().map(|&(a, b)| a.max(b)).collect();
        let tree = RTree::bulk_load(&ds).unwrap();
        let (got, _) = tree.range(&ds, &lo, &hi).unwrap();
        let want: Vec<u32> = ds
            .iter()
            .filter(|(_, p)| {
                p.iter().zip(&lo).all(|(v, l)| v >= l)
                    && p.iter().zip(&hi).all(|(v, h)| v <= h)
            })
            .map(|(pid, _)| pid)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn every_point_is_its_own_nn(rows in dataset()) {
        let ds = Dataset::from_rows(&rows).unwrap();
        let tree = RTree::bulk_load(&ds).unwrap();
        // Sample a few pids (cheap even when c is large).
        for pid in [0, (ds.len() / 2) as u32, (ds.len() - 1) as u32] {
            let q = ds.point(pid).to_vec();
            let (nn, _) = tree.k_nearest(&ds, &q, 1).unwrap();
            prop_assert_eq!(nn[0].dist, 0.0);
        }
    }
}
