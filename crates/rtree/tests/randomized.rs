//! Randomized tests for the R-tree: kNN and range queries must equal the
//! exact scans on every seeded random instance (no external
//! property-testing crate in the offline build).

use knmatch_core::{k_nearest, Dataset, Euclidean};
use knmatch_data::rng::{seeded, Rng64};
use knmatch_rtree::RTree;

fn dataset(rng: &mut Rng64) -> Vec<Vec<f64>> {
    let d = rng.range_usize(1..6);
    let c = rng.range_usize(1..121);
    (0..c)
        .map(|_| (0..d).map(|_| rng.next_f64()).collect())
        .collect()
}

#[test]
fn knn_equals_scan() {
    let mut rng = seeded(0x47EE_0001);
    for _ in 0..192 {
        let rows = dataset(&mut rng);
        let ds = Dataset::from_rows(&rows).unwrap();
        let q: Vec<f64> = (0..ds.dims()).map(|_| rng.next_f64()).collect();
        let tree = RTree::bulk_load(&ds).unwrap();
        let k = ds.len().div_ceil(2).max(1);
        let (got, stats) = tree.k_nearest(&ds, &q, k).unwrap();
        let want = k_nearest(&ds, &q, k, &Euclidean).unwrap();
        assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            assert!((a.dist - b.dist).abs() < 1e-9, "{} vs {}", a.dist, b.dist);
        }
        assert!(stats.leaves_visited as usize <= tree.leaf_count());
    }
}

#[test]
fn range_equals_filter() {
    let mut rng = seeded(0x47EE_0002);
    for _ in 0..192 {
        let rows = dataset(&mut rng);
        let ds = Dataset::from_rows(&rows).unwrap();
        let d = ds.dims();
        let corners: Vec<(f64, f64)> = (0..d).map(|_| (rng.next_f64(), rng.next_f64())).collect();
        let lo: Vec<f64> = corners.iter().map(|&(a, b)| a.min(b)).collect();
        let hi: Vec<f64> = corners.iter().map(|&(a, b)| a.max(b)).collect();
        let tree = RTree::bulk_load(&ds).unwrap();
        let (got, _) = tree.range(&ds, &lo, &hi).unwrap();
        let want: Vec<u32> = ds
            .iter()
            .filter(|(_, p)| {
                p.iter().zip(&lo).all(|(v, l)| v >= l) && p.iter().zip(&hi).all(|(v, h)| v <= h)
            })
            .map(|(pid, _)| pid)
            .collect();
        assert_eq!(got, want);
    }
}

#[test]
fn every_point_is_its_own_nn() {
    let mut rng = seeded(0x47EE_0003);
    for _ in 0..192 {
        let rows = dataset(&mut rng);
        let ds = Dataset::from_rows(&rows).unwrap();
        let tree = RTree::bulk_load(&ds).unwrap();
        // Sample a few pids (cheap even when c is large).
        for pid in [0, (ds.len() / 2) as u32, (ds.len() - 1) as u32] {
            let q = ds.point(pid).to_vec();
            let (nn, _) = tree.k_nearest(&ds, &q, 1).unwrap();
            assert_eq!(nn[0].dist, 0.0);
        }
    }
}
